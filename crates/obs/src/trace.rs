//! Span-based tracing with bounded buffers.
//!
//! A [`Span`] is a guard: created at a phase boundary with
//! [`Span::enter`], it records `(name, start, duration, parent,
//! fields)` when dropped. Finished spans land in two places:
//!
//! * a **global striped ring** ([`recent`]): a fixed pool of
//!   mutex-striped ring buffers shared by all threads, so
//!   `GET /debug/trace` can show the most recent spans of the whole
//!   process without per-thread registration churn (worker threads are
//!   short-lived scoped threads) and with hard-bounded memory;
//! * the current **[`TraceSink`]**, when one is active: a per-request
//!   collector, so one request's own span tree can be assembled without
//!   scanning the global rings.
//!
//! The trace context — trace id, parent span id, sink — lives in a
//! thread-local and crosses thread boundaries only explicitly:
//! fan-out primitives capture [`current_ctx`] and wrap their workers in
//! [`with_ctx`] (as `distvliw_core::par::par_map` does), so spans
//! recorded on a worker still attach to the requesting trace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Per-stripe ring capacity of the global pool.
const RING_CAPACITY: usize = 4096;
/// Stripe count of the global pool (threads hash onto stripes).
const RING_STRIPES: usize = 16;
/// Records a [`TraceSink`] accepts before counting drops instead.
const SINK_CAPACITY: usize = 65_536;

/// One field attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An integer field.
    U64(u64),
    /// A string field.
    Str(String),
}

/// A finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique (process-wide) span id.
    pub id: u64,
    /// The enclosing span's id (0 at the root).
    pub parent: u64,
    /// The trace this span belongs to (0 outside any trace).
    pub trace: u64,
    /// Phase name.
    pub name: &'static str,
    /// Start time in microseconds since process start.
    pub start_us: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// `key=val` fields, in attachment order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// The span's end time in microseconds since process start.
    #[must_use]
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_ns / 1_000
    }
}

/// A bounded ring of finished spans: pushing past capacity drops the
/// oldest record.
pub struct SpanRing {
    inner: Mutex<RingInner>,
}

struct RingInner {
    capacity: usize,
    buf: std::collections::VecDeque<SpanRecord>,
}

impl SpanRing {
    /// A ring holding at most `capacity` records.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SpanRing {
            inner: Mutex::new(RingInner {
                capacity: capacity.max(1),
                buf: std::collections::VecDeque::new(),
            }),
        }
    }

    /// Appends `record`, evicting the oldest past capacity.
    pub fn push(&self, record: SpanRecord) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.buf.len() >= inner.capacity {
            inner.buf.pop_front();
        }
        inner.buf.push_back(record);
    }

    /// The resident records, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .buf
            .iter()
            .cloned()
            .collect()
    }
}

fn pool() -> &'static Vec<SpanRing> {
    static POOL: OnceLock<Vec<SpanRing>> = OnceLock::new();
    POOL.get_or_init(|| {
        (0..RING_STRIPES)
            .map(|_| SpanRing::with_capacity(RING_CAPACITY))
            .collect()
    })
}

/// The process time anchor `start_us` is measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Collects one request's spans so its tree can be returned inline
/// (`?trace=1`) and its per-phase totals logged, without scanning the
/// global rings.
pub struct TraceSink {
    trace: u64,
    records: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
}

impl TraceSink {
    /// A fresh sink with a new process-unique trace id.
    #[must_use]
    pub fn new() -> Arc<TraceSink> {
        Arc::new(TraceSink {
            trace: next_id(),
            records: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        })
    }

    /// The sink's trace id.
    #[must_use]
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    fn push(&self, record: SpanRecord) {
        let mut records = self
            .records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if records.len() >= SINK_CAPACITY {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            records.push(record);
        }
    }

    /// The collected spans (in completion order) and how many were
    /// dropped past capacity.
    #[must_use]
    pub fn take(&self) -> (Vec<SpanRecord>, u64) {
        let records = std::mem::take(
            &mut *self
                .records
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        (records, self.dropped.load(Ordering::Relaxed))
    }
}

/// The propagable trace context: which trace the current thread is
/// recording into, the current parent span, and the request sink.
#[derive(Clone, Default)]
pub struct TraceCtx {
    trace: u64,
    parent: u64,
    sink: Option<Arc<TraceSink>>,
}

impl TraceCtx {
    /// A context rooted at `sink` (parent 0).
    #[must_use]
    pub fn for_sink(sink: &Arc<TraceSink>) -> TraceCtx {
        TraceCtx {
            trace: sink.trace_id(),
            parent: 0,
            sink: Some(sink.clone()),
        }
    }
}

struct ThreadState {
    ctx: TraceCtx,
    stripe: usize,
}

thread_local! {
    static STATE: std::cell::RefCell<ThreadState> = std::cell::RefCell::new(ThreadState {
        ctx: TraceCtx::default(),
        stripe: next_id() as usize % RING_STRIPES,
    });
}

/// The calling thread's current trace context (cheap clone) — capture
/// before fanning work out to other threads, then re-enter it there
/// with [`with_ctx`].
#[must_use]
pub fn current_ctx() -> TraceCtx {
    STATE.with(|s| s.borrow().ctx.clone())
}

/// Runs `f` with `ctx` installed as the thread's trace context,
/// restoring the previous context afterwards.
pub fn with_ctx<R>(ctx: TraceCtx, f: impl FnOnce() -> R) -> R {
    let prev = STATE.with(|s| std::mem::replace(&mut s.borrow_mut().ctx, ctx));
    struct Restore(Option<TraceCtx>);
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(prev) = self.0.take() {
                STATE.with(|s| s.borrow_mut().ctx = prev);
            }
        }
    }
    let _restore = Restore(Some(prev));
    f()
}

/// An in-progress span; finishes (and records itself) on drop.
pub struct Span {
    name: &'static str,
    id: u64,
    parent: u64,
    start: Instant,
    start_us: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span {
    /// Opens a span named `name` under the thread's current parent and
    /// makes itself the parent of spans opened before it drops.
    #[must_use]
    pub fn enter(name: &'static str) -> Span {
        let start = Instant::now();
        let start_us = start.duration_since(epoch()).as_micros() as u64;
        let id = next_id();
        let parent = STATE.with(|s| {
            let mut s = s.borrow_mut();
            std::mem::replace(&mut s.ctx.parent, id)
        });
        Span {
            name,
            id,
            parent,
            start,
            start_us,
            fields: Vec::new(),
        }
    }

    /// Attaches an integer field.
    pub fn field_u64(&mut self, key: &'static str, value: u64) {
        self.fields.push((key, FieldValue::U64(value)));
    }

    /// Attaches a string field.
    pub fn field_str(&mut self, key: &'static str, value: impl Into<String>) {
        self.fields.push((key, FieldValue::Str(value.into())));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let (trace, sink, stripe) = STATE.with(|s| {
            let mut s = s.borrow_mut();
            // Restore this span's parent as the current one.
            s.ctx.parent = self.parent;
            (s.ctx.trace, s.ctx.sink.clone(), s.stripe)
        });
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            trace,
            name: self.name,
            start_us: self.start_us,
            dur_ns,
            fields: std::mem::take(&mut self.fields),
        };
        if let Some(sink) = sink {
            sink.push(record.clone());
        }
        pool()[stripe].push(record);
    }
}

/// Records an already-measured phase (for phases whose timing is taken
/// before a sink exists, like request parsing, or measured around a
/// blocking wait): attaches to the thread's current context like a
/// dropped [`Span`], but never changes the current parent.
pub fn record(
    name: &'static str,
    start: Instant,
    dur: Duration,
    fields: Vec<(&'static str, FieldValue)>,
) {
    let start_us = start
        .checked_duration_since(epoch())
        .unwrap_or_default()
        .as_micros() as u64;
    let (trace, parent, sink, stripe) = STATE.with(|s| {
        let s = s.borrow();
        (s.ctx.trace, s.ctx.parent, s.ctx.sink.clone(), s.stripe)
    });
    let record = SpanRecord {
        id: next_id(),
        parent,
        trace,
        name,
        start_us,
        dur_ns: dur.as_nanos().min(u128::from(u64::MAX)) as u64,
        fields,
    };
    if let Some(sink) = sink {
        sink.push(record.clone());
    }
    pool()[stripe].push(record);
}

/// The `n` most recently finished spans across all threads, oldest
/// first. Bounded by the global ring pool's capacity.
#[must_use]
pub fn recent(n: usize) -> Vec<SpanRecord> {
    let mut all: Vec<SpanRecord> = pool().iter().flat_map(SpanRing::snapshot).collect();
    all.sort_by_key(|r| (r.end_us(), r.id));
    let skip = all.len().saturating_sub(n);
    all.split_off(skip)
}

/// Touches the process time anchor so `start_us` is measured from
/// program start rather than first span; call early in `main`.
pub fn init() {
    let _ = epoch();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_parents() {
        let sink = TraceSink::new();
        with_ctx(TraceCtx::for_sink(&sink), || {
            let outer = Span::enter("outer");
            {
                let mut inner = Span::enter("inner");
                inner.field_u64("k", 7);
            }
            drop(outer);
        });
        let (records, dropped) = sink.take();
        assert_eq!(dropped, 0);
        assert_eq!(records.len(), 2);
        // Inner finishes first.
        assert_eq!(records[0].name, "inner");
        assert_eq!(records[1].name, "outer");
        assert_eq!(records[0].parent, records[1].id);
        assert_eq!(records[1].parent, 0);
        assert_eq!(records[0].trace, sink.trace_id());
        assert_eq!(records[0].fields, vec![("k", FieldValue::U64(7))]);
    }

    #[test]
    fn ctx_crosses_threads_explicitly() {
        let sink = TraceSink::new();
        let ctx = TraceCtx::for_sink(&sink);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ctx = ctx.clone();
                scope.spawn(move || {
                    with_ctx(ctx, || {
                        let _span = Span::enter("worker");
                    });
                });
            }
        });
        let (records, _) = sink.take();
        assert_eq!(records.len(), 4);
        assert!(records.iter().all(|r| r.trace == sink.trace_id()));
        // Without with_ctx, a thread records trace 0 and misses the sink.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _span = Span::enter("untraced");
            });
        });
        assert!(sink.take().0.is_empty());
    }

    #[test]
    fn ring_drops_oldest_on_wrap() {
        let ring = SpanRing::with_capacity(3);
        for i in 0..5u64 {
            ring.push(SpanRecord {
                id: i,
                parent: 0,
                trace: 0,
                name: "x",
                start_us: i,
                dur_ns: 0,
                fields: Vec::new(),
            });
        }
        let ids: Vec<u64> = ring.snapshot().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest two evicted, order kept");
    }

    #[test]
    fn recent_returns_latest_in_end_order() {
        // These land in the global pool; just assert our own spans
        // appear and are end-ordered.
        {
            let _a = Span::enter("recent_test_a");
        }
        {
            let _b = Span::enter("recent_test_b");
        }
        let recent = recent(usize::MAX);
        let names: Vec<&str> = recent
            .iter()
            .map(|r| r.name)
            .filter(|n| n.starts_with("recent_test_"))
            .collect();
        let a = names.iter().rposition(|n| *n == "recent_test_a").unwrap();
        let b = names.iter().rposition(|n| *n == "recent_test_b").unwrap();
        assert!(a < b);
        let mut ends: Vec<u64> = recent.iter().map(SpanRecord::end_us).collect();
        let sorted = {
            let mut s = ends.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(std::mem::take(&mut ends), sorted);
    }
}
