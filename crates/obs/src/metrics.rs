//! The metrics registry: counters, gauges and log-scale histograms.
//!
//! A [`Registry`] owns *families* (one metric name + help text), each
//! holding one or more *series* (label sets). Handles returned by the
//! registration methods are cheap `Arc`-backed atomics: recording is
//! lock-free, and registering the same `(name, labels)` twice returns
//! the same underlying series, so call sites can register lazily
//! without coordination. Snapshots iterate families and series in
//! sorted order, which is what makes the `/metrics` text exposition
//! deterministic for a given set of recorded values.
//!
//! Histograms use fixed log-linear buckets (powers of two, four
//! sub-buckets per octave — relative quantile error is bounded by
//! 1/8th of the value) over the full `u64` range, so two histograms
//! recorded independently merge into exactly the histogram of the
//! concatenated stream ([`Histogram::merge_from`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Sub-bucket resolution: 2 bits → 4 sub-buckets per power of two.
const SUB_BITS: u32 = 2;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`.
pub const HISTOGRAM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// Maps a value to its bucket index (log-linear, exact below
/// [`SUB_COUNT`]).
fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT {
        return value as usize;
    }
    let exp = u64::from(63 - value.leading_zeros());
    let sub_bits = u64::from(SUB_BITS);
    let sub = (value >> (exp - sub_bits)) & (SUB_COUNT - 1);
    (((exp - sub_bits + 1) << sub_bits) + sub) as usize
}

/// The largest value mapping to bucket `index` (the bucket's inclusive
/// upper bound; quantiles report this bound).
fn bucket_upper_bound(index: usize) -> u64 {
    let group = (index as u64) >> SUB_BITS;
    let sub = (index as u64) & (SUB_COUNT - 1);
    if group == 0 {
        sub
    } else {
        let base = (SUB_COUNT + sub) << (group - 1);
        let width = 1u64 << (group - 1);
        base.saturating_add(width - 1)
    }
}

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A standalone counter (unregistered; for tests and local use).
    #[must_use]
    pub fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A gauge: a value that can move both ways.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A standalone gauge (unregistered; for tests and local use).
    #[must_use]
    pub fn new() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// Shared histogram state: one atomic per bucket plus count and sum.
struct HistCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistCore {
    fn new() -> Self {
        HistCore {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log-scale histogram of `u64` samples (typically
/// latencies in microseconds or nanoseconds; the unit is the call
/// site's convention, named in the metric).
#[derive(Clone)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    /// A standalone histogram (unregistered; for local percentile math
    /// such as `servecli load`).
    #[must_use]
    pub fn new() -> Self {
        Histogram(Arc::new(HistCore::new()))
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as integer microseconds.
    pub fn record_micros(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping at `u64`).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding it: an over-estimate by at most one part in eight.
    /// Returns 0 on an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Folds `other`'s samples into `self`. Because buckets are fixed
    /// and identical across instances, merging is exactly equivalent to
    /// having recorded both sample streams into one histogram.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.0.buckets.iter().zip(&other.0.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.0.count.fetch_add(other.count(), Ordering::Relaxed);
        self.0.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// `(upper_bound, count)` for every non-empty bucket, in value
    /// order.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper_bound(i), n))
            })
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// One registered series: the handle plus its rendered label suffix.
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One metric family: help text, kind and its series keyed by rendered
/// labels (`""` for the unlabeled series).
struct Family {
    help: &'static str,
    series: BTreeMap<String, Series>,
}

/// A collection of metric families with deterministic snapshots.
///
/// Most code uses the process-wide [`global`] registry; tests that
/// need isolation construct their own.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

/// Renders a label set as a Prometheus label suffix (`{k="v",...}`),
/// empty for no labels. Label order is the caller's, which must be
/// consistent per family for determinism (all call sites in this
/// workspace use literal label slices).
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn series(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut families = self
            .families
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            series: BTreeMap::new(),
        });
        let key = render_labels(labels);
        match family.series.entry(key).or_insert_with(make) {
            Series::Counter(c) => Series::Counter(c.clone()),
            Series::Gauge(g) => Series::Gauge(g.clone()),
            Series::Histogram(h) => Series::Histogram(h.clone()),
        }
    }

    /// Registers (or retrieves) the unlabeled counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` was registered with a different metric kind.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) the counter `name` with `labels`.
    ///
    /// # Panics
    ///
    /// Panics if `name` was registered with a different metric kind.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        match self.series(name, help, labels, || Series::Counter(Counter::new())) {
            Series::Counter(c) => c,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) the unlabeled gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` was registered with a different metric kind.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) the gauge `name` with `labels` (e.g.
    /// the serve layer's per-state connection gauge family).
    ///
    /// # Panics
    ///
    /// Panics if `name` was registered with a different metric kind.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Gauge {
        match self.series(name, help, labels, || Series::Gauge(Gauge::new())) {
            Series::Gauge(g) => g,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) the unlabeled histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` was registered with a different metric kind.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or retrieves) the histogram `name` with `labels`.
    ///
    /// # Panics
    ///
    /// Panics if `name` was registered with a different metric kind.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.series(name, help, labels, || Series::Histogram(Histogram::new())) {
            Series::Histogram(h) => h,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// The registered metric family names, sorted.
    #[must_use]
    pub fn family_names(&self) -> Vec<&'static str> {
        self.families
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .keys()
            .copied()
            .collect()
    }

    /// A flat `(series name, value)` snapshot of every counter and
    /// gauge (histograms surface as `<name>_count`), sorted by name —
    /// the counter snapshot `/stats` embeds.
    #[must_use]
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        let families = self
            .families
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => out.push((format!("{name}{labels}"), c.get())),
                    Series::Gauge(g) => {
                        out.push((format!("{name}{labels}"), g.get().max(0) as u64));
                    }
                    Series::Histogram(h) => {
                        out.push((format!("{name}_count{labels}"), h.count()));
                    }
                }
            }
        }
        out
    }

    /// Renders every family in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, cumulative `_bucket` lines with
    /// `le` bounds in the histogram's native unit, `_sum`/`_count`).
    /// Families and series render in sorted order: two snapshots of
    /// the same recorded values are byte-identical.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let families = self
            .families
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        for (name, family) in families.iter() {
            let kind = match family.series.values().next() {
                Some(Series::Counter(_)) => "counter",
                Some(Series::Gauge(_)) => "gauge",
                Some(Series::Histogram(_)) => "histogram",
                None => continue,
            };
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", g.get());
                    }
                    Series::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (ub, n) in h.nonzero_buckets() {
                            cumulative += n;
                            let le = bucket_label(labels, ub);
                            let _ = writeln!(out, "{name}_bucket{le} {cumulative}");
                        }
                        let inf = bucket_label_inf(labels);
                        let _ = writeln!(out, "{name}_bucket{inf} {}", h.count());
                        let _ = writeln!(out, "{name}_sum{labels} {}", h.sum());
                        let _ = writeln!(out, "{name}_count{labels} {}", h.count());
                    }
                }
            }
        }
        out
    }
}

/// Splices an `le` bound into an existing label suffix.
fn bucket_label(labels: &str, ub: u64) -> String {
    if labels.is_empty() {
        format!("{{le=\"{ub}\"}}")
    } else {
        format!("{},le=\"{ub}\"}}", &labels[..labels.len() - 1])
    }
}

fn bucket_label_inf(labels: &str) -> String {
    if labels.is_empty() {
        "{le=\"+Inf\"}".to_string()
    } else {
        format!("{},le=\"+Inf\"}}", &labels[..labels.len() - 1])
    }
}

/// The process-wide registry every crate's instrumentation records
/// into; `GET /metrics` renders it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_bounded() {
        let mut last = 0usize;
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 9, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last, "index must not decrease: {v}");
            last = i;
            let ub = bucket_upper_bound(i);
            assert!(ub >= v, "upper bound {ub} below value {v}");
            // Relative error bound: ub <= v + v/4 for v >= 4.
            if v >= 4 {
                assert!(ub - v <= v / 4, "bucket too wide at {v}: ub {ub}");
            }
        }
        assert!(bucket_index(u64::MAX) < HISTOGRAM_BUCKETS);
    }

    #[test]
    fn exact_below_four_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 3);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 6);
    }

    #[test]
    fn registry_dedups_and_snapshots_sorted() {
        let r = Registry::new();
        let a = r.counter("zzz_total", "z");
        let b = r.counter("zzz_total", "z");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same series behind both handles");
        r.counter_with("aaa_total", "a", &[("k", "v")]).add(7);
        r.gauge("mmm", "m").set(5);
        let snap = r.counter_snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["aaa_total{k=\"v\"}", "mmm", "zzz_total"]);
        assert_eq!(snap[0].1, 7);
        assert_eq!(snap[2].1, 3);
    }

    #[test]
    fn prometheus_render_is_deterministic() {
        let r = Registry::new();
        r.counter("b_total", "bees").add(2);
        r.histogram("a_us", "durations").record(5);
        let one = r.render_prometheus();
        let two = r.render_prometheus();
        assert_eq!(one, two);
        assert!(one.contains("# TYPE a_us histogram"));
        assert!(one.contains("a_us_bucket{le=\"+Inf\"} 1"));
        assert!(one.contains("a_us_sum 5"));
        assert!(one.contains("b_total 2"));
        // Families in name order: a_us before b_total.
        assert!(one.find("a_us").unwrap() < one.find("b_total").unwrap());
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", "x");
        r.gauge("x", "x");
    }
}
