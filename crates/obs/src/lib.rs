//! `distvliw-obs`: the process-wide observability layer.
//!
//! Everything the rest of the workspace reports about a running process
//! funnels through this crate (std-only, like the `third_party/`
//! dependency stand-ins):
//!
//! * **Metrics** ([`metrics`]): a registry of monotonic counters,
//!   gauges and fixed-bucket log-scale histograms. Handles are cheap
//!   atomics (lock-free on the record path); snapshots are
//!   deterministic (name-sorted) and render in the Prometheus text
//!   exposition format for `GET /metrics`.
//! * **Tracing** ([`trace`]): a lightweight [`trace::Span`] guard API
//!   recording `(name, start, duration, parent, key=val fields)` into
//!   a bounded per-thread ring buffer, plus an optional per-request
//!   [`trace::TraceSink`] so one request's span tree can be gathered
//!   without scanning the global rings. The context (trace id, parent
//!   span, sink) propagates across worker threads explicitly via
//!   [`trace::with_ctx`].
//! * **Logging** ([`logger`]): a structured JSON-lines logger with two
//!   channels — `access` (one line per served request) and `event`
//!   (warnings such as accept-error backoff or connection reaps) —
//!   behind a process-global, no-op-until-installed sink.
//!
//! Instrumentation is observational only: nothing here feeds back into
//! scheduling or simulation, so golden outputs stay byte-identical
//! with the layer compiled in and enabled. See `docs/observability.md`
//! for the metric catalog and span taxonomy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod logger;
pub mod metrics;
pub mod trace;

pub use metrics::{global, Counter, Gauge, Histogram, Registry};
pub use trace::{Span, SpanRecord, TraceSink};

/// The number of OS threads in this process, read from
/// `/proc/self/status` (`0` where procfs is unavailable). The serving
/// layer exposes it so load tests can assert the event-loop server
/// stays at its fixed thread budget instead of growing a thread per
/// connection.
#[must_use]
pub fn process_threads() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}
