//! Structured JSON-lines logging.
//!
//! Two channels share one process-global sink installed by [`init`]:
//!
//! * **access** — one line per served request (method, path, status,
//!   cache outcome, bytes, per-phase micros), written to the target
//!   given to `serve --access-log <path|->`;
//! * **event** — operational warnings (accept-error backoff,
//!   connection reaps, slow requests), written to stderr once a sink is
//!   installed.
//!
//! Until [`init`] runs, both channels are no-ops, so library code can
//! log unconditionally and binaries opt in. Each line is one flat JSON
//! object rendered with the same escaping rules as the serve-side JSON
//! writer; writes are line-atomic (single `write_all` under a mutex).

use std::io::Write;
use std::sync::{Mutex, OnceLock};

/// A field value on a log line.
#[derive(Debug, Clone)]
pub enum LogValue {
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl From<u64> for LogValue {
    fn from(v: u64) -> LogValue {
        LogValue::U64(v)
    }
}

impl From<&str> for LogValue {
    fn from(v: &str) -> LogValue {
        LogValue::Str(v.to_string())
    }
}

impl From<String> for LogValue {
    fn from(v: String) -> LogValue {
        LogValue::Str(v)
    }
}

impl From<bool> for LogValue {
    fn from(v: bool) -> LogValue {
        LogValue::Bool(v)
    }
}

/// Where a channel's lines go.
enum Target {
    Stdout,
    Stderr,
    File(Mutex<std::fs::File>),
}

impl Target {
    fn write_line(&self, line: &str) {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        // Logging must never take the process down; drop lines on I/O
        // errors (e.g. a rotated-away file) instead.
        let _ = match self {
            Target::Stdout => std::io::stdout().lock().write_all(&buf),
            Target::Stderr => std::io::stderr().lock().write_all(&buf),
            Target::File(file) => file
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .write_all(&buf),
        };
    }
}

struct Sink {
    access: Option<Target>,
    events: bool,
}

static SINK: OnceLock<Sink> = OnceLock::new();

/// Installs the process logger: `access_log` of `Some("-")` sends
/// access lines to stdout, `Some(path)` appends to `path` (created if
/// missing), `None` disables the access channel. Events go to stderr
/// either way. Idempotent: only the first call takes effect; returns
/// whether this call installed the sink.
///
/// # Errors
/// Returns the I/O error if the access-log file cannot be opened.
pub fn init(access_log: Option<&str>) -> std::io::Result<bool> {
    let access = match access_log {
        None => None,
        Some("-") => Some(Target::Stdout),
        Some(path) => {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            Some(Target::File(Mutex::new(file)))
        }
    };
    let mut installed = false;
    let _ = SINK.get_or_init(|| {
        installed = true;
        Sink {
            access,
            events: true,
        }
    });
    Ok(installed)
}

/// Whether an access-log target is installed (lets callers skip
/// building fields for dropped lines).
#[must_use]
pub fn access_enabled() -> bool {
    SINK.get().is_some_and(|s| s.access.is_some())
}

/// Writes one access-log line with the given fields, in order.
/// No-op until [`init`] installs an access target.
pub fn access(fields: &[(&str, LogValue)]) {
    if let Some(target) = SINK.get().and_then(|s| s.access.as_ref()) {
        target.write_line(&render_line(fields));
    }
}

/// Writes one event line (stderr) at `level` (`"warn"`, `"info"`, …)
/// named `name`, with extra fields. No-op until [`init`].
pub fn event(level: &str, name: &str, fields: &[(&str, LogValue)]) {
    if SINK.get().is_some_and(|s| s.events) {
        let mut all = Vec::with_capacity(fields.len() + 2);
        all.push(("level", LogValue::Str(level.to_string())));
        all.push(("event", LogValue::Str(name.to_string())));
        all.extend_from_slice(fields);
        Target::Stderr.write_line(&render_line(&all));
    }
}

/// Renders `fields` as one flat JSON object (field order preserved).
#[must_use]
pub fn render_line(fields: &[(&str, LogValue)]) -> String {
    let mut out = String::with_capacity(64);
    out.push('{');
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(&mut out, key);
        out.push(':');
        match value {
            LogValue::U64(v) => out.push_str(&v.to_string()),
            LogValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            LogValue::Str(v) => escape_into(&mut out, v),
        }
    }
    out.push('}');
    out
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_json_in_field_order() {
        let line = render_line(&[
            ("method", LogValue::Str("GET".into())),
            ("status", LogValue::U64(200)),
            ("hit", LogValue::Bool(true)),
        ]);
        assert_eq!(line, r#"{"method":"GET","status":200,"hit":true}"#);
    }

    #[test]
    fn escapes_control_and_quote_chars() {
        let line = render_line(&[("p", LogValue::Str("a\"b\\c\nd\u{1}".into()))]);
        assert_eq!(line, r#"{"p":"a\"b\\c\nd\u0001"}"#);
    }

    #[test]
    fn channels_are_noops_until_init() {
        // Must not panic or write anywhere observable.
        access(&[("k", LogValue::U64(1))]);
        event("warn", "nothing", &[]);
        assert!(!access_enabled());
    }
}
