//! Property tests of the observability primitives.
//!
//! Histogram properties: quantiles are monotone in `q`, every reported
//! quantile is the upper bound of a bucket containing at least one
//! recorded value's bucket (bounded relative error: ≤ 1/8 above the
//! true value at that rank), and merging two histograms is exactly the
//! histogram of the concatenated record streams — the fixed-bucket
//! layout makes merge lossless by construction.
//!
//! Ring property: after any push sequence, a `SpanRing` holds exactly
//! the last `capacity` records in push order.
//!
//! Registry property: rendering is a pure function of the recorded
//! values — two registries fed the same operations render identical
//! Prometheus text, regardless of registration interleaving.

use distvliw_obs::metrics::{Histogram, Registry, HISTOGRAM_BUCKETS};
use distvliw_obs::trace::{SpanRecord, SpanRing};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Values spanning the interesting ranges: exact small values, typical
/// latencies, and huge outliers.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    pvec(prop_oneof![0u64..16, 1u64..100_000, any::<u64>(),], 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantiles_are_monotone_and_bound_true_rank(values in arb_values()) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        prop_assert_eq!(hist.count(), values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        let mut prev = 0u64;
        for step in 0..=20u32 {
            let q = f64::from(step) / 20.0;
            let got = hist.quantile(q);
            prop_assert!(got >= prev, "quantile must be monotone in q");
            prev = got;
            if !sorted.is_empty() {
                // The reported value is a bucket upper bound at the
                // target rank: never below the true ranked value, and
                // within the bucket's relative width (1/8) above it.
                let rank = ((q * sorted.len() as f64).ceil() as usize)
                    .clamp(1, sorted.len()) - 1;
                let truth = sorted[rank];
                prop_assert!(got >= truth);
                prop_assert!(got <= truth.saturating_add(truth / 4).saturating_add(3),
                    "q={} got={} truth={}", q, got, truth);
            }
        }
    }

    #[test]
    fn merge_equals_concatenated_records(a in arb_values(), b in arb_values()) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hc = Histogram::new();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge_from(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.sum(), hc.sum());
        prop_assert_eq!(ha.nonzero_buckets(), hc.nonzero_buckets());
        for step in 0..=10u32 {
            let q = f64::from(step) / 10.0;
            prop_assert_eq!(ha.quantile(q), hc.quantile(q));
        }
    }

    #[test]
    fn ring_keeps_exactly_the_last_capacity_records(
        capacity in 1usize..12,
        count in 0usize..40,
    ) {
        let ring = SpanRing::with_capacity(capacity);
        for i in 0..count {
            ring.push(SpanRecord {
                id: i as u64,
                parent: 0,
                trace: 0,
                name: "p",
                start_us: i as u64,
                dur_ns: 0,
                fields: Vec::new(),
            });
        }
        let ids: Vec<u64> = ring.snapshot().iter().map(|r| r.id).collect();
        let want: Vec<u64> = (count.saturating_sub(capacity)..count)
            .map(|i| i as u64)
            .collect();
        prop_assert_eq!(ids, want);
    }

    #[test]
    fn render_is_deterministic_in_registration_order(
        counts in pvec(0u64..50, 3),
        latencies in pvec(1u64..10_000, 0..20),
    ) {
        let render = |reverse: bool| {
            let reg = Registry::new();
            let names: Vec<(&str, u64)> = vec![
                ("pt_a_total", counts[0]),
                ("pt_b_total", counts[1]),
                ("pt_c_total", counts[2]),
            ];
            let order: Vec<usize> = if reverse { vec![2, 1, 0] } else { vec![0, 1, 2] };
            for &i in &order {
                let (name, n) = names[i];
                // SAFETY of 'static: these literals are 'static strs.
                let c = reg.counter(match name {
                    "pt_a_total" => "pt_a_total",
                    "pt_b_total" => "pt_b_total",
                    _ => "pt_c_total",
                }, "prop test counter");
                c.add(n);
            }
            let h = reg.histogram("pt_lat_us", "prop test histogram");
            for &v in &latencies {
                h.record(v);
            }
            reg.render_prometheus()
        };
        prop_assert_eq!(render(false), render(true));
    }
}

#[test]
fn bucket_count_covers_u64() {
    let hist = Histogram::new();
    hist.record(u64::MAX);
    hist.record(0);
    assert_eq!(hist.count(), 2);
    assert!(hist.nonzero_buckets().len() <= HISTOGRAM_BUCKETS);
    assert_eq!(hist.quantile(0.0), 0);
    assert_eq!(hist.quantile(1.0), u64::MAX);
}
