//! Per-benchmark specifications calibrated to the paper.
//!
//! Each benchmark is two (or three) loops: a *chained* loop carrying the
//! benchmark's memory-dependent work and a *streaming* loop carrying the
//! dependence-free rest. Segment sizes, instruction padding and loop
//! weights (invocation counts) are solved from the paper's Table 1 (data
//! sizes, interleaving factors) and Table 3 (CMR/CAR ratios); the
//! calibration tests in this crate assert the resulting ratios land in
//! the published bands.

use distvliw_ir::{Suite, Width};

use crate::alloc::AddressAllocator;
use crate::gen::{chain_loop, stream_loop, ChainSpec, Locality, StreamSpec};

/// Iterations per invocation used by every synthetic loop.
pub const TRIP: u64 = 256;
/// Invocation weight of each benchmark's chained loop.
pub const CHAIN_INVOCATIONS: u64 = 8;

/// Static description of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchSpec {
    /// Benchmark name (paper Table 1).
    pub name: &'static str,
    /// Interleaving factor in bytes (paper Table 1).
    pub interleave: u64,
    /// Dominant data width (paper Table 1).
    pub main_width: Width,
    /// Whether the kernels are floating-point dominated.
    pub fp: bool,
    /// Chain-loop segments (empty = no memory-dependent work, as in
    /// g721dec/g721enc whose Table 3 ratios are zero).
    pub segments: &'static [usize],
    /// Arithmetic padding of the chained loop.
    pub chain_pad: usize,
    /// Serial recurrence depth carved out of the padding (bounds the II).
    pub recurrence_depth: usize,
    /// Byte-granular chain pattern (see [`ChainSpec::byte_pattern`]).
    pub byte_chain: bool,
    /// Shared store operands (see [`ChainSpec::shared_store_operands`]).
    pub shared_store_operands: bool,
    /// Memory ops in the streaming loop.
    pub free_mem_ops: usize,
    /// Arithmetic per memory op in the streaming loop.
    pub free_arith_per_mem: usize,
    /// Invocations of the streaming loop (the weight solving Table 3).
    pub free_invocations: u64,
    /// Locality mix of the streaming loop.
    pub locality: &'static [Locality],
    /// Paper Table 3 targets, when published.
    pub table3: Option<(f64, f64)>,
}

use Locality::{Random, Single, Spread};

/// All fourteen benchmarks of paper Table 1.
pub const BENCHMARKS: &[BenchSpec] = &[
    BenchSpec {
        name: "epicdec",
        interleave: 4,
        main_width: Width::W4,
        fp: true,
        segments: &[24, 18, 18, 18],
        chain_pad: 93,
        recurrence_depth: 33,
        byte_chain: false,
        shared_store_operands: true,
        free_mem_ops: 8,
        free_arith_per_mem: 2,
        free_invocations: 44,
        locality: &[Single, Single, Spread],
        table3: Some((0.64, 0.22)),
    },
    BenchSpec {
        name: "epicenc",
        interleave: 4,
        main_width: Width::W4,
        fp: true,
        segments: &[12],
        chain_pad: 28,
        recurrence_depth: 5,
        byte_chain: false,
        shared_store_operands: true,
        free_mem_ops: 10,
        free_arith_per_mem: 2,
        free_invocations: 20,
        locality: &[Single, Single, Spread],
        table3: None,
    },
    BenchSpec {
        name: "g721dec",
        interleave: 2,
        main_width: Width::W2,
        fp: false,
        segments: &[],
        chain_pad: 0,
        recurrence_depth: 0,
        byte_chain: false,
        shared_store_operands: false,
        free_mem_ops: 8,
        free_arith_per_mem: 4,
        free_invocations: 40,
        locality: &[Single, Single, Single, Spread],
        table3: Some((0.0, 0.0)),
    },
    BenchSpec {
        name: "g721enc",
        interleave: 2,
        main_width: Width::W2,
        fp: false,
        segments: &[],
        chain_pad: 0,
        recurrence_depth: 0,
        byte_chain: false,
        shared_store_operands: false,
        free_mem_ops: 8,
        free_arith_per_mem: 4,
        free_invocations: 40,
        locality: &[Single, Single, Single, Spread],
        table3: Some((0.0, 0.0)),
    },
    BenchSpec {
        name: "gsmdec",
        interleave: 2,
        main_width: Width::W2,
        fp: false,
        segments: &[6],
        chain_pad: 24,
        recurrence_depth: 5,
        byte_chain: false,
        shared_store_operands: false,
        free_mem_ops: 10,
        free_arith_per_mem: 5,
        free_invocations: 22,
        locality: &[Single, Single, Spread],
        table3: Some((0.18, 0.02)),
    },
    BenchSpec {
        name: "gsmenc",
        interleave: 2,
        main_width: Width::W2,
        fp: false,
        segments: &[6],
        chain_pad: 20,
        recurrence_depth: 5,
        byte_chain: false,
        shared_store_operands: false,
        free_mem_ops: 12,
        free_arith_per_mem: 4,
        free_invocations: 46,
        locality: &[Single, Single, Spread],
        table3: Some((0.08, 0.01)),
    },
    BenchSpec {
        name: "jpegdec",
        interleave: 4,
        main_width: Width::W1,
        fp: false,
        segments: &[12],
        chain_pad: 53,
        recurrence_depth: 10,
        byte_chain: true,
        shared_store_operands: false,
        free_mem_ops: 8,
        free_arith_per_mem: 3,
        free_invocations: 14,
        locality: &[Spread, Single, Random],
        table3: Some((0.46, 0.09)),
    },
    BenchSpec {
        name: "jpegenc",
        interleave: 4,
        main_width: Width::W4,
        fp: false,
        segments: &[6],
        chain_pad: 29,
        recurrence_depth: 5,
        byte_chain: false,
        shared_store_operands: false,
        free_mem_ops: 12,
        free_arith_per_mem: 1,
        free_invocations: 53,
        locality: &[Single, Spread, Single],
        table3: Some((0.07, 0.03)),
    },
    BenchSpec {
        name: "mpeg2dec",
        interleave: 4,
        main_width: Width::W8,
        fp: true,
        segments: &[6],
        chain_pad: 28,
        recurrence_depth: 2,
        byte_chain: false,
        shared_store_operands: false,
        free_mem_ops: 12,
        free_arith_per_mem: 1,
        free_invocations: 27,
        locality: &[Single, Spread, Single],
        table3: Some((0.13, 0.05)),
    },
    BenchSpec {
        name: "pegwitdec",
        interleave: 2,
        main_width: Width::W2,
        fp: false,
        segments: &[6],
        chain_pad: 41,
        recurrence_depth: 5,
        byte_chain: false,
        shared_store_operands: false,
        free_mem_ops: 10,
        free_arith_per_mem: 1,
        free_invocations: 13,
        locality: &[Single, Random, Single],
        table3: Some((0.27, 0.07)),
    },
    BenchSpec {
        name: "pegwitenc",
        interleave: 2,
        main_width: Width::W2,
        fp: false,
        segments: &[12],
        chain_pad: 64,
        recurrence_depth: 10,
        byte_chain: false,
        shared_store_operands: false,
        free_mem_ops: 10,
        free_arith_per_mem: 1,
        free_invocations: 18,
        locality: &[Single, Random, Single],
        table3: Some((0.35, 0.09)),
    },
    BenchSpec {
        name: "pgpdec",
        interleave: 4,
        main_width: Width::W4,
        fp: false,
        segments: &[18, 6],
        chain_pad: 25,
        recurrence_depth: 20,
        byte_chain: false,
        shared_store_operands: false,
        free_mem_ops: 8,
        free_arith_per_mem: 2,
        free_invocations: 9,
        locality: &[Single, Single, Spread],
        table3: Some((0.73, 0.24)),
    },
    BenchSpec {
        name: "pgpenc",
        interleave: 4,
        main_width: Width::W4,
        fp: false,
        segments: &[12, 6],
        chain_pad: 18,
        recurrence_depth: 15,
        byte_chain: false,
        shared_store_operands: false,
        free_mem_ops: 8,
        free_arith_per_mem: 2,
        free_invocations: 11,
        locality: &[Single, Single, Spread],
        table3: Some((0.63, 0.21)),
    },
    BenchSpec {
        name: "rasta",
        interleave: 4,
        main_width: Width::W4,
        fp: true,
        segments: &[6, 6, 6, 6],
        chain_pad: 10,
        recurrence_depth: 10,
        byte_chain: false,
        shared_store_operands: false,
        free_mem_ops: 8,
        free_arith_per_mem: 1,
        free_invocations: 22,
        locality: &[Single, Single, Spread],
        table3: Some((0.52, 0.26)),
    },
];

/// Builds the suite for one benchmark spec.
#[must_use]
pub fn build_suite(spec: &BenchSpec) -> Suite {
    let mut suite = Suite::new(spec.name, spec.interleave);
    let mut alloc = AddressAllocator::new();
    let seed = spec.name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3)
    });

    if !spec.segments.is_empty() {
        let chain = ChainSpec {
            name: "chained",
            segments: spec.segments.to_vec(),
            interleave: spec.interleave,
            arith_pad: spec.chain_pad,
            recurrence_depth: spec.recurrence_depth,
            byte_pattern: spec.byte_chain,
            shared_store_operands: spec.shared_store_operands,
            fp: spec.fp,
            trip: TRIP,
            invocations: CHAIN_INVOCATIONS,
        };
        suite.kernels.push(chain_loop(&chain, &mut alloc));
    }

    let free = StreamSpec {
        name: "streaming",
        mem_ops: spec.free_mem_ops,
        store_every: 3,
        width: spec.main_width,
        interleave: spec.interleave,
        locality: spec.locality.to_vec(),
        arith_per_mem: spec.free_arith_per_mem,
        fp: spec.fp,
        trip: TRIP,
        invocations: spec.free_invocations,
        seed,
    };
    suite.kernels.push(stream_loop(&free, &mut alloc, 4));
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_coherence::chain_stats;

    #[test]
    fn all_fourteen_benchmarks_build_and_validate() {
        assert_eq!(BENCHMARKS.len(), 14);
        for spec in BENCHMARKS {
            let suite = build_suite(spec);
            assert!(!suite.kernels.is_empty(), "{}", spec.name);
            for k in &suite.kernels {
                assert!(
                    k.validate().is_ok(),
                    "{}/{}: {:?}",
                    spec.name,
                    k.name,
                    k.validate()
                );
            }
        }
    }

    #[test]
    fn interleaving_factors_match_table1() {
        for spec in BENCHMARKS {
            let expected = match spec.name {
                "g721dec" | "g721enc" | "gsmdec" | "gsmenc" | "pegwitdec" | "pegwitenc" => 2,
                _ => 4,
            };
            assert_eq!(spec.interleave, expected, "{}", spec.name);
        }
    }

    #[test]
    fn chain_ratios_land_in_table3_bands() {
        for spec in BENCHMARKS {
            let Some((cmr, car)) = spec.table3 else {
                continue;
            };
            let suite = build_suite(spec);
            let stats = chain_stats(suite.kernels.iter());
            assert!(
                (stats.cmr - cmr).abs() <= 0.08,
                "{}: CMR {:.3} vs paper {:.2}",
                spec.name,
                stats.cmr,
                cmr
            );
            assert!(
                (stats.car - car).abs() <= 0.05,
                "{}: CAR {:.3} vs paper {:.2}",
                spec.name,
                stats.car,
                car
            );
            assert!(stats.car <= stats.cmr + 1e-9, "{}", spec.name);
        }
    }

    #[test]
    fn g721_has_no_chains() {
        for name in ["g721dec", "g721enc"] {
            let spec = BENCHMARKS.iter().find(|s| s.name == name).unwrap();
            let suite = build_suite(spec);
            let stats = chain_stats(suite.kernels.iter());
            assert_eq!(stats.cmr, 0.0, "{name}");
        }
    }

    #[test]
    fn epicdec_has_the_paper_sized_chain() {
        let spec = BENCHMARKS.iter().find(|s| s.name == "epicdec").unwrap();
        let suite = build_suite(spec);
        let chained = &suite.kernels[0];
        let chains = distvliw_coherence::find_chains(&chained.ddg);
        // Paper Section 5.4: "an important loop consists of 76 memory
        // instructions which form a huge memory dependent chain".
        assert!(
            (70..=84).contains(&chains.biggest_len()),
            "epicdec chain: {}",
            chains.biggest_len()
        );
    }

    #[test]
    fn suites_are_deterministic() {
        let spec = BENCHMARKS.iter().find(|s| s.name == "pegwitdec").unwrap();
        let a = build_suite(spec);
        let b = build_suite(spec);
        let ka = &a.kernels[1];
        let kb = &b.kernels[1];
        for (m, s) in ka.exec.iter() {
            assert_eq!(kb.exec.get(m), Some(s));
        }
    }
}
