//! Deterministic address-space allocation for synthetic benchmarks.
//!
//! Each benchmark lays out its arrays in two address spaces: one for the
//! *profile* input and one for the *execution* input. Array offsets (and
//! therefore alignments modulo `n_clusters × interleave`) are identical in
//! both spaces — the paper's *padding* (Section 2.2), which keeps the
//! preferred cluster of a memory instruction consistent across inputs.

/// Base of the profile-input address space.
pub const PROFILE_BASE: u64 = 0x0010_0000;
/// Base of the execution-input address space.
pub const EXEC_BASE: u64 = 0x0090_0000;

/// Allocates 64-byte-aligned arrays at matching offsets in the profile and
/// execution address spaces.
#[derive(Debug, Clone)]
pub struct AddressAllocator {
    offset: u64,
}

impl AddressAllocator {
    /// A fresh allocator (offsets start at zero).
    #[must_use]
    pub fn new() -> Self {
        AddressAllocator { offset: 0 }
    }

    /// Reserves `bytes` and returns the `(profile, exec)` base addresses.
    /// Bases are 64-byte aligned, so every array starts at cluster 0's
    /// word of a fresh cache block in both spaces.
    pub fn array(&mut self, bytes: u64) -> (u64, u64) {
        self.array_skewed(bytes, 0)
    }

    /// Like [`AddressAllocator::array`], but the execution-input base is
    /// shifted by `exec_skew` bytes — an *unpadded* array whose home
    /// clusters differ between the profile and execution inputs. The
    /// paper pads data so preferred clusters stay consistent, but not
    /// every access is padddable; these arrays are what makes the
    /// PrefClus heuristic fallible (and MinComs "usually better",
    /// Section 4.1).
    pub fn array_skewed(&mut self, bytes: u64, exec_skew: u64) -> (u64, u64) {
        let base = self.offset;
        self.offset += bytes.div_ceil(64) * 64 + 64;
        (PROFILE_BASE + base, EXEC_BASE + base + exec_skew)
    }
}

impl Default for AddressAllocator {
    fn default() -> Self {
        AddressAllocator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_are_disjoint_and_aligned() {
        let mut a = AddressAllocator::new();
        let (p1, e1) = a.array(100);
        let (p2, e2) = a.array(64);
        assert_eq!(p1 % 64, 0);
        assert_eq!(p2 % 64, 0);
        assert!(p2 >= p1 + 100);
        assert!(e2 >= e1 + 100);
        // Matching offsets (padding): alignment is identical.
        assert_eq!(p1 - PROFILE_BASE, e1 - EXEC_BASE);
        assert_eq!(p2 - PROFILE_BASE, e2 - EXEC_BASE);
    }

    #[test]
    fn profile_and_exec_spaces_do_not_overlap() {
        let mut a = AddressAllocator::new();
        for _ in 0..1000 {
            let (p, e) = a.array(4096);
            assert!(p < EXEC_BASE);
            assert!(e > PROFILE_BASE);
        }
    }
}
