//! Generator combinators for synthetic loop kernels.
//!
//! Two loop shapes cover the Mediabench behaviours the paper's evaluation
//! depends on:
//!
//! * [`chain_loop`] — an in-place sliding-window update (pyramid filter,
//!   multiprecision arithmetic, filter bank): loads and wide stores with
//!   *overlapping* byte ranges on a shared array, producing genuine
//!   MF/MA/MO dependences through [`add_true_mem_deps`], an honest
//!   memory-disambiguation pass. Several *segments* on disjoint arrays
//!   can be linked by conservative (never-aliasing) edges — exactly the
//!   may-alias residue that the paper's code specialization removes.
//! * [`stream_loop`] — independent streaming accesses (no memory
//!   dependences) with a configurable locality profile.
//!
//! All address streams are wrap-around indexed tables, modelling blocked
//! media processing (a working window re-walked many times), and are
//! generated deterministically from per-benchmark seeds.

use std::sync::Arc;

use distvliw_ir::{
    AddressStream, Ddg, DdgBuilder, DepKind, LoopKernel, MemId, NodeId, OpKind, PrefInfo, PrefMap,
    Width,
};
use rand::{RngExt, SeedableRng};

use crate::alloc::AddressAllocator;

/// Iterations after which every address stream wraps (the working
/// window): 64 elements keeps per-op footprints at half a cache module.
pub const WRAP: u64 = 64;

/// Maximum loop-carried distance examined by the disambiguator; media
/// kernels carry their reuse within a couple of iterations.
pub const MAX_DEP_DISTANCE: u32 = 2;

/// How the addresses of a streaming access spread over clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// Stride `n_clusters × interleave`: the access touches one cluster
    /// for the whole loop (the shape loop unrolling produces, paper
    /// Section 2.2).
    Single,
    /// Element-stride walk: the access round-robins all clusters.
    Spread,
    /// Profiled-random: addresses drawn from a seeded RNG over a region
    /// (table lookups); the profile and execution inputs use different
    /// seeds.
    Random,
}

/// Builds the wrap-around stream `base + offset + stride·(i mod WRAP)`.
fn wrap_stream(base: u64, offset: u64, stride: u64) -> AddressStream {
    let table: Vec<u64> = (0..WRAP).map(|i| base + offset + stride * i).collect();
    AddressStream::Indexed(Arc::from(table))
}

/// Builds a seeded random stream over `slots` positions of `stride` bytes.
fn random_stream(base: u64, stride: u64, slots: u64, seed: u64) -> AddressStream {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let table: Vec<u64> = (0..WRAP)
        .map(|_| base + stride * rng.random_range(0..slots))
        .collect();
    AddressStream::Indexed(Arc::from(table))
}

/// Whether streams `a` (at iteration `i`) and `b` (at iteration `i + d`)
/// ever touch overlapping byte ranges; exact for wrap-around tables.
fn streams_overlap(a: &AddressStream, wa: u64, b: &AddressStream, wb: u64, d: u64) -> bool {
    (0..WRAP.saturating_mul(2)).any(|i| {
        let ra = a.addr_at(i);
        let rb = b.addr_at(i + d);
        ra < rb + wb && rb < ra + wa
    })
}

/// The honest memory-disambiguation pass: for every ordered pair of
/// memory operations and every distance up to [`MAX_DEP_DISTANCE`], adds
/// the appropriate dependence edge (MF store→load, MA load→store, MO
/// store→store) when their execution streams actually overlap. Returns
/// the number of edges added.
pub fn add_true_mem_deps(
    ddg: &mut Ddg,
    kernel_exec: &[(NodeId, MemId)],
    streams: &dyn Fn(MemId) -> (AddressStream, u64),
) -> usize {
    let mut added = 0;
    for (ai, &(a, ma)) in kernel_exec.iter().enumerate() {
        for (bi, &(b, mb)) in kernel_exec.iter().enumerate() {
            if a == b {
                continue;
            }
            let (sa, wa) = streams(ma);
            let (sb, wb) = streams(mb);
            let a_store = ddg.node(a).is_store();
            let b_store = ddg.node(b).is_store();
            let kind = match (a_store, b_store) {
                (true, false) => DepKind::MemFlow,
                (false, true) => DepKind::MemAnti,
                (true, true) => DepKind::MemOut,
                (false, false) => continue,
            };
            for d in 0..=MAX_DEP_DISTANCE {
                if d == 0 && bi <= ai {
                    continue; // same-iteration edges follow program order
                }
                if streams_overlap(&sa, wa, &sb, wb, u64::from(d)) {
                    ddg.add_dep(a, b, kind, d);
                    added += 1;
                }
            }
        }
    }
    added
}

/// Specification of a chained (in-place) loop.
#[derive(Debug, Clone)]
pub struct ChainSpec {
    /// Loop name within the suite.
    pub name: &'static str,
    /// Memory operations per segment; segments sit on disjoint arrays and
    /// are linked by conservative may-alias edges. Sizes are rounded up
    /// to whole periods of the 6-op overlap pattern (4 loads, 2 stores).
    pub segments: Vec<usize>,
    /// Cache interleaving the pattern is built for (2 or 4 bytes).
    pub interleave: u64,
    /// Extra arithmetic operations (filter math). The first
    /// `recurrence_depth` of them form a serial loop-carried recurrence
    /// (the filter accumulator), which bounds the achievable II for
    /// *every* solution and keeps the MDC serialization penalty in the
    /// moderate range the paper reports (Table 4).
    pub arith_pad: usize,
    /// Length of the serial recurrence carved out of `arith_pad`.
    pub recurrence_depth: usize,
    /// Byte-granular pattern (jpegdec): all accesses of a segment fall in
    /// one interleave unit, so the whole chain prefers a single cluster.
    pub byte_pattern: bool,
    /// The two stores of a period share their value and address producers
    /// (epic's pyramid writes one computed value to two locations); this
    /// halves the operand broadcast DDGT must pay.
    pub shared_store_operands: bool,
    /// Whether the arithmetic is floating point.
    pub fp: bool,
    /// Iterations per invocation.
    pub trip: u64,
    /// Invocations (the loop's weight in the benchmark).
    pub invocations: u64,
}

/// One period of the overlap pattern: load offsets (in interleave units
/// 0..4) and store offsets chosen so that the stores' wide accesses
/// overlap every load and the last store reaches into the next iteration
/// — a connected web of MF/MA/MO dependences spanning all four clusters.
struct Pattern {
    load_offsets: [u64; 4],
    load_width: Width,
    store_offsets: [u64; 2],
    store_width: Width,
    stride: u64,
}

fn pattern(interleave: u64, byte_pattern: bool) -> Pattern {
    if byte_pattern {
        // Byte data under a wider interleave: the whole window sits in a
        // single interleave unit, so every access shares one home.
        return Pattern {
            load_offsets: [0, 1, 2, 3],
            load_width: Width::W1,
            store_offsets: [0, 2],
            store_width: Width::W4,
            stride: 4 * interleave,
        };
    }
    match interleave {
        2 => Pattern {
            // Stores at 2 and 5 overlap each other (MO), cover loads 2..6
            // (MA), and store 5 reaches load 0 of the next iteration (MF).
            load_offsets: [0, 2, 4, 6],
            load_width: Width::W2,
            store_offsets: [2, 5],
            store_width: Width::W4,
            stride: 8,
        },
        _ => Pattern {
            // Same shape scaled ×2: stores at 2 and 9 (8-byte) overlap,
            // cover every load, and reach into the next iteration.
            load_offsets: [0, 4, 8, 12],
            load_width: Width::W4,
            store_offsets: [2, 9],
            store_width: Width::W8,
            stride: 16,
        },
    }
}

/// Builds a chained loop per `spec`.
///
/// # Panics
///
/// Panics if the spec has no segments or zero-sized segments.
#[must_use]
pub fn chain_loop(spec: &ChainSpec, alloc: &mut AddressAllocator) -> LoopKernel {
    assert!(
        !spec.segments.is_empty(),
        "chain loop needs at least one segment"
    );
    let pat = pattern(spec.interleave, spec.byte_pattern);
    let mut b = DdgBuilder::new();
    let mut profile_streams: Vec<(MemId, AddressStream)> = Vec::new();
    let mut exec_streams: Vec<(MemId, AddressStream)> = Vec::new();
    let mut mem_ops: Vec<(NodeId, MemId)> = Vec::new();
    let mut segment_stores: Vec<Vec<NodeId>> = Vec::new();
    let mut segment_first_load: Vec<NodeId> = Vec::new();

    for &seg_size in &spec.segments {
        assert!(seg_size > 0, "segments must be nonempty");
        let periods = seg_size.div_ceil(6);
        let (pbase, ebase) = alloc.array(pat.stride * WRAP + 64);
        let mut stores = Vec::new();
        let mut first_load = None;
        for _ in 0..periods {
            // Loads first (program order), then the stores that overlap
            // them — an in-place window update.
            let mut loads = Vec::new();
            for &off in &pat.load_offsets {
                let ld = b.load(pat.load_width);
                let mem = b.graph().node(ld).mem_id().expect("load site");
                profile_streams.push((mem, wrap_stream(pbase, off, pat.stride)));
                exec_streams.push((mem, wrap_stream(ebase, off, pat.stride)));
                mem_ops.push((ld, mem));
                loads.push(ld);
                first_load.get_or_insert(ld);
            }
            // A small reduction over the window feeds each store. Every
            // store gets its own value producer and its own address
            // computation: under DDGT both operands must be broadcast to
            // all replica instances, which is exactly the paper's
            // register-bus pressure ("each instance of a given store
            // receives all its source operands by register-to-register
            // communication operations", Section 5.3).
            let kind = if spec.fp {
                OpKind::FpAlu
            } else {
                OpKind::IntAlu
            };
            let t0 = b.op(kind, &[loads[0], loads[1]]);
            let t1 = b.op(kind, &[loads[2], loads[3]]);
            let shared = spec
                .shared_store_operands
                .then(|| (b.op(kind, &[t0, t1]), b.op(OpKind::IntAlu, &[])));
            for (si, &off) in pat.store_offsets.iter().enumerate() {
                let (value, addr) = match shared {
                    Some(pair) => pair,
                    None => {
                        let value = if si % 2 == 0 {
                            b.op(kind, &[t0, t1])
                        } else {
                            b.op(kind, &[t1, t0])
                        };
                        (value, b.op(OpKind::IntAlu, &[]))
                    }
                };
                let st = b.store(pat.store_width, &[value, addr]);
                let mem = b.graph().node(st).mem_id().expect("store site");
                profile_streams.push((mem, wrap_stream(pbase, off, pat.stride)));
                exec_streams.push((mem, wrap_stream(ebase, off, pat.stride)));
                mem_ops.push((st, mem));
                stores.push(st);
            }
        }
        segment_stores.push(stores);
        segment_first_load.push(first_load.expect("segment has loads"));
    }

    // The filter accumulator: a serial loop-carried recurrence that
    // bounds the II of every solution alike.
    let rec_kind = if spec.fp {
        OpKind::FpAlu
    } else {
        OpKind::IntAlu
    };
    let depth = spec.recurrence_depth.min(spec.arith_pad);
    if depth > 0 {
        let first = b.op(rec_kind, &[]);
        let mut cur = first;
        for _ in 1..depth {
            cur = b.op(rec_kind, &[cur]);
        }
        b.recurrence(cur, first, 1);
    }

    // Independent arithmetic padding (the surrounding filter math).
    let mut prev: Option<NodeId> = None;
    for i in depth..spec.arith_pad {
        let kind = match (spec.fp, i % 3) {
            (true, 0) => OpKind::FpMul,
            (true, _) => OpKind::FpAlu,
            (false, 0) => OpKind::IntMul,
            (false, _) => OpKind::IntAlu,
        };
        let srcs: Vec<NodeId> = prev.into_iter().collect();
        let n = b.op(kind, &srcs);
        prev = if i % 4 == 3 { None } else { Some(n) };
    }

    let mut ddg = b.finish();

    // True dependences from actual overlap.
    let exec_map: std::collections::BTreeMap<MemId, AddressStream> =
        exec_streams.iter().cloned().collect();
    let width_map: std::collections::BTreeMap<MemId, u64> = mem_ops
        .iter()
        .map(|&(n, m)| (m, ddg.node(n).mem.expect("mem op").width.bytes()))
        .collect();
    let lookup = |m: MemId| (exec_map[&m].clone(), width_map[&m]);
    add_true_mem_deps(&mut ddg, &mem_ops, &lookup);

    // Conservative links between consecutive segments: the compiler could
    // not disambiguate the segment arrays, so it added a may-alias edge
    // from each segment's last store to the next segment's first load.
    // These never alias at run time — code specialization removes them.
    for s in 0..spec.segments.len().saturating_sub(1) {
        let from = *segment_stores[s].last().expect("segment has stores");
        let to = segment_first_load[s + 1];
        ddg.add_dep(from, to, DepKind::MemFlow, 0);
    }

    let mut kernel = LoopKernel::new(spec.name, ddg, spec.trip);
    kernel.invocations = spec.invocations;
    kernel.profile.extend(profile_streams);
    kernel.exec.extend(exec_streams);
    kernel
}

/// Specification of a streaming (dependence-free) loop.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Loop name within the suite.
    pub name: &'static str,
    /// Number of memory operations.
    pub mem_ops: usize,
    /// Every `store_every`-th memory op is a store (0 = loads only).
    pub store_every: usize,
    /// Access width.
    pub width: Width,
    /// Cache interleaving (2 or 4 bytes).
    pub interleave: u64,
    /// Locality profile per op (cycled).
    pub locality: Vec<Locality>,
    /// Arithmetic operations per memory op.
    pub arith_per_mem: usize,
    /// Whether the arithmetic is floating point.
    pub fp: bool,
    /// Iterations per invocation.
    pub trip: u64,
    /// Invocations.
    pub invocations: u64,
    /// Seed for the random locality streams.
    pub seed: u64,
}

/// Builds a streaming loop per `spec`.
///
/// # Panics
///
/// Panics if `mem_ops` or `locality` is empty.
#[must_use]
pub fn stream_loop(spec: &StreamSpec, alloc: &mut AddressAllocator, n_clusters: u64) -> LoopKernel {
    assert!(spec.mem_ops > 0, "stream loop needs memory operations");
    assert!(
        !spec.locality.is_empty(),
        "locality pattern must be nonempty"
    );
    let mut b = DdgBuilder::new();
    let mut profile_streams: Vec<(MemId, AddressStream)> = Vec::new();
    let mut exec_streams: Vec<(MemId, AddressStream)> = Vec::new();
    let width = spec.width.bytes();
    let period = n_clusters * spec.interleave;

    let mut loaded: Vec<NodeId> = Vec::new();
    for i in 0..spec.mem_ops {
        let locality = spec.locality[i % spec.locality.len()];
        let footprint = match locality {
            Locality::Single => period * WRAP + 64,
            Locality::Spread => width * WRAP + 64,
            Locality::Random => period * WRAP * 4 + 64,
        };
        // Every fourth array cannot be padded: its execution-input home
        // clusters are rotated by one relative to the profile.
        let skew = if i % 4 == 1 { spec.interleave } else { 0 };
        let (pbase, ebase) = alloc.array_skewed(footprint, skew);
        // Rotate single-cluster ops across clusters for balance.
        let unit_offset = (i as u64 % n_clusters) * spec.interleave;
        let (pstream, estream) = match locality {
            Locality::Single => (
                wrap_stream(pbase, unit_offset, period),
                wrap_stream(ebase, unit_offset, period),
            ),
            Locality::Spread => (wrap_stream(pbase, 0, width), wrap_stream(ebase, 0, width)),
            Locality::Random => (
                random_stream(pbase, width, WRAP * 4, spec.seed ^ (i as u64) << 1),
                random_stream(ebase, width, WRAP * 4, spec.seed ^ (i as u64) << 1 ^ 0xABCD),
            ),
        };
        let is_store = spec.store_every > 0 && i % spec.store_every == spec.store_every - 1;
        let node = if is_store {
            let srcs: Vec<NodeId> = loaded.last().copied().into_iter().collect();
            b.store(spec.width, &srcs)
        } else {
            let ld = b.load(spec.width);
            loaded.push(ld);
            ld
        };
        let mem = b.graph().node(node).mem_id().expect("mem op");
        profile_streams.push((mem, pstream));
        exec_streams.push((mem, estream));
    }

    // Arithmetic consuming the loads (stall-on-use consumers).
    let kind = if spec.fp {
        OpKind::FpAlu
    } else {
        OpKind::IntAlu
    };
    let mul = if spec.fp {
        OpKind::FpMul
    } else {
        OpKind::IntMul
    };
    let total_arith = spec.mem_ops * spec.arith_per_mem;
    let mut prev: Option<NodeId> = None;
    for i in 0..total_arith {
        let mut srcs: Vec<NodeId> = Vec::new();
        if let Some(p) = prev {
            srcs.push(p);
        }
        if !loaded.is_empty() && i < loaded.len() {
            srcs.push(loaded[i]);
        }
        let n = b.op(if i % 5 == 4 { mul } else { kind }, &srcs);
        prev = if i % 3 == 2 { None } else { Some(n) };
    }

    let mut kernel = LoopKernel::new(spec.name, b.finish(), spec.trip);
    kernel.invocations = spec.invocations;
    kernel.profile.extend(profile_streams);
    kernel.exec.extend(exec_streams);
    kernel
}

/// An adversarial kernel for the ejection scheduler, plus the profile
/// that arms it: a `chain_len`-op memory-dependent chain whose profile
/// pins it (under MDC + PrefClus) to cluster 0, and one *higher
/// priority* load preferring the same cluster, trailed by a dependent
/// ALU tail that hoists it to the top of the priority order.
///
/// At the chain's constrained MII the early load occupies the one
/// memory-unit slot the chain is short of, so the restart-only search
/// must give the whole II away; the ejection scheduler instead cascades
/// the chain down one slot, evicts the intruder to another cluster and
/// keeps the II. Used by the `sched/eject` benchmarks and the ejection
/// regression tests.
#[must_use]
pub fn eject_stress_kernel(n_clusters: usize, chain_len: usize) -> (LoopKernel, PrefMap) {
    let mut b = DdgBuilder::new();
    let chain: Vec<NodeId> = (0..chain_len).map(|_| b.load(Width::W4)).collect();
    for w in chain.windows(2) {
        b.dep(w[0], w[1], DepKind::MemAnti, 0);
    }
    let intruder = b.load(Width::W4);
    let mut prev = intruder;
    for _ in 0..4 {
        prev = b.op(OpKind::IntAlu, &[prev]);
    }
    let ddg = b.finish();

    let mut prefs = PrefMap::new();
    let cluster0 = || {
        let mut counts = vec![0u64; n_clusters];
        counts[0] = 100;
        PrefInfo::from_counts(counts)
    };
    for &l in chain.iter().chain(std::iter::once(&intruder)) {
        prefs.insert(ddg.node(l).mem_id().expect("loads have sites"), cluster0());
    }

    let mut kernel = LoopKernel::new("eject_stress", ddg, 16);
    let sites: Vec<_> = kernel
        .ddg
        .mem_nodes()
        .map(|n| kernel.ddg.node(n).mem_id().expect("memory op"))
        .collect();
    for (i, mem) in sites.into_iter().enumerate() {
        let stream = AddressStream::Affine {
            base: 4096 + i as u64 * 0x100,
            stride: 4,
        };
        kernel.profile.insert(mem, stream.clone());
        kernel.exec.insert(mem, stream);
    }
    (kernel, prefs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_coherence::find_chains;

    fn chain_spec() -> ChainSpec {
        ChainSpec {
            name: "test.chain",
            segments: vec![6, 6],
            interleave: 4,
            arith_pad: 8,
            recurrence_depth: 4,
            byte_pattern: false,
            shared_store_operands: false,
            fp: false,
            trip: 128,
            invocations: 1,
        }
    }

    #[test]
    fn chain_loop_is_valid_and_connected() {
        let mut alloc = AddressAllocator::new();
        let k = chain_loop(&chain_spec(), &mut alloc);
        assert!(k.validate().is_ok(), "{:?}", k.validate());
        let chains = find_chains(&k.ddg);
        // Both segments are linked by the conservative edge: one chain of
        // 12 memory ops.
        assert_eq!(chains.biggest_len(), 12);
    }

    #[test]
    fn chain_loop_has_all_three_dep_kinds() {
        let mut alloc = AddressAllocator::new();
        let k = chain_loop(&chain_spec(), &mut alloc);
        let kinds: std::collections::BTreeSet<String> = k
            .ddg
            .mem_dep_edges()
            .map(|(_, d)| d.kind.to_string())
            .collect();
        assert!(kinds.contains("MF"), "{kinds:?}");
        assert!(kinds.contains("MA"), "{kinds:?}");
        assert!(kinds.contains("MO"), "{kinds:?}");
    }

    #[test]
    fn chain_loads_spread_over_clusters() {
        let mut alloc = AddressAllocator::new();
        let k = chain_loop(&chain_spec(), &mut alloc);
        // Loads at offsets 0,4,8,12 with stride 16 → homes 0..3.
        let homes: std::collections::BTreeSet<u64> = k
            .ddg
            .loads()
            .map(|l| {
                let mem = k.ddg.node(l).mem_id().unwrap();
                (k.exec.addr(mem, 0) / 4) % 4
            })
            .collect();
        assert_eq!(homes.len(), 4, "{homes:?}");
    }

    #[test]
    fn interleave2_pattern_uses_short_accesses() {
        let mut alloc = AddressAllocator::new();
        let spec = ChainSpec {
            interleave: 2,
            ..chain_spec()
        };
        let k = chain_loop(&spec, &mut alloc);
        let widths: std::collections::BTreeSet<u64> = k
            .ddg
            .mem_nodes()
            .map(|n| k.ddg.node(n).mem.unwrap().width.bytes())
            .collect();
        assert!(widths.contains(&2));
        assert!(widths.contains(&4));
    }

    #[test]
    fn overlap_detection_is_symmetric_enough() {
        let a = wrap_stream(0, 0, 16);
        let b = wrap_stream(0, 2, 16);
        // W4 at offset 0 overlaps W8 at offset 2 in the same iteration.
        assert!(streams_overlap(&a, 4, &b, 8, 0));
        assert!(streams_overlap(&b, 8, &a, 4, 0));
        // Disjoint arrays never overlap.
        let c = wrap_stream(1 << 20, 0, 16);
        assert!(!streams_overlap(&a, 4, &c, 8, 0));
    }

    #[test]
    fn wrap_stream_wraps() {
        let s = wrap_stream(100, 4, 8);
        assert_eq!(s.addr_at(0), 104);
        assert_eq!(s.addr_at(WRAP), 104);
        assert_eq!(s.addr_at(1), 112);
    }

    #[test]
    fn random_streams_differ_between_inputs() {
        let p = random_stream(0, 4, 256, 1);
        let e = random_stream(0, 4, 256, 2);
        let same = (0..WRAP).all(|i| p.addr_at(i) == e.addr_at(i));
        assert!(!same);
    }
}
