//! Trace-file workloads: recorded address streams read from disk.
//!
//! The synthetic generators in [`crate::gen`] cover the paper's
//! calibrated Mediabench substitutes; this module opens the second
//! workload class the ROADMAP asks for — *recorded* address streams in a
//! simple line-oriented text format, so real (or captured) memory
//! behaviour can be replayed through the same pipeline. A [`Trace`]
//! parses from text, renders back canonically (write → parse → write is
//! byte-identical), and converts to a [`Suite`] whose memory dependences
//! are rediscovered honestly from the recorded streams via
//! [`crate::gen::add_true_mem_deps`].
//!
//! # Format (`v1`)
//!
//! Line-oriented, whitespace-separated tokens; `#` starts a comment,
//! blank lines are ignored. Numbers are decimal or `0x`-prefixed hex.
//!
//! ```text
//! trace <name> interleave=<2|4> clusters=<n>
//! kernel <name> trip=<n> invocations=<n>
//! mem <load|store> w<1|2|4|8> profile=<stream> exec=<stream> [home=<c>]
//! arith <int|fp> count=<n> depth=<d>
//! end
//! ```
//!
//! A `<stream>` is either `affine:<base>:<stride>` (stride must be
//! non-negative: recorded streams walk forward) or `idx:<a>,<a>,...`
//! (an explicit per-iteration address table, cycled). The optional
//! `home=<c>` annotation records the home cluster of the op's first
//! execution address on the *recording* machine and must be a valid
//! cluster id of the `clusters` header. See `docs/workloads.md` for the
//! full specification and the recording protocol.

use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

use distvliw_ir::{AddressStream, DdgBuilder, LoopKernel, MemId, NodeId, OpKind, Suite, Width};

use crate::gen::add_true_mem_deps;

/// One recorded address stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStream {
    /// `addr(i) = base + stride * i` with a non-negative stride.
    Affine {
        /// Address at iteration 0.
        base: u64,
        /// Per-iteration increment in bytes.
        stride: u64,
    },
    /// Explicit per-iteration addresses; cycles when the loop runs
    /// longer than the table.
    Indexed(Vec<u64>),
}

impl TraceStream {
    /// Converts to the simulator's [`AddressStream`].
    #[must_use]
    pub fn to_stream(&self) -> AddressStream {
        match self {
            TraceStream::Affine { base, stride } => AddressStream::Affine {
                base: *base,
                stride: *stride as i64,
            },
            TraceStream::Indexed(table) => AddressStream::Indexed(Arc::from(table.as_slice())),
        }
    }

    fn render(&self) -> String {
        match self {
            TraceStream::Affine { base, stride } => format!("affine:0x{base:x}:{stride}"),
            TraceStream::Indexed(table) => {
                let addrs: Vec<String> = table.iter().map(|a| format!("0x{a:x}")).collect();
                format!("idx:{}", addrs.join(","))
            }
        }
    }
}

/// One recorded memory operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMemOp {
    /// `true` for stores.
    pub store: bool,
    /// Access width.
    pub width: Width,
    /// Stream under the profiling input.
    pub profile: TraceStream,
    /// Stream under the execution input.
    pub exec: TraceStream,
    /// Home cluster of the first execution address on the recording
    /// machine, if the recorder annotated it.
    pub home: Option<usize>,
}

/// One record of a trace kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// A memory operation with its recorded streams.
    Mem(TraceMemOp),
    /// A block of arithmetic operations. The first `depth` form a
    /// serial loop-carried recurrence (bounding the II, like the
    /// synthetic chain loops); the rest are independent padding.
    Arith {
        /// Floating-point arithmetic.
        fp: bool,
        /// Number of operations.
        count: usize,
        /// Recurrence depth carved out of `count`.
        depth: usize,
    },
}

/// One recorded loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceKernel {
    /// Loop name, unique within the trace.
    pub name: String,
    /// Iterations per invocation.
    pub trip: u64,
    /// Invocations over the recorded run.
    pub invocations: u64,
    /// Records in program order.
    pub ops: Vec<TraceOp>,
}

/// A parsed trace file: a named set of recorded loops plus the cache
/// interleave and cluster count of the recording machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Trace (suite) name.
    pub name: String,
    /// Interleaving factor in bytes of the recording machine (2 or 4,
    /// paper Table 1).
    pub interleave: u64,
    /// Cluster count of the recording machine (scopes `home=`
    /// annotations).
    pub clusters: usize,
    /// The recorded loops.
    pub kernels: Vec<TraceKernel>,
}

/// Typed parse/validation errors. Every variant that refers to file
/// content carries the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file does not start with a `trace` header.
    MissingHeader,
    /// A second `trace` header appeared.
    DuplicateHeader(usize),
    /// A line starts with an unknown directive.
    UnknownDirective(usize, String),
    /// A record is missing a required field (truncated).
    Truncated(usize, &'static str),
    /// A token that should be a number is not one.
    BadNumber(usize, String),
    /// A field that must be positive is zero.
    ZeroField(usize, &'static str),
    /// A memory width other than 1, 2, 4 or 8 bytes.
    BadWidth(usize, String),
    /// An interleave other than 2 or 4 bytes.
    BadInterleave(usize, u64),
    /// An affine stream with a negative stride.
    NegativeStride(usize, i64),
    /// An indexed stream with no addresses.
    EmptyStream(usize),
    /// A `home=` cluster id outside the header's `clusters` range.
    BadClusterId {
        /// Offending line.
        line: usize,
        /// The annotated cluster id.
        home: usize,
        /// The header's cluster count.
        clusters: usize,
    },
    /// A complete record followed by unexpected extra tokens (a typo'd
    /// or misplaced field would otherwise be silently dropped).
    TrailingToken(usize, String),
    /// A `mem`/`arith` record outside a `kernel` block.
    OpOutsideKernel(usize),
    /// A `kernel` block without records.
    EmptyKernel(usize),
    /// The file ended inside a `kernel` block (no `end`).
    UnterminatedKernel,
    /// The trace declares no kernels.
    EmptyTrace,
    /// Reading the file failed.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::MissingHeader => write!(f, "missing `trace` header line"),
            TraceError::DuplicateHeader(l) => write!(f, "line {l}: duplicate `trace` header"),
            TraceError::UnknownDirective(l, d) => write!(f, "line {l}: unknown directive `{d}`"),
            TraceError::Truncated(l, what) => {
                write!(f, "line {l}: truncated record: missing {what}")
            }
            TraceError::BadNumber(l, t) => write!(f, "line {l}: `{t}` is not a number"),
            TraceError::ZeroField(l, what) => write!(f, "line {l}: {what} must be positive"),
            TraceError::BadWidth(l, w) => {
                write!(f, "line {l}: bad width `{w}` (expected w1, w2, w4 or w8)")
            }
            TraceError::BadInterleave(l, v) => {
                write!(f, "line {l}: bad interleave {v} (expected 2 or 4)")
            }
            TraceError::NegativeStride(l, s) => {
                write!(
                    f,
                    "line {l}: negative stride {s} (recorded streams walk forward)"
                )
            }
            TraceError::EmptyStream(l) => write!(f, "line {l}: indexed stream has no addresses"),
            TraceError::BadClusterId {
                line,
                home,
                clusters,
            } => write!(
                f,
                "line {line}: bad cluster id {home} (recording machine has {clusters} clusters)"
            ),
            TraceError::TrailingToken(l, t) => {
                write!(f, "line {l}: unexpected trailing token `{t}`")
            }
            TraceError::OpOutsideKernel(l) => {
                write!(f, "line {l}: record outside a `kernel` block")
            }
            TraceError::EmptyKernel(l) => write!(f, "line {l}: kernel block has no records"),
            TraceError::UnterminatedKernel => write!(f, "file ended inside a `kernel` block"),
            TraceError::EmptyTrace => write!(f, "trace declares no kernels"),
            TraceError::Io(e) => write!(f, "reading trace failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

fn parse_u64(line: usize, tok: &str) -> Result<u64, TraceError> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        tok.parse::<u64>()
    };
    parsed.map_err(|_| TraceError::BadNumber(line, tok.to_string()))
}

/// Extracts the value of a `key=value` token, or a truncation error.
fn keyed<'a>(line: usize, tok: Option<&'a str>, key: &'static str) -> Result<&'a str, TraceError> {
    let tok = tok.ok_or(TraceError::Truncated(line, key))?;
    tok.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or(TraceError::Truncated(line, key))
}

fn parse_stream(line: usize, tok: &str) -> Result<TraceStream, TraceError> {
    if let Some(rest) = tok.strip_prefix("affine:") {
        let mut parts = rest.splitn(2, ':');
        let base = parse_u64(line, parts.next().unwrap_or(""))?;
        let stride_tok = parts.next().ok_or(TraceError::Truncated(line, "stride"))?;
        // A `-` prefix is rejected before numeric conversion, so stride
        // magnitudes beyond i64 cannot overflow a negation (they still
        // report as the typed NegativeStride error, saturated).
        if let Some(magnitude) = stride_tok.strip_prefix('-') {
            let magnitude = parse_u64(line, magnitude)?;
            let stride = i64::try_from(magnitude).map_or(i64::MIN, |m| -m);
            return Err(TraceError::NegativeStride(line, stride));
        }
        let stride = parse_u64(line, stride_tok)?;
        // `AddressStream::Affine` carries an i64 stride; a magnitude
        // above i64::MAX would wrap negative on replay.
        if i64::try_from(stride).is_err() {
            return Err(TraceError::BadNumber(line, stride_tok.to_string()));
        }
        Ok(TraceStream::Affine { base, stride })
    } else if let Some(rest) = tok.strip_prefix("idx:") {
        if rest.is_empty() {
            return Err(TraceError::EmptyStream(line));
        }
        let table: Vec<u64> = rest
            .split(',')
            .map(|a| parse_u64(line, a))
            .collect::<Result<_, _>>()?;
        if table.is_empty() {
            return Err(TraceError::EmptyStream(line));
        }
        Ok(TraceStream::Indexed(table))
    } else {
        Err(TraceError::BadNumber(line, tok.to_string()))
    }
}

/// Parses a trace from text.
///
/// # Errors
///
/// Returns the first [`TraceError`] found, with its line number.
pub fn parse(text: &str) -> Result<Trace, TraceError> {
    let mut trace: Option<Trace> = None;
    let mut kernel: Option<(usize, TraceKernel)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut toks = content.split_whitespace();
        let directive = toks.next().expect("nonempty line has a first token");
        match directive {
            "trace" => {
                if trace.is_some() {
                    return Err(TraceError::DuplicateHeader(line));
                }
                let name = toks
                    .next()
                    .ok_or(TraceError::Truncated(line, "trace name"))?
                    .to_string();
                let interleave = parse_u64(line, keyed(line, toks.next(), "interleave")?)?;
                if !matches!(interleave, 2 | 4) {
                    return Err(TraceError::BadInterleave(line, interleave));
                }
                let clusters = parse_u64(line, keyed(line, toks.next(), "clusters")?)? as usize;
                if clusters == 0 {
                    return Err(TraceError::ZeroField(line, "clusters"));
                }
                trace = Some(Trace {
                    name,
                    interleave,
                    clusters,
                    kernels: Vec::new(),
                });
            }
            "kernel" => {
                if trace.is_none() {
                    return Err(TraceError::MissingHeader);
                }
                if kernel.is_some() {
                    return Err(TraceError::UnterminatedKernel);
                }
                let name = toks
                    .next()
                    .ok_or(TraceError::Truncated(line, "kernel name"))?
                    .to_string();
                let trip = parse_u64(line, keyed(line, toks.next(), "trip")?)?;
                if trip == 0 {
                    return Err(TraceError::ZeroField(line, "trip"));
                }
                let invocations = parse_u64(line, keyed(line, toks.next(), "invocations")?)?;
                if invocations == 0 {
                    return Err(TraceError::ZeroField(line, "invocations"));
                }
                kernel = Some((
                    line,
                    TraceKernel {
                        name,
                        trip,
                        invocations,
                        ops: Vec::new(),
                    },
                ));
            }
            "mem" => {
                if trace.is_none() {
                    return Err(TraceError::MissingHeader);
                }
                let (_, k) = kernel.as_mut().ok_or(TraceError::OpOutsideKernel(line))?;
                let dir = toks
                    .next()
                    .ok_or(TraceError::Truncated(line, "load|store"))?;
                let store = match dir {
                    "load" => false,
                    "store" => true,
                    other => return Err(TraceError::UnknownDirective(line, other.to_string())),
                };
                let wtok = toks.next().ok_or(TraceError::Truncated(line, "width"))?;
                let width = wtok
                    .strip_prefix('w')
                    .and_then(|n| n.parse::<u64>().ok())
                    .and_then(Width::from_bytes)
                    .ok_or_else(|| TraceError::BadWidth(line, wtok.to_string()))?;
                let profile = parse_stream(line, keyed(line, toks.next(), "profile")?)?;
                let exec = parse_stream(line, keyed(line, toks.next(), "exec")?)?;
                let home = match toks.next() {
                    None => None,
                    // Anything that is not the optional `home=` field is
                    // a stray token, not a missing one — report it as
                    // such rather than as Truncated("home").
                    Some(tok) if !tok.starts_with("home=") => {
                        return Err(TraceError::TrailingToken(line, tok.to_string()));
                    }
                    Some(tok) => {
                        let home = parse_u64(line, keyed(line, Some(tok), "home")?)? as usize;
                        let clusters = trace.as_ref().expect("header parsed").clusters;
                        if home >= clusters {
                            return Err(TraceError::BadClusterId {
                                line,
                                home,
                                clusters,
                            });
                        }
                        Some(home)
                    }
                };
                k.ops.push(TraceOp::Mem(TraceMemOp {
                    store,
                    width,
                    profile,
                    exec,
                    home,
                }));
            }
            "arith" => {
                if trace.is_none() {
                    return Err(TraceError::MissingHeader);
                }
                let (_, k) = kernel.as_mut().ok_or(TraceError::OpOutsideKernel(line))?;
                let kind = toks.next().ok_or(TraceError::Truncated(line, "int|fp"))?;
                let fp = match kind {
                    "int" => false,
                    "fp" => true,
                    other => return Err(TraceError::UnknownDirective(line, other.to_string())),
                };
                let count = parse_u64(line, keyed(line, toks.next(), "count")?)? as usize;
                if count == 0 {
                    return Err(TraceError::ZeroField(line, "count"));
                }
                let depth = parse_u64(line, keyed(line, toks.next(), "depth")?)? as usize;
                k.ops.push(TraceOp::Arith { fp, count, depth });
            }
            "end" => {
                let trace = trace.as_mut().ok_or(TraceError::MissingHeader)?;
                let (start, k) = kernel.take().ok_or(TraceError::OpOutsideKernel(line))?;
                if k.ops.is_empty() {
                    return Err(TraceError::EmptyKernel(start));
                }
                trace.kernels.push(k);
            }
            other => return Err(TraceError::UnknownDirective(line, other.to_string())),
        }
        // Every arm consumed its full record; anything left over is a
        // typo'd or misplaced field, not something to drop silently.
        if let Some(extra) = toks.next() {
            return Err(TraceError::TrailingToken(line, extra.to_string()));
        }
    }
    if kernel.is_some() {
        return Err(TraceError::UnterminatedKernel);
    }
    let trace = trace.ok_or(TraceError::MissingHeader)?;
    if trace.kernels.is_empty() {
        return Err(TraceError::EmptyTrace);
    }
    Ok(trace)
}

/// Loads and parses a trace file.
///
/// # Errors
///
/// Returns [`TraceError::Io`] when reading fails, or the first parse
/// error.
pub fn load(path: impl AsRef<std::path::Path>) -> Result<Trace, TraceError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
    parse(&text)
}

/// Names are single whitespace-free tokens in the file format; anything
/// a recorder might carry that would break tokenization (whitespace, a
/// `#` that the comment stripper would swallow) is mapped to `_` on
/// write, so a rendered trace always re-parses.
fn sanitize_name(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_whitespace() || c == '#' {
                '_'
            } else {
                c
            }
        })
        .collect();
    if cleaned.is_empty() {
        "_".to_string()
    } else {
        cleaned
    }
}

impl Trace {
    /// Renders the trace in canonical form: parsing the output and
    /// rendering again is byte-identical. Names are sanitized to single
    /// tokens (`sanitize_name`), so the output re-parses even when a
    /// recorded suite carried a name the format cannot hold.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# distvliw address-stream trace v1");
        let _ = writeln!(
            out,
            "trace {} interleave={} clusters={}",
            sanitize_name(&self.name),
            self.interleave,
            self.clusters
        );
        for k in &self.kernels {
            let _ = writeln!(
                out,
                "kernel {} trip={} invocations={}",
                sanitize_name(&k.name),
                k.trip,
                k.invocations
            );
            for op in &k.ops {
                match op {
                    TraceOp::Mem(m) => {
                        let dir = if m.store { "store" } else { "load" };
                        let home = m.home.map_or(String::new(), |h| format!(" home={h}"));
                        let _ = writeln!(
                            out,
                            "mem {dir} w{} profile={} exec={}{home}",
                            m.width.bytes(),
                            m.profile.render(),
                            m.exec.render()
                        );
                    }
                    TraceOp::Arith { fp, count, depth } => {
                        let kind = if *fp { "fp" } else { "int" };
                        let _ = writeln!(out, "arith {kind} count={count} depth={depth}");
                    }
                }
            }
            let _ = writeln!(out, "end");
        }
        out
    }

    /// Converts the trace into a pipeline-ready [`Suite`]. Memory
    /// dependences are rediscovered from the recorded *execution*
    /// streams by the same honest disambiguation pass the synthetic
    /// generators use ([`add_true_mem_deps`]), so a replayed trace gets
    /// exactly the MF/MA/MO edges its addresses imply.
    #[must_use]
    pub fn to_suite(&self) -> Suite {
        let mut suite = Suite::new(self.name.clone(), self.interleave);
        for tk in &self.kernels {
            let mut b = DdgBuilder::new();
            let mut mem_ops: Vec<(NodeId, MemId)> = Vec::new();
            let mut profile_streams: Vec<(MemId, AddressStream)> = Vec::new();
            let mut exec_streams: Vec<(MemId, AddressStream)> = Vec::new();
            let mut last_load: Option<NodeId> = None;
            for op in &tk.ops {
                match op {
                    TraceOp::Mem(m) => {
                        let srcs: Vec<NodeId> = last_load.into_iter().collect();
                        let node = if m.store {
                            b.store(m.width, &srcs)
                        } else {
                            let l = b.load(m.width);
                            last_load = Some(l);
                            l
                        };
                        let mem = b.graph().node(node).mem_id().expect("mem op");
                        profile_streams.push((mem, m.profile.to_stream()));
                        exec_streams.push((mem, m.exec.to_stream()));
                        mem_ops.push((node, mem));
                    }
                    TraceOp::Arith { fp, count, depth } => {
                        let kind = if *fp { OpKind::FpAlu } else { OpKind::IntAlu };
                        let mul = if *fp { OpKind::FpMul } else { OpKind::IntMul };
                        let depth = (*depth).min(*count);
                        if depth > 0 {
                            let first = b.op(kind, &[]);
                            let mut cur = first;
                            for _ in 1..depth {
                                cur = b.op(kind, &[cur]);
                            }
                            b.recurrence(cur, first, 1);
                        }
                        let mut prev: Option<NodeId> = None;
                        for i in depth..*count {
                            let srcs: Vec<NodeId> = prev
                                .into_iter()
                                .chain(if i == depth { last_load } else { None })
                                .collect();
                            let n = b.op(if i % 5 == 4 { mul } else { kind }, &srcs);
                            prev = if i % 4 == 3 { None } else { Some(n) };
                        }
                    }
                }
            }
            let mut ddg = b.finish();
            let exec_map: std::collections::BTreeMap<MemId, AddressStream> =
                exec_streams.iter().cloned().collect();
            let width_map: std::collections::BTreeMap<MemId, u64> = mem_ops
                .iter()
                .map(|&(n, m)| (m, ddg.node(n).mem.expect("mem op").width.bytes()))
                .collect();
            let lookup = |m: MemId| (exec_map[&m].clone(), width_map[&m]);
            add_true_mem_deps(&mut ddg, &mem_ops, &lookup);

            let mut kernel = LoopKernel::new(tk.name.clone(), ddg, tk.trip);
            kernel.invocations = tk.invocations;
            kernel.profile.extend(profile_streams);
            kernel.exec.extend(exec_streams);
            suite.kernels.push(kernel);
        }
        suite
    }

    /// Records a trace from an existing suite: every memory site's
    /// profile and execution streams are captured (affine streams
    /// verbatim when their stride is non-negative, otherwise sampled
    /// into an indexed table over `sample` iterations), annotated with
    /// the home cluster of the first execution address on a
    /// `clusters`-cluster machine. Arithmetic is summarized as one
    /// independent padding block per kernel — a trace records memory
    /// behaviour, not the IR.
    #[must_use]
    pub fn from_suite(suite: &Suite, clusters: usize, sample: usize) -> Trace {
        let sample = sample.max(1);
        let capture = |s: &AddressStream| match s {
            AddressStream::Affine { base, stride } if *stride >= 0 => TraceStream::Affine {
                base: *base,
                stride: *stride as u64,
            },
            other => TraceStream::Indexed((0..sample as u64).map(|i| other.addr_at(i)).collect()),
        };
        let kernels = suite
            .kernels
            .iter()
            .map(|k| {
                let mut ops = Vec::new();
                for n in k.ddg.mem_nodes() {
                    if k.ddg.replica_of(n).is_some() {
                        continue;
                    }
                    let node = k.ddg.node(n);
                    let mem = node.mem_id().expect("mem op");
                    let exec = k.exec.get(mem).expect("bound exec stream");
                    let home =
                        ((exec.addr_at(0) / suite.interleave_bytes) % clusters as u64) as usize;
                    ops.push(TraceOp::Mem(TraceMemOp {
                        store: node.is_store(),
                        width: node.mem.expect("mem op").width,
                        profile: capture(k.profile.get(mem).expect("bound profile stream")),
                        exec: capture(exec),
                        home: Some(home),
                    }));
                }
                let arith = k
                    .ddg
                    .node_ids()
                    .filter(|&n| !k.ddg.node(n).is_memory())
                    .count();
                if arith > 0 {
                    let fp = k
                        .ddg
                        .node_ids()
                        .any(|n| matches!(k.ddg.node(n).kind, OpKind::FpAlu | OpKind::FpMul));
                    ops.push(TraceOp::Arith {
                        fp,
                        count: arith,
                        depth: 0,
                    });
                }
                TraceKernel {
                    name: k.name.clone(),
                    trip: k.trip_count,
                    invocations: k.invocations,
                    ops,
                }
            })
            .collect();
        Trace {
            name: suite.name.clone(),
            interleave: suite.interleave_bytes,
            clusters,
            kernels,
        }
    }
}

/// The example traces committed under `traces/`, parsed at build time.
///
/// # Panics
///
/// Panics if a bundled trace fails to parse (a commit-time invariant,
/// pinned by this crate's tests).
#[must_use]
pub fn bundled_traces() -> Vec<Trace> {
    [
        include_str!("../../../traces/fir8.trace"),
        include_str!("../../../traces/ptrchase.trace"),
    ]
    .iter()
    .map(|text| parse(text).expect("bundled trace parses"))
    .collect()
}

/// The bundled example traces as pipeline-ready suites.
#[must_use]
pub fn trace_suites() -> Vec<Suite> {
    bundled_traces().iter().map(Trace::to_suite).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            name: "toy".into(),
            interleave: 4,
            clusters: 4,
            kernels: vec![TraceKernel {
                name: "k0".into(),
                trip: 16,
                invocations: 2,
                ops: vec![
                    TraceOp::Mem(TraceMemOp {
                        store: false,
                        width: Width::W4,
                        profile: TraceStream::Affine {
                            base: 0x1000,
                            stride: 16,
                        },
                        exec: TraceStream::Affine {
                            base: 0x9000,
                            stride: 16,
                        },
                        home: Some(0),
                    }),
                    TraceOp::Mem(TraceMemOp {
                        store: true,
                        width: Width::W8,
                        profile: TraceStream::Indexed(vec![0x1002, 0x1012]),
                        exec: TraceStream::Indexed(vec![0x9002, 0x9012]),
                        home: None,
                    }),
                    TraceOp::Arith {
                        fp: false,
                        count: 6,
                        depth: 2,
                    },
                ],
            }],
        }
    }

    #[test]
    fn write_parse_write_is_byte_identical() {
        let first = sample_trace().render();
        let parsed = parse(&first).unwrap();
        assert_eq!(parsed, sample_trace());
        assert_eq!(parsed.render(), first);
    }

    #[test]
    fn bundled_traces_round_trip_and_validate() {
        for trace in bundled_traces() {
            let text = trace.render();
            let reparsed = parse(&text).unwrap();
            assert_eq!(reparsed, trace, "{}", trace.name);
            assert_eq!(reparsed.render(), text, "{}", trace.name);
            let suite = trace.to_suite();
            assert!(!suite.kernels.is_empty(), "{}", trace.name);
            for k in &suite.kernels {
                assert!(
                    k.validate().is_ok(),
                    "{}/{}: {:?}",
                    trace.name,
                    k.name,
                    k.validate()
                );
            }
        }
    }

    #[test]
    fn comments_and_number_bases_are_accepted() {
        let text = "\n# a comment\ntrace t interleave=2 clusters=2  # trailing\n\
                    kernel k trip=0x10 invocations=1\n\
                    mem load w2 profile=affine:4096:2 exec=affine:0x1000:2\n\
                    end\n";
        let t = parse(text).unwrap();
        assert_eq!(t.kernels[0].trip, 16);
        let TraceOp::Mem(m) = &t.kernels[0].ops[0] else {
            panic!("mem op");
        };
        assert_eq!(m.profile, m.exec);
    }

    #[test]
    fn malformed_lines_produce_typed_errors() {
        let hdr = "trace t interleave=4 clusters=4\n";
        let krn = "kernel k trip=8 invocations=1\n";
        let cases: [(&str, TraceError); 11] = [
            (
                "kernel k trip=8 invocations=1\nend\n",
                TraceError::MissingHeader,
            ),
            (
                "trace t interleave=4 clusters=4\ntrace u interleave=2 clusters=2\n",
                TraceError::DuplicateHeader(2),
            ),
            (
                "trace t interleave=3 clusters=4\n",
                TraceError::BadInterleave(1, 3),
            ),
            (
                "trace t interleave=4 clusters=0\n",
                TraceError::ZeroField(1, "clusters"),
            ),
            (
                &format!("{hdr}{krn}mem load w3 profile=affine:0:4 exec=affine:0:4\nend\n"),
                TraceError::BadWidth(3, "w3".into()),
            ),
            (
                &format!("{hdr}{krn}mem load w4 profile=affine:0:-4 exec=affine:0:4\nend\n"),
                TraceError::NegativeStride(3, -4),
            ),
            (
                &format!("{hdr}{krn}mem load w4 profile=affine:0:4 exec=affine:0:4 home=7\nend\n"),
                TraceError::BadClusterId {
                    line: 3,
                    home: 7,
                    clusters: 4,
                },
            ),
            (
                &format!("{hdr}{krn}mem load w4 profile=affine:0:4\nend\n"),
                TraceError::Truncated(3, "exec"),
            ),
            (
                &format!("{hdr}mem load w4 profile=affine:0:4 exec=affine:0:4\n"),
                TraceError::OpOutsideKernel(2),
            ),
            (
                &format!("{hdr}{krn}mem load w4 profile=idx: exec=affine:0:4\nend\n"),
                TraceError::EmptyStream(3),
            ),
            (
                &format!("{hdr}{krn}mem load w4 profile=affine:0:4 exec=affine:0:4\n"),
                TraceError::UnterminatedKernel,
            ),
        ];
        for (text, want) in cases {
            assert_eq!(parse(text).unwrap_err(), want, "input: {text}");
        }
        assert_eq!(parse(hdr).unwrap_err(), TraceError::EmptyTrace);
        assert_eq!(
            parse(&format!("{hdr}{krn}end\n")).unwrap_err(),
            TraceError::EmptyKernel(2)
        );
        assert!(matches!(
            parse(&format!("{hdr}{krn}warp speed\nend\n")).unwrap_err(),
            TraceError::UnknownDirective(3, _)
        ));
        assert!(matches!(
            parse(&format!("{hdr}kernel k trip=zap invocations=1\nend\n")).unwrap_err(),
            TraceError::BadNumber(2, _)
        ));
        assert!(matches!(
            load("/nonexistent/path.trace").unwrap_err(),
            TraceError::Io(_)
        ));
    }

    #[test]
    fn extreme_strides_are_typed_errors_not_panics() {
        let hdr = "trace t interleave=4 clusters=4\nkernel k trip=8 invocations=1\n";
        // i64::MIN magnitude used to overflow a negation; it must report
        // as a (saturated) NegativeStride.
        let text = format!(
            "{hdr}mem load w4 profile=affine:0:-9223372036854775808 exec=affine:0:4\nend\n"
        );
        assert_eq!(
            parse(&text).unwrap_err(),
            TraceError::NegativeStride(3, i64::MIN)
        );
        // A negative magnitude beyond i64 must not wrap into a positive
        // stride.
        let text = format!(
            "{hdr}mem load w4 profile=affine:0:-18446744073709551615 exec=affine:0:4\nend\n"
        );
        assert!(matches!(
            parse(&text).unwrap_err(),
            TraceError::NegativeStride(3, _)
        ));
        // A positive stride beyond i64::MAX would wrap negative on
        // replay; reject it.
        let text =
            format!("{hdr}mem load w4 profile=affine:0:9223372036854775808 exec=affine:0:4\nend\n");
        assert!(matches!(
            parse(&text).unwrap_err(),
            TraceError::BadNumber(3, _)
        ));
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        let hdr = "trace t interleave=4 clusters=4\n";
        let krn = "kernel k trip=8 invocations=1\n";
        for text in [
            format!(
                "{hdr}{krn}mem load w4 profile=affine:0:4 exec=affine:0:4 home=0 width=8\nend\n"
            ),
            // A typo'd optional field is a stray token, not a missing
            // `home`.
            format!("{hdr}{krn}mem load w4 profile=affine:0:4 exec=affine:0:4 hme=2\nend\n"),
            format!("{hdr}{krn}mem load w4 profile=affine:0:4 exec=affine:0:4\nend extra\n"),
            "trace t interleave=4 clusters=4 extra\n".to_string(),
            format!("{hdr}kernel k trip=8 invocations=1 extra\nend\n"),
            format!("{hdr}{krn}arith int count=4 depth=0 extra\nend\n"),
        ] {
            assert!(
                matches!(parse(&text).unwrap_err(), TraceError::TrailingToken(_, _)),
                "input: {text}"
            );
        }
    }

    #[test]
    fn rendered_names_are_always_single_tokens() {
        // A recorded suite whose name would break tokenization (or be
        // swallowed as a comment) still renders to a parseable file.
        let mut t = sample_trace();
        t.name = "my suite #1".into();
        t.kernels[0].name = String::new();
        let text = t.render();
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed.name, "my_suite__1");
        assert_eq!(reparsed.kernels[0].name, "_");
        assert_eq!(reparsed.render(), text, "canonical after sanitizing");
    }

    #[test]
    fn to_suite_discovers_real_dependences() {
        // The sample's store (W8 at 0x9002, then 0x9012) overlaps the
        // load walk (W4 at 0x9000+16i): the disambiguator must add MA
        // edges, and the kernel must validate and simulate.
        let suite = sample_trace().to_suite();
        let k = &suite.kernels[0];
        assert!(k.validate().is_ok(), "{:?}", k.validate());
        assert!(
            k.ddg.mem_dep_edges().count() > 0,
            "recorded overlap must surface as dependences"
        );
        assert_eq!(k.dyn_iterations(), 32);
    }

    #[test]
    fn recording_a_synthetic_suite_round_trips() {
        let suite = crate::suite("gsmdec").unwrap();
        let trace = Trace::from_suite(&suite, 4, 64);
        assert_eq!(trace.name, "gsmdec");
        assert_eq!(trace.interleave, 2);
        // write → parse → write byte identity holds for recordings too.
        let text = trace.render();
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed, trace);
        assert_eq!(reparsed.render(), text);
        // The replayed suite carries the same dynamic access volume.
        let replayed = trace.to_suite();
        assert_eq!(replayed.dyn_mem_accesses(), suite.dyn_mem_accesses());
        for k in &replayed.kernels {
            assert!(k.validate().is_ok(), "{}: {:?}", k.name, k.validate());
        }
    }
}
