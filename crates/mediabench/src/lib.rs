//! Synthetic Mediabench-like benchmark suites.
//!
//! The paper evaluates on a subset of Mediabench compiled with the IMPACT
//! compiler — infrastructure that is not publicly reproducible. This
//! crate substitutes each benchmark with a small set of *parameterized
//! loop kernels* whose dependence structure, dominant data width, cache
//! interleaving factor, chain sizes and address-stream locality are
//! calibrated to the paper's published per-benchmark characteristics
//! (Tables 1 and 3 and the case studies of Sections 4.2 and 5.4). See
//! `DESIGN.md` for the substitution argument.
//!
//! # Example
//!
//! ```
//! let suite = distvliw_mediabench::suite("gsmdec").expect("known benchmark");
//! assert_eq!(suite.interleave_bytes, 2);
//! assert!(!suite.kernels.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
pub mod gen;
pub mod spec;
pub mod trace;

pub use alloc::AddressAllocator;
pub use gen::{
    add_true_mem_deps, chain_loop, eject_stress_kernel, stream_loop, ChainSpec, Locality,
    StreamSpec,
};
pub use spec::{build_suite, BenchSpec, BENCHMARKS};
pub use trace::{bundled_traces, trace_suites, Trace, TraceError};

use distvliw_ir::Suite;

/// The thirteen benchmarks shown in the paper's result figures (epicenc
/// appears in Table 1 only).
pub const FIGURE_BENCHMARKS: [&str; 13] = [
    "epicdec",
    "g721dec",
    "g721enc",
    "gsmdec",
    "gsmenc",
    "jpegdec",
    "jpegenc",
    "mpeg2dec",
    "pegwitdec",
    "pegwitenc",
    "pgpdec",
    "pgpenc",
    "rasta",
];

/// Builds the suite for `name`, if it is one of the fourteen benchmarks.
#[must_use]
pub fn suite(name: &str) -> Option<Suite> {
    BENCHMARKS.iter().find(|s| s.name == name).map(build_suite)
}

/// Builds all fourteen suites (paper Table 1).
#[must_use]
pub fn suites() -> Vec<Suite> {
    BENCHMARKS.iter().map(build_suite).collect()
}

/// Builds the thirteen result-figure suites in figure order.
#[must_use]
pub fn figure_suites() -> Vec<Suite> {
    FIGURE_BENCHMARKS
        .iter()
        .map(|name| suite(name).expect("figure benchmarks are defined"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_lookup() {
        assert!(suite("epicdec").is_some());
        assert!(suite("rasta").is_some());
        assert!(suite("nonexistent").is_none());
    }

    #[test]
    fn figure_suites_are_thirteen() {
        let all = figure_suites();
        assert_eq!(all.len(), 13);
        assert!(!all.iter().any(|s| s.name == "epicenc"));
    }

    #[test]
    fn suites_cover_table1() {
        assert_eq!(suites().len(), 14);
    }
}
