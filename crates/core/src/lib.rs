//! End-to-end pipeline and experiment drivers for the CGO'03
//! reproduction.
//!
//! [`Pipeline`] wires the whole toolchain together: profiling, the
//! coherence pass (MDC chains or DDGT transformations), cluster-aware
//! modulo scheduling and cycle-level simulation. The [`experiments`]
//! module regenerates every table and figure of the paper's evaluation;
//! [`report`] renders them as text.
//!
//! # Example
//!
//! ```
//! use distvliw_arch::MachineConfig;
//! use distvliw_core::{Heuristic, Pipeline, Solution};
//!
//! let suite = distvliw_mediabench::suite("jpegenc").expect("known benchmark");
//! let pipeline = Pipeline::new(MachineConfig::paper_baseline());
//! let mdc = pipeline.run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)?;
//! assert_eq!(mdc.total.coherence_violations, 0);
//! # Ok::<(), distvliw_core::PipelineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cachekey;
pub mod experiments;
pub mod par;
mod pipeline;
pub mod report;

pub use distvliw_sched::{Heuristic, SchedStats};
pub use distvliw_sim::ClusterUsage;
pub use pipeline::{
    derive_hybrid, IiSeedStore, KernelArtifact, KernelRun, MatrixCell, Pipeline, PipelineError,
    PipelineOptions, SchedTotals, Solution, SuiteArtifact, SuiteStats,
};
