//! Drivers that regenerate every table and figure of the paper's
//! evaluation (Sections 4–6). Each driver returns typed rows; the
//! [`crate::report`] module renders them as text tables.

use std::collections::{HashMap, HashSet};

use distvliw_arch::{AccessClass, AttractionBufferConfig, BusConfig, MachineConfig};
use distvliw_coherence::{chain_stats, specialize_kernel, ChainStats};
use distvliw_ir::Suite;
use distvliw_mediabench::{figure_suites, suite, trace_suites};
use distvliw_sched::Heuristic;
use distvliw_sim::ClusterUsage;

use crate::par;
use crate::pipeline::{Pipeline, PipelineError, Solution, SuiteArtifact, SuiteStats};

/// Fraction of memory accesses per class (Figure 6 bar segments).
#[derive(Debug, Clone, Copy, Default)]
pub struct AccessBreakdown {
    /// Fractions indexed like [`AccessClass::ALL`].
    pub fractions: [f64; 5],
}

impl AccessBreakdown {
    fn of(stats: &SuiteStats) -> Self {
        let mut fractions = [0.0; 5];
        for class in AccessClass::ALL {
            fractions[class.index()] = stats.total.accesses.fraction(class);
        }
        AccessBreakdown { fractions }
    }

    /// Local hit fraction.
    #[must_use]
    pub fn local_hits(&self) -> f64 {
        self.fractions[AccessClass::LocalHit.index()]
    }
}

/// One benchmark row of Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Free scheduling (no memory-dependence restrictions).
    pub free: AccessBreakdown,
    /// The MDC solution.
    pub mdc: AccessBreakdown,
    /// The DDGT solution.
    pub ddgt: AccessBreakdown,
}

/// Figure 6: classification of memory accesses under PrefClus.
///
/// # Errors
///
/// Propagates the first pipeline failure.
pub fn fig6(machine: &MachineConfig) -> Result<Vec<Fig6Row>, PipelineError> {
    let pipeline = Pipeline::new(machine.clone());
    let mut rows = Vec::new();
    for suite in figure_suites() {
        let h = Heuristic::PrefClus;
        let free = pipeline.run_suite(&suite, Solution::Free, h)?;
        let mdc = pipeline.run_suite(&suite, Solution::Mdc, h)?;
        let ddgt = pipeline.run_suite(&suite, Solution::Ddgt, h)?;
        rows.push(Fig6Row {
            benchmark: suite.name.clone(),
            free: AccessBreakdown::of(&free),
            mdc: AccessBreakdown::of(&mdc),
            ddgt: AccessBreakdown::of(&ddgt),
        });
    }
    Ok(rows)
}

/// Arithmetic-mean row over Figure 6 rows.
#[must_use]
pub fn fig6_amean(rows: &[Fig6Row]) -> Fig6Row {
    let n = rows.len().max(1) as f64;
    let mut mean = Fig6Row {
        benchmark: "AMEAN".into(),
        free: AccessBreakdown::default(),
        mdc: AccessBreakdown::default(),
        ddgt: AccessBreakdown::default(),
    };
    for row in rows {
        for i in 0..5 {
            mean.free.fractions[i] += row.free.fractions[i] / n;
            mean.mdc.fractions[i] += row.mdc.fractions[i] / n;
            mean.ddgt.fractions[i] += row.ddgt.fractions[i] / n;
        }
    }
    mean
}

/// One normalized execution-time bar (compute + stall segments).
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizedBar {
    /// Compute cycles / baseline total cycles.
    pub compute: f64,
    /// Stall cycles / baseline total cycles.
    pub stall: f64,
}

impl NormalizedBar {
    fn of(stats: &SuiteStats, baseline_total: u64) -> Self {
        let b = baseline_total.max(1) as f64;
        NormalizedBar {
            compute: stats.total.compute_cycles as f64 / b,
            stall: stats.total.stall_cycles as f64 / b,
        }
    }

    /// Total normalized cycles.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.compute + self.stall
    }
}

/// One benchmark row of Figure 7 / Figure 9: the four solution bars,
/// normalized to Free(MinComs) on the same machine.
#[derive(Debug, Clone)]
pub struct ExecRow {
    /// Benchmark name.
    pub benchmark: String,
    /// MDC with PrefClus.
    pub mdc_pref: NormalizedBar,
    /// MDC with MinComs.
    pub mdc_min: NormalizedBar,
    /// DDGT with PrefClus.
    pub ddgt_pref: NormalizedBar,
    /// DDGT with MinComs.
    pub ddgt_min: NormalizedBar,
}

fn exec_row(pipeline: &Pipeline, suite: &Suite) -> Result<ExecRow, PipelineError> {
    let baseline = pipeline.run_suite(suite, Solution::Free, Heuristic::MinComs)?;
    let base = baseline.total_cycles();
    let run = |solution, heuristic| -> Result<NormalizedBar, PipelineError> {
        Ok(NormalizedBar::of(
            &pipeline.run_suite(suite, solution, heuristic)?,
            base,
        ))
    };
    Ok(ExecRow {
        benchmark: suite.name.clone(),
        mdc_pref: run(Solution::Mdc, Heuristic::PrefClus)?,
        mdc_min: run(Solution::Mdc, Heuristic::MinComs)?,
        ddgt_pref: run(Solution::Ddgt, Heuristic::PrefClus)?,
        ddgt_min: run(Solution::Ddgt, Heuristic::MinComs)?,
    })
}

/// Figure 7: normalized execution time for the four solution/heuristic
/// combinations, baseline Free(MinComs).
///
/// # Errors
///
/// Propagates the first pipeline failure.
pub fn fig7(machine: &MachineConfig) -> Result<Vec<ExecRow>, PipelineError> {
    let pipeline = Pipeline::new(machine.clone());
    figure_suites()
        .iter()
        .map(|s| exec_row(&pipeline, s))
        .collect()
}

/// Figure 9: the same bars with 16-entry 2-way Attraction Buffers
/// (baseline Free(MinComs) also has the buffers).
///
/// # Errors
///
/// Propagates the first pipeline failure.
pub fn fig9(machine: &MachineConfig) -> Result<Vec<ExecRow>, PipelineError> {
    let with_ab = machine
        .clone()
        .with_attraction_buffers(AttractionBufferConfig::paper());
    fig7(&with_ab)
}

/// Arithmetic-mean row over execution-time rows.
#[must_use]
pub fn exec_amean(rows: &[ExecRow]) -> ExecRow {
    let n = rows.len().max(1) as f64;
    let mut mean = ExecRow {
        benchmark: "AMEAN".into(),
        mdc_pref: NormalizedBar::default(),
        mdc_min: NormalizedBar::default(),
        ddgt_pref: NormalizedBar::default(),
        ddgt_min: NormalizedBar::default(),
    };
    for r in rows {
        for (acc, bar) in [
            (&mut mean.mdc_pref, r.mdc_pref),
            (&mut mean.mdc_min, r.mdc_min),
            (&mut mean.ddgt_pref, r.ddgt_pref),
            (&mut mean.ddgt_min, r.ddgt_min),
        ] {
            acc.compute += bar.compute / n;
            acc.stall += bar.stall / n;
        }
    }
    mean
}

/// One benchmark row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Measured chain ratios.
    pub stats: ChainStats,
    /// The paper's published ratios, when available.
    pub paper: Option<(f64, f64)>,
}

/// Table 3: CMR and CAR per benchmark.
#[must_use]
pub fn table3() -> Vec<Table3Row> {
    distvliw_mediabench::BENCHMARKS
        .iter()
        .filter(|spec| distvliw_mediabench::FIGURE_BENCHMARKS.contains(&spec.name))
        .map(|spec| {
            let suite = distvliw_mediabench::build_suite(spec);
            Table3Row {
                benchmark: spec.name.to_string(),
                stats: chain_stats(suite.kernels.iter()),
                paper: spec.table3,
            }
        })
        .collect()
}

/// One benchmark row of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Dynamic communication operations of DDGT over MDC (PrefClus).
    pub comm_ratio: f64,
    /// DDGT speedup over MDC on the *selected loops* (loops with ≥10%
    /// MDC slowdown vs the Free baseline), `None` when no loop
    /// qualifies (the paper's dashes).
    pub selected_speedup: Option<f64>,
}

impl Table4Row {
    /// Computes one Table 4 row from the three PrefClus suite runs.
    /// Shared by [`table4`] and the serving layer's `/table4` endpoint
    /// so the selection criterion cannot drift between them.
    #[must_use]
    pub fn from_stats(
        benchmark: impl Into<String>,
        free: &SuiteStats,
        mdc: &SuiteStats,
        ddgt: &SuiteStats,
    ) -> Table4Row {
        let comm_ratio = ddgt.total.comm_ops as f64 / (mdc.total.comm_ops.max(1)) as f64;

        // Selected loops: ≥10% MDC slowdown vs the Free baseline.
        let mut mdc_cycles = 0u64;
        let mut ddgt_cycles = 0u64;
        for ((f, m), d) in free.kernels.iter().zip(&mdc.kernels).zip(&ddgt.kernels) {
            if m.stats.total_cycles() as f64 >= 1.10 * f.stats.total_cycles() as f64 {
                mdc_cycles += m.stats.total_cycles();
                ddgt_cycles += d.stats.total_cycles();
            }
        }
        let selected_speedup =
            (mdc_cycles > 0).then(|| mdc_cycles as f64 / ddgt_cycles.max(1) as f64 - 1.0);
        Table4Row {
            benchmark: benchmark.into(),
            comm_ratio,
            selected_speedup,
        }
    }
}

/// Table 4: Δ communication operations and selected-loop speedups
/// (PrefClus).
///
/// # Errors
///
/// Propagates the first pipeline failure.
pub fn table4(machine: &MachineConfig) -> Result<Vec<Table4Row>, PipelineError> {
    let pipeline = Pipeline::new(machine.clone());
    let mut rows = Vec::new();
    for suite in figure_suites() {
        let h = Heuristic::PrefClus;
        let free = pipeline.run_suite(&suite, Solution::Free, h)?;
        let mdc = pipeline.run_suite(&suite, Solution::Mdc, h)?;
        let ddgt = pipeline.run_suite(&suite, Solution::Ddgt, h)?;
        rows.push(Table4Row::from_stats(
            suite.name.clone(),
            &free,
            &mdc,
            &ddgt,
        ));
    }
    Ok(rows)
}

/// One benchmark row of Table 5.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Ratios before code specialization.
    pub old: ChainStats,
    /// Ratios after code specialization.
    pub new: ChainStats,
    /// Paper values `(old_cmr, old_car, new_cmr, new_car)`.
    pub paper: (f64, f64, f64, f64),
}

/// Table 5: chain restrictions before and after code specialization for
/// epicdec, pgpdec and rasta (paper Section 6).
#[must_use]
pub fn table5() -> Vec<Table5Row> {
    let targets = [
        ("epicdec", (0.64, 0.22, 0.20, 0.06)),
        ("pgpdec", (0.73, 0.24, 0.52, 0.17)),
        ("rasta", (0.52, 0.26, 0.13, 0.06)),
    ];
    targets
        .iter()
        .map(|&(name, paper)| {
            let s = suite(name).expect("specialization benchmarks exist");
            let old = chain_stats(s.kernels.iter());
            let specialized: Vec<_> = s.kernels.iter().map(|k| specialize_kernel(k).0).collect();
            let new = chain_stats(specialized.iter());
            Table5Row {
                benchmark: name.to_string(),
                old,
                new,
                paper,
            }
        })
        .collect()
}

/// One benchmark row of the NOBAL bus-configuration study (Section 4.2,
/// "Other architectural configurations").
#[derive(Debug, Clone)]
pub struct NobalRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Best MDC total cycles (over both heuristics).
    pub best_mdc: u64,
    /// DDGT(PrefClus) total cycles.
    pub ddgt_pref: u64,
    /// Speedup of DDGT(PrefClus) over the best MDC (positive = DDGT
    /// wins).
    pub ddgt_speedup: f64,
}

/// Runs the NOBAL study on one machine variant
/// ([`MachineConfig::nobal_mem`] or [`MachineConfig::nobal_reg`]).
///
/// # Errors
///
/// Propagates the first pipeline failure.
pub fn nobal(machine: &MachineConfig) -> Result<Vec<NobalRow>, PipelineError> {
    let pipeline = Pipeline::new(machine.clone());
    let mut rows = Vec::new();
    for suite in figure_suites() {
        let mdc_pref = pipeline.run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)?;
        let mdc_min = pipeline.run_suite(&suite, Solution::Mdc, Heuristic::MinComs)?;
        let ddgt = pipeline.run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)?;
        let best_mdc = mdc_pref.total_cycles().min(mdc_min.total_cycles());
        let ddgt_pref = ddgt.total_cycles();
        rows.push(NobalRow {
            benchmark: suite.name.clone(),
            best_mdc,
            ddgt_pref,
            ddgt_speedup: best_mdc as f64 / ddgt_pref.max(1) as f64 - 1.0,
        });
    }
    Ok(rows)
}

/// The gsmdec loop case study of Section 4.2 and the epicdec Attraction
/// Buffer case study of Section 5.4.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Which loop.
    pub name: String,
    /// MDC(PrefClus) compute and stall cycles.
    pub mdc: (u64, u64),
    /// DDGT(PrefClus) compute and stall cycles.
    pub ddgt: (u64, u64),
    /// MDC local hit ratio.
    pub mdc_local: f64,
    /// DDGT local hit ratio.
    pub ddgt_local: f64,
    /// Speedup of DDGT over MDC on this loop.
    pub speedup: f64,
}

fn case_study(machine: &MachineConfig, bench: &str) -> Result<CaseStudy, PipelineError> {
    let s = suite(bench).expect("case-study benchmark exists");
    let pipeline = Pipeline::new(machine.clone().with_interleave(s.interleave_bytes));
    let chained = &s.kernels[0];
    let mdc = pipeline.run_kernel(chained, Solution::Mdc, Heuristic::PrefClus)?;
    let ddgt = pipeline.run_kernel(chained, Solution::Ddgt, Heuristic::PrefClus)?;
    Ok(CaseStudy {
        name: format!("{bench}.{}", chained.name),
        mdc: (mdc.stats.compute_cycles, mdc.stats.stall_cycles),
        ddgt: (ddgt.stats.compute_cycles, ddgt.stats.stall_cycles),
        mdc_local: mdc.stats.local_hit_ratio(),
        ddgt_local: ddgt.stats.local_hit_ratio(),
        speedup: mdc.stats.total_cycles() as f64 / ddgt.stats.total_cycles().max(1) as f64 - 1.0,
    })
}

/// The gsmdec selected-loop case study (paper Section 4.2).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn gsmdec_case_study(machine: &MachineConfig) -> Result<CaseStudy, PipelineError> {
    case_study(machine, "gsmdec")
}

/// The epicdec Attraction-Buffer case study (paper Section 5.4): the
/// 76-memory-op chain loop with 16-entry 2-way buffers.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn epicdec_ab_case_study(machine: &MachineConfig) -> Result<CaseStudy, PipelineError> {
    let with_ab = machine
        .clone()
        .with_attraction_buffers(AttractionBufferConfig::paper());
    case_study(&with_ab, "epicdec")
}

/// Description of a sensitivity sweep: the cluster-count × memory-bus
/// grid of paper Section 5.4's scaling question. Every grid point runs
/// all four solutions ([`SWEEP_SOLUTIONS`]) under one heuristic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Cluster counts to sweep (default 2/4/8/16).
    pub cluster_counts: Vec<usize>,
    /// Memory-bus configurations to sweep (count × latency grid).
    pub mem_buses: Vec<BusConfig>,
    /// Cluster-assignment heuristic for every cell.
    pub heuristic: Heuristic,
}

impl Default for SweepSpec {
    /// The default grid: cluster counts 2/4/8/16 × three memory-bus
    /// points — the paper's baseline (4 buses @ 2 cycles), half the
    /// buses (4→2) and double the latency (2→4).
    fn default() -> Self {
        SweepSpec {
            cluster_counts: vec![2, 4, 8, 16],
            mem_buses: vec![
                BusConfig {
                    count: 4,
                    latency: 2,
                },
                BusConfig {
                    count: 2,
                    latency: 2,
                },
                BusConfig {
                    count: 4,
                    latency: 4,
                },
            ],
            heuristic: Heuristic::PrefClus,
        }
    }
}

/// The four solutions every sweep cell runs, in row order.
pub const SWEEP_SOLUTIONS: [Solution; 4] = [
    Solution::Free,
    Solution::Mdc,
    Solution::Ddgt,
    Solution::Hybrid,
];

/// The machine for one sweep grid point: `base` with the cluster count
/// and memory buses replaced. The cache block size is raised to the
/// cluster stripe (`n_clusters × 4` bytes, the widest bundled
/// interleave) when the baseline block no longer divides evenly —
/// total capacity is unchanged, so configurations at ≤ 8 clusters keep
/// the paper's 32-byte blocks exactly.
///
/// # Panics
///
/// Panics if the resulting configuration is invalid (impossible for
/// power-of-two cluster counts over a valid base).
#[must_use]
pub fn sweep_machine(
    base: &MachineConfig,
    n_clusters: usize,
    mem_buses: BusConfig,
) -> MachineConfig {
    let mut machine = base.clone();
    machine.n_clusters = n_clusters;
    machine.mem_buses = mem_buses;
    let stripe = n_clusters as u64 * 4;
    if !machine.cache.block_bytes.is_multiple_of(stripe) {
        machine.cache.block_bytes = machine.cache.block_bytes.max(stripe);
    }
    machine.validate().expect("sweep machine is valid");
    machine
}

/// Names of the suites the default sweep runs, in sweep order — one
/// chained synthetic benchmark plus the bundled recorded traces. The
/// serving layer resolves these against its resident suites so a warm
/// `GET /sweep` never rebuilds a workload; kept in lock-step with
/// [`sweep_default_suites`] by a unit test.
pub const SWEEP_DEFAULT_SUITE_NAMES: [&str; 3] = ["gsmdec", "fir8", "ptrchase"];

/// The suites the default sweep (the `sweep` bin and `GET /sweep`) runs
/// ([`SWEEP_DEFAULT_SUITE_NAMES`]): small enough that the full
/// 2→16-cluster grid stays cheap, broad enough to cover both workload
/// classes.
#[must_use]
pub fn sweep_default_suites() -> Vec<Suite> {
    let traces = trace_suites();
    SWEEP_DEFAULT_SUITE_NAMES
        .iter()
        .map(|name| {
            suite(name)
                .or_else(|| traces.iter().find(|t| t.name == *name).cloned())
                .expect("default sweep suites are bundled")
        })
        .collect()
}

/// One `(cluster count, bus point, solution)` row of a sweep, aggregated
/// over all swept suites.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Cluster count of this grid point.
    pub n_clusters: usize,
    /// Memory-bus configuration of this grid point.
    pub mem_buses: BusConfig,
    /// Coherence solution of this row.
    pub solution: Solution,
    /// Total cycles over all suites.
    pub total_cycles: u64,
    /// Stall cycles over all suites.
    pub stall_cycles: u64,
    /// Memory-bus busy cycles over all suites.
    pub bus_busy_cycles: u64,
    /// Summed bus drain windows over all suites (each at least its
    /// suite's total cycles — see `SimStats::bus_drain_cycles`); the
    /// denominator that keeps [`SweepRow::bus_occupancy`] ≤ 1.
    pub bus_drain_cycles: u64,
    /// Coherence violations (nonzero only for the Free baseline).
    pub violations: u64,
    /// Classified memory accesses over all suites.
    pub accesses: u64,
    /// Per-cluster usage aggregated over all suites (the imbalance
    /// surface; its length equals `n_clusters`).
    pub cluster: ClusterUsage,
    /// Scheduler search effort over all suites (ejections, placement
    /// attempts — the ejection-scheduler trajectory the sweep report
    /// surfaces).
    pub sched: crate::SchedTotals,
}

impl SweepRow {
    /// The busiest-cluster-over-mean imbalance ratio of this row.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        self.cluster.imbalance()
    }

    /// Fraction of the available bus capacity the memory buses were
    /// busy. The window is the drain (`bus_drain_cycles`), not the
    /// issue span: fire-and-forget stores can keep the buses busy past
    /// the last issue cycle, and over the drain window occupancy is
    /// always ≤ 1.
    #[must_use]
    pub fn bus_occupancy(&self) -> f64 {
        let capacity = self
            .bus_drain_cycles
            .saturating_mul(self.mem_buses.count as u64);
        if capacity == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / capacity as f64
        }
    }
}

/// Folds per-suite statistics into one [`SweepRow`]. Shared by
/// [`sweep`] and the serving layer's `GET /sweep` so both aggregate
/// identically.
#[must_use]
pub fn sweep_row(
    n_clusters: usize,
    mem_buses: BusConfig,
    solution: Solution,
    per_suite: &[&SuiteStats],
) -> SweepRow {
    let mut row = SweepRow {
        n_clusters,
        mem_buses,
        solution,
        total_cycles: 0,
        stall_cycles: 0,
        bus_busy_cycles: 0,
        bus_drain_cycles: 0,
        violations: 0,
        accesses: 0,
        cluster: ClusterUsage::default(),
        sched: crate::SchedTotals::default(),
    };
    for stats in per_suite {
        row.total_cycles += stats.total_cycles();
        row.stall_cycles += stats.total.stall_cycles;
        row.bus_busy_cycles += stats.total.bus_busy_cycles;
        row.bus_drain_cycles += stats.total.bus_drain_cycles;
        row.violations += stats.total.coherence_violations;
        row.accesses += stats.total.accesses.total();
        row.cluster += &stats.cluster;
        row.sched += &stats.sched;
    }
    row
}

/// Reuse telemetry of one factored [`sweep`] run: how many suite
/// schedules were actually compiled, how many grid cells replayed an
/// artifact compiled for an earlier bus point, and how many compiles
/// were *fallbacks* — a sim axis that turned out to be scheduler-visible
/// (bus latency feeds the scheduler's remote-access latencies), so the
/// runner had to recompile instead of reusing. The sweep report surfaces
/// these so dropped reuse is never silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReuse {
    /// Suite-level schedule artifacts compiled (one per distinct
    /// scheduler projection × solution × suite).
    pub schedules_compiled: u64,
    /// Concrete grid cells served by an artifact compiled for an
    /// earlier grid point (bus count is sim-only, so these cells paid
    /// for simulation only).
    pub schedules_reused: u64,
    /// Compiles forced because a `(cluster count, solution, suite)`
    /// combination met a *second* scheduler projection — the sched-axis
    /// fallback counter (bus latency changes the projection; bus count
    /// never does).
    pub sched_axis_recompiles: u64,
}

/// The result of a factored [`sweep`]: the grid rows in `(cluster
/// count, bus point, solution)` nesting order plus the reuse telemetry.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Grid rows, ordered exactly like the naive [`sweep_naive`] rows.
    pub rows: Vec<SweepRow>,
    /// Schedule-artifact reuse counters.
    pub reuse: SweepReuse,
}

/// The concrete (compiled) solutions of every sweep cell; the trailing
/// [`Solution::Hybrid`] row of [`SWEEP_SOLUTIONS`] is derived from the
/// MDC and DDGT runs per loop ([`crate::derive_hybrid`]).
const SWEEP_CONCRETE: [Solution; 3] = [Solution::Free, Solution::Mdc, Solution::Ddgt];

/// Wraps a cell failure with its grid coordinates.
fn cell_error(
    n_clusters: usize,
    mem_buses: BusConfig,
    solution: Solution,
    suite: &str,
    source: PipelineError,
) -> PipelineError {
    PipelineError::Cell {
        n_clusters,
        mem_buses,
        solution,
        suite: suite.to_string(),
        source: Box::new(source),
    }
}

/// Runs the sensitivity sweep, factored into a schedule-once/sim-many
/// pipeline: for every cluster count × bus point of `spec` and every
/// solution of [`SWEEP_SOLUTIONS`], the grid cell's suite statistics
/// come from a schedule artifact ([`Pipeline::compile_suite`]) keyed by
/// the machine's scheduler projection
/// ([`distvliw_arch::MachineConfig::sched_canonical_bytes`]), the
/// solution and the suite — so cells that differ only in sim-only axes
/// (memory-bus *count*) replay one schedule under
/// [`Pipeline::simulate_artifact`] instead of recompiling, and the
/// hybrid rows are derived per loop from the MDC and DDGT cells
/// ([`crate::derive_hybrid`]) without any extra compile or simulation.
/// Compiles and simulations fan out over [`crate::par`], compiles
/// coarsest-first (the largest cluster counts are the most expensive
/// searches, so they start first); results merge deterministically back
/// into `(cluster count, bus point, solution)` row order.
///
/// Every cell schedules from a cold pipeline (fresh II-seed store, as
/// [`Pipeline::run_matrix`] does), so the surfaced search-effort
/// counters are reproducible and byte-identical to the per-cell
/// reference [`sweep_naive`] — the equivalence the
/// `tests/sweep_equivalence.rs` suite pins.
///
/// # Errors
///
/// Reports the first failing cell in row order, wrapped with its
/// `(clusters, bus, solution, suite)` coordinates
/// ([`PipelineError::Cell`]).
pub fn sweep(
    base: &MachineConfig,
    suites: &[Suite],
    spec: &SweepSpec,
) -> Result<SweepRun, PipelineError> {
    let sweep_start = std::time::Instant::now();
    struct Unit {
        machine: MachineConfig,
        solution: Solution,
        suite_idx: usize,
    }

    let points: Vec<(usize, BusConfig, MachineConfig)> = spec
        .cluster_counts
        .iter()
        .flat_map(|&n| {
            spec.mem_buses
                .iter()
                .map(move |&bus| (n, bus, sweep_machine(base, n, bus)))
        })
        .collect();

    // Deduplicate compile work: one unit per (scheduler projection,
    // solution, suite). Bus count never reaches the scheduler, so a
    // later bus point usually maps onto an existing unit; bus *latency*
    // is scheduler-visible, so its cells recompile — counted as the
    // sched-axis fallback rather than silently absorbed.
    let mut units: Vec<Unit> = Vec::new();
    let mut unit_of: HashMap<(Vec<u8>, usize), usize> = HashMap::new();
    let mut seen_triples: HashSet<(usize, usize, usize)> = HashSet::new();
    let mut reuse = SweepReuse::default();
    // Cell → unit, in (point, solution, suite) enumeration order.
    let mut cell_units: Vec<usize> = Vec::new();
    for (n_clusters, _, machine) in &points {
        for (sol_idx, &solution) in SWEEP_CONCRETE.iter().enumerate() {
            for (suite_idx, suite) in suites.iter().enumerate() {
                let proj = machine
                    .clone()
                    .with_interleave(suite.interleave_bytes)
                    .sched_canonical_bytes();
                let key = (proj, sol_idx * suites.len() + suite_idx);
                let unit_idx = match unit_of.get(&key) {
                    Some(&idx) => {
                        reuse.schedules_reused += 1;
                        idx
                    }
                    None => {
                        let triple = (*n_clusters, sol_idx, suite_idx);
                        if !seen_triples.insert(triple) {
                            reuse.sched_axis_recompiles += 1;
                        }
                        reuse.schedules_compiled += 1;
                        let idx = units.len();
                        units.push(Unit {
                            machine: machine.clone(),
                            solution,
                            suite_idx,
                        });
                        unit_of.insert(key, idx);
                        idx
                    }
                };
                cell_units.push(unit_idx);
            }
        }
    }

    // Compile phase: cold pipelines, coarsest-first for load balance
    // (schedule search cost grows with cluster count), results mapped
    // back to unit order.
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(units[i].machine.n_clusters));
    let compiled = par::par_map(&order, |&i| {
        let unit = &units[i];
        let mut span = distvliw_obs::Span::enter("sweep.compile_unit");
        span.field_str("suite", suites[unit.suite_idx].name.clone());
        span.field_u64("n_clusters", unit.machine.n_clusters as u64);
        let pipeline = Pipeline::new(unit.machine.clone());
        (
            i,
            pipeline.compile_suite(&suites[unit.suite_idx], unit.solution, spec.heuristic),
        )
    });
    let mut artifacts: Vec<Option<Result<SuiteArtifact, PipelineError>>> =
        (0..units.len()).map(|_| None).collect();
    for (i, result) in compiled {
        artifacts[i] = Some(result);
    }
    // Surface the first failing cell in row order, with coordinates.
    for (cell_idx, &unit_idx) in cell_units.iter().enumerate() {
        let suite_idx = cell_idx % suites.len();
        let sol_idx = (cell_idx / suites.len()) % SWEEP_CONCRETE.len();
        let point_idx = cell_idx / (suites.len() * SWEEP_CONCRETE.len());
        if let Some(Err(e)) = artifacts[unit_idx].as_ref() {
            let (n_clusters, mem_buses, _) = points[point_idx];
            return Err(cell_error(
                n_clusters,
                mem_buses,
                SWEEP_CONCRETE[sol_idx],
                &suites[suite_idx].name,
                e.clone(),
            ));
        }
    }
    let artifacts: Vec<SuiteArtifact> = artifacts
        .into_iter()
        .map(|a| {
            a.expect("every unit compiled")
                .expect("errors surfaced above")
        })
        .collect();

    // Sim phase: every concrete cell replays its artifact on the grid
    // point's machine. Simulation cannot fail, so the fan-out is a plain
    // deterministic map.
    let pipelines: Vec<Pipeline> = points
        .iter()
        .map(|(_, _, machine)| Pipeline::new(machine.clone()))
        .collect();
    let cells: Vec<(usize, usize)> = cell_units
        .iter()
        .enumerate()
        .map(|(cell_idx, &unit_idx)| (cell_idx / (suites.len() * SWEEP_CONCRETE.len()), unit_idx))
        .collect();
    let sims: Vec<SuiteStats> = par::par_map(&cells, |&(point_idx, unit_idx)| {
        let mut span = distvliw_obs::Span::enter("sweep.sim_cell");
        span.field_u64("point", point_idx as u64);
        span.field_u64("unit", unit_idx as u64);
        pipelines[point_idx].simulate_artifact(&artifacts[unit_idx])
    });

    // Merge back into (cluster count, bus point, solution) row order,
    // deriving the hybrid rows from the MDC and DDGT cells.
    let per_point = SWEEP_CONCRETE.len() * suites.len();
    let mut rows = Vec::with_capacity(points.len() * SWEEP_SOLUTIONS.len());
    for (point_idx, (n_clusters, mem_buses, _)) in points.iter().enumerate() {
        let point_sims = &sims[point_idx * per_point..(point_idx + 1) * per_point];
        let of = |sol_idx: usize| &point_sims[sol_idx * suites.len()..(sol_idx + 1) * suites.len()];
        for (sol_idx, &solution) in SWEEP_CONCRETE.iter().enumerate() {
            let refs: Vec<&SuiteStats> = of(sol_idx).iter().collect();
            rows.push(sweep_row(*n_clusters, *mem_buses, solution, &refs));
        }
        let hybrid: Vec<SuiteStats> = of(1)
            .iter()
            .zip(of(2))
            .map(|(mdc, ddgt)| crate::derive_hybrid(mdc, ddgt))
            .collect();
        let refs: Vec<&SuiteStats> = hybrid.iter().collect();
        rows.push(sweep_row(*n_clusters, *mem_buses, Solution::Hybrid, &refs));
    }
    let reg = distvliw_obs::global();
    reg.counter(
        "sweep_cells_simulated_total",
        "Concrete sweep cells simulated",
    )
    .add(cells.len() as u64);
    reg.histogram(
        "sweep_duration_us",
        "Wall time of one factored sweep in microseconds",
    )
    .record_micros(sweep_start.elapsed());
    Ok(SweepRun { rows, reuse })
}

/// The naive per-cell reference sweep: every `(cluster count, bus
/// point, solution, suite)` cell runs the full
/// [`Pipeline::run_suite`] compile+simulate path from a cold pipeline —
/// no artifact reuse, no derived hybrid. This is the semantic
/// definition the factored [`sweep`] is tested byte-identical against,
/// and the baseline leg of the `sweep/*` bench ids.
///
/// # Errors
///
/// Reports the first failing cell in row order, wrapped with its
/// coordinates ([`PipelineError::Cell`]).
pub fn sweep_naive(
    base: &MachineConfig,
    suites: &[Suite],
    spec: &SweepSpec,
) -> Result<Vec<SweepRow>, PipelineError> {
    let mut rows = Vec::new();
    for &n_clusters in &spec.cluster_counts {
        for &mem_buses in &spec.mem_buses {
            let machine = sweep_machine(base, n_clusters, mem_buses);
            for solution in SWEEP_SOLUTIONS {
                let mut per_suite = Vec::with_capacity(suites.len());
                for suite in suites {
                    // A cold pipeline per cell keeps the search-effort
                    // telemetry reproducible (the `run_matrix`
                    // rationale): no cell's II seeds warm another's.
                    let pipeline = Pipeline::new(machine.clone());
                    per_suite.push(
                        pipeline
                            .run_suite(suite, solution, spec.heuristic)
                            .map_err(|e| {
                                cell_error(n_clusters, mem_buses, solution, &suite.name, e)
                            })?,
                    );
                }
                let refs: Vec<&SuiteStats> = per_suite.iter().collect();
                rows.push(sweep_row(n_clusters, mem_buses, solution, &refs));
            }
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reports_all_figure_benchmarks() {
        let rows = table3();
        assert_eq!(rows.len(), 13);
        for row in &rows {
            assert!(row.stats.car <= row.stats.cmr + 1e-9, "{}", row.benchmark);
        }
    }

    #[test]
    fn table5_specialization_shrinks_chains() {
        for row in table5() {
            assert!(
                row.new.cmr < row.old.cmr,
                "{}: {} !< {}",
                row.benchmark,
                row.new.cmr,
                row.old.cmr
            );
            assert!(row.new.car <= row.old.car + 1e-9, "{}", row.benchmark);
        }
    }

    #[test]
    fn sweep_machine_scales_block_only_when_needed() {
        let base = MachineConfig::paper_baseline();
        let bus = base.mem_buses;
        for n in [2, 4, 8] {
            let m = sweep_machine(&base, n, bus);
            assert_eq!(m.cache.block_bytes, 32, "{n} clusters keep paper blocks");
            assert_eq!(m.validate(), Ok(()));
        }
        let m = sweep_machine(&base, 16, bus);
        assert_eq!(m.cache.block_bytes, 64, "16 clusters need a 64B stripe");
        assert_eq!(m.cache.total_bytes, base.cache.total_bytes);
        assert_eq!(m.validate(), Ok(()));
        // Bus overrides land.
        let m = sweep_machine(
            &base,
            8,
            BusConfig {
                count: 2,
                latency: 4,
            },
        );
        assert_eq!(m.mem_buses.count, 2);
        assert_eq!(m.mem_buses.latency, 4);
        // Both bundled interleaves validate at every swept count.
        for n in SweepSpec::default().cluster_counts {
            for il in [2, 4] {
                let m = sweep_machine(&base, n, bus).with_interleave(il);
                assert_eq!(m.validate(), Ok(()), "{n} clusters, {il}B interleave");
            }
        }
    }

    #[test]
    fn sweep_covers_grid_and_stays_coherent() {
        let spec = SweepSpec {
            cluster_counts: vec![2, 8],
            mem_buses: vec![BusConfig {
                count: 4,
                latency: 2,
            }],
            heuristic: Heuristic::PrefClus,
        };
        let suites = trace_suites();
        let run = sweep(&MachineConfig::paper_baseline(), &suites, &spec).unwrap();
        // One bus point: every concrete cell compiles, nothing reuses.
        assert_eq!(run.reuse.schedules_compiled, (2 * 3 * suites.len()) as u64);
        assert_eq!(run.reuse.schedules_reused, 0);
        assert_eq!(run.reuse.sched_axis_recompiles, 0);
        let rows = run.rows;
        assert_eq!(rows.len(), 2 * SWEEP_SOLUTIONS.len());
        for row in &rows {
            assert!(row.total_cycles > 0);
            assert!(row.accesses > 0);
            assert_eq!(
                row.cluster.accesses.len(),
                row.n_clusters,
                "per-cluster counters span the whole machine"
            );
            assert!(row.imbalance() >= 1.0);
            // The drain window bounds the busy cycles — occupancy is a
            // true fraction even for store-heavy traces whose transfers
            // queue past the schedule drain.
            assert!(row.bus_drain_cycles >= row.total_cycles);
            assert!(
                row.bus_busy_cycles <= row.bus_drain_cycles * row.mem_buses.count as u64,
                "{}/{}",
                row.n_clusters,
                row.solution
            );
            assert!(row.bus_occupancy() <= 1.0);
            if row.solution != Solution::Free {
                assert_eq!(row.violations, 0, "{}/{}", row.n_clusters, row.solution);
            }
        }
        // Hybrid never loses to either pure solution, at every scale.
        for chunk in rows.chunks(4) {
            let (mdc, ddgt, hybrid) = (&chunk[1], &chunk[2], &chunk[3]);
            assert!(hybrid.total_cycles <= mdc.total_cycles.min(ddgt.total_cycles));
        }
    }

    #[test]
    fn sweep_default_suites_match_their_name_list() {
        // The serving layer resolves SWEEP_DEFAULT_SUITE_NAMES against
        // its resident suites, so the name list and the suite builder
        // must agree exactly (order included).
        let names: Vec<String> = sweep_default_suites()
            .iter()
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(names, SWEEP_DEFAULT_SUITE_NAMES);
        // And the mix covers both workload classes.
        assert!(names.contains(&"gsmdec".to_string()));
        assert!(names.iter().any(|n| n != "gsmdec"));
    }

    #[test]
    fn fig6_single_benchmark_shapes() {
        // Run one benchmark end to end (full fig6 is exercised by the
        // reproduction binaries; this keeps unit tests fast).
        let machine = MachineConfig::paper_baseline();
        let pipeline = Pipeline::new(machine);
        let s = suite("pgpdec").unwrap();
        let h = Heuristic::PrefClus;
        let free = pipeline.run_suite(&s, Solution::Free, h).unwrap();
        let mdc = pipeline.run_suite(&s, Solution::Mdc, h).unwrap();
        let ddgt = pipeline.run_suite(&s, Solution::Ddgt, h).unwrap();
        let f = AccessBreakdown::of(&free);
        let m = AccessBreakdown::of(&mdc);
        let d = AccessBreakdown::of(&ddgt);
        // The paper's ordering: DDGT maximizes local accesses; MDC
        // colocation reduces them below the unrestricted baseline.
        assert!(
            d.local_hits() >= m.local_hits(),
            "DDGT {} vs MDC {}",
            d.local_hits(),
            m.local_hits()
        );
        assert!(
            f.local_hits() >= m.local_hits(),
            "Free {} vs MDC {}",
            f.local_hits(),
            m.local_hits()
        );
    }
}
