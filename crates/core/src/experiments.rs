//! Drivers that regenerate every table and figure of the paper's
//! evaluation (Sections 4–6). Each driver returns typed rows; the
//! [`crate::report`] module renders them as text tables.

use distvliw_arch::{AccessClass, AttractionBufferConfig, MachineConfig};
use distvliw_coherence::{chain_stats, specialize_kernel, ChainStats};
use distvliw_ir::Suite;
use distvliw_mediabench::{figure_suites, suite};
use distvliw_sched::Heuristic;

use crate::pipeline::{Pipeline, PipelineError, Solution, SuiteStats};

/// Fraction of memory accesses per class (Figure 6 bar segments).
#[derive(Debug, Clone, Copy, Default)]
pub struct AccessBreakdown {
    /// Fractions indexed like [`AccessClass::ALL`].
    pub fractions: [f64; 5],
}

impl AccessBreakdown {
    fn of(stats: &SuiteStats) -> Self {
        let mut fractions = [0.0; 5];
        for class in AccessClass::ALL {
            fractions[class.index()] = stats.total.accesses.fraction(class);
        }
        AccessBreakdown { fractions }
    }

    /// Local hit fraction.
    #[must_use]
    pub fn local_hits(&self) -> f64 {
        self.fractions[AccessClass::LocalHit.index()]
    }
}

/// One benchmark row of Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Free scheduling (no memory-dependence restrictions).
    pub free: AccessBreakdown,
    /// The MDC solution.
    pub mdc: AccessBreakdown,
    /// The DDGT solution.
    pub ddgt: AccessBreakdown,
}

/// Figure 6: classification of memory accesses under PrefClus.
///
/// # Errors
///
/// Propagates the first pipeline failure.
pub fn fig6(machine: &MachineConfig) -> Result<Vec<Fig6Row>, PipelineError> {
    let pipeline = Pipeline::new(machine.clone());
    let mut rows = Vec::new();
    for suite in figure_suites() {
        let h = Heuristic::PrefClus;
        let free = pipeline.run_suite(&suite, Solution::Free, h)?;
        let mdc = pipeline.run_suite(&suite, Solution::Mdc, h)?;
        let ddgt = pipeline.run_suite(&suite, Solution::Ddgt, h)?;
        rows.push(Fig6Row {
            benchmark: suite.name.clone(),
            free: AccessBreakdown::of(&free),
            mdc: AccessBreakdown::of(&mdc),
            ddgt: AccessBreakdown::of(&ddgt),
        });
    }
    Ok(rows)
}

/// Arithmetic-mean row over Figure 6 rows.
#[must_use]
pub fn fig6_amean(rows: &[Fig6Row]) -> Fig6Row {
    let n = rows.len().max(1) as f64;
    let mut mean = Fig6Row {
        benchmark: "AMEAN".into(),
        free: AccessBreakdown::default(),
        mdc: AccessBreakdown::default(),
        ddgt: AccessBreakdown::default(),
    };
    for row in rows {
        for i in 0..5 {
            mean.free.fractions[i] += row.free.fractions[i] / n;
            mean.mdc.fractions[i] += row.mdc.fractions[i] / n;
            mean.ddgt.fractions[i] += row.ddgt.fractions[i] / n;
        }
    }
    mean
}

/// One normalized execution-time bar (compute + stall segments).
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizedBar {
    /// Compute cycles / baseline total cycles.
    pub compute: f64,
    /// Stall cycles / baseline total cycles.
    pub stall: f64,
}

impl NormalizedBar {
    fn of(stats: &SuiteStats, baseline_total: u64) -> Self {
        let b = baseline_total.max(1) as f64;
        NormalizedBar {
            compute: stats.total.compute_cycles as f64 / b,
            stall: stats.total.stall_cycles as f64 / b,
        }
    }

    /// Total normalized cycles.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.compute + self.stall
    }
}

/// One benchmark row of Figure 7 / Figure 9: the four solution bars,
/// normalized to Free(MinComs) on the same machine.
#[derive(Debug, Clone)]
pub struct ExecRow {
    /// Benchmark name.
    pub benchmark: String,
    /// MDC with PrefClus.
    pub mdc_pref: NormalizedBar,
    /// MDC with MinComs.
    pub mdc_min: NormalizedBar,
    /// DDGT with PrefClus.
    pub ddgt_pref: NormalizedBar,
    /// DDGT with MinComs.
    pub ddgt_min: NormalizedBar,
}

fn exec_row(pipeline: &Pipeline, suite: &Suite) -> Result<ExecRow, PipelineError> {
    let baseline = pipeline.run_suite(suite, Solution::Free, Heuristic::MinComs)?;
    let base = baseline.total_cycles();
    let run = |solution, heuristic| -> Result<NormalizedBar, PipelineError> {
        Ok(NormalizedBar::of(
            &pipeline.run_suite(suite, solution, heuristic)?,
            base,
        ))
    };
    Ok(ExecRow {
        benchmark: suite.name.clone(),
        mdc_pref: run(Solution::Mdc, Heuristic::PrefClus)?,
        mdc_min: run(Solution::Mdc, Heuristic::MinComs)?,
        ddgt_pref: run(Solution::Ddgt, Heuristic::PrefClus)?,
        ddgt_min: run(Solution::Ddgt, Heuristic::MinComs)?,
    })
}

/// Figure 7: normalized execution time for the four solution/heuristic
/// combinations, baseline Free(MinComs).
///
/// # Errors
///
/// Propagates the first pipeline failure.
pub fn fig7(machine: &MachineConfig) -> Result<Vec<ExecRow>, PipelineError> {
    let pipeline = Pipeline::new(machine.clone());
    figure_suites()
        .iter()
        .map(|s| exec_row(&pipeline, s))
        .collect()
}

/// Figure 9: the same bars with 16-entry 2-way Attraction Buffers
/// (baseline Free(MinComs) also has the buffers).
///
/// # Errors
///
/// Propagates the first pipeline failure.
pub fn fig9(machine: &MachineConfig) -> Result<Vec<ExecRow>, PipelineError> {
    let with_ab = machine
        .clone()
        .with_attraction_buffers(AttractionBufferConfig::paper());
    fig7(&with_ab)
}

/// Arithmetic-mean row over execution-time rows.
#[must_use]
pub fn exec_amean(rows: &[ExecRow]) -> ExecRow {
    let n = rows.len().max(1) as f64;
    let mut mean = ExecRow {
        benchmark: "AMEAN".into(),
        mdc_pref: NormalizedBar::default(),
        mdc_min: NormalizedBar::default(),
        ddgt_pref: NormalizedBar::default(),
        ddgt_min: NormalizedBar::default(),
    };
    for r in rows {
        for (acc, bar) in [
            (&mut mean.mdc_pref, r.mdc_pref),
            (&mut mean.mdc_min, r.mdc_min),
            (&mut mean.ddgt_pref, r.ddgt_pref),
            (&mut mean.ddgt_min, r.ddgt_min),
        ] {
            acc.compute += bar.compute / n;
            acc.stall += bar.stall / n;
        }
    }
    mean
}

/// One benchmark row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Measured chain ratios.
    pub stats: ChainStats,
    /// The paper's published ratios, when available.
    pub paper: Option<(f64, f64)>,
}

/// Table 3: CMR and CAR per benchmark.
#[must_use]
pub fn table3() -> Vec<Table3Row> {
    distvliw_mediabench::BENCHMARKS
        .iter()
        .filter(|spec| distvliw_mediabench::FIGURE_BENCHMARKS.contains(&spec.name))
        .map(|spec| {
            let suite = distvliw_mediabench::build_suite(spec);
            Table3Row {
                benchmark: spec.name.to_string(),
                stats: chain_stats(suite.kernels.iter()),
                paper: spec.table3,
            }
        })
        .collect()
}

/// One benchmark row of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Dynamic communication operations of DDGT over MDC (PrefClus).
    pub comm_ratio: f64,
    /// DDGT speedup over MDC on the *selected loops* (loops with ≥10%
    /// MDC slowdown vs the Free baseline), `None` when no loop
    /// qualifies (the paper's dashes).
    pub selected_speedup: Option<f64>,
}

impl Table4Row {
    /// Computes one Table 4 row from the three PrefClus suite runs.
    /// Shared by [`table4`] and the serving layer's `/table4` endpoint
    /// so the selection criterion cannot drift between them.
    #[must_use]
    pub fn from_stats(
        benchmark: impl Into<String>,
        free: &SuiteStats,
        mdc: &SuiteStats,
        ddgt: &SuiteStats,
    ) -> Table4Row {
        let comm_ratio = ddgt.total.comm_ops as f64 / (mdc.total.comm_ops.max(1)) as f64;

        // Selected loops: ≥10% MDC slowdown vs the Free baseline.
        let mut mdc_cycles = 0u64;
        let mut ddgt_cycles = 0u64;
        for ((f, m), d) in free.kernels.iter().zip(&mdc.kernels).zip(&ddgt.kernels) {
            if m.stats.total_cycles() as f64 >= 1.10 * f.stats.total_cycles() as f64 {
                mdc_cycles += m.stats.total_cycles();
                ddgt_cycles += d.stats.total_cycles();
            }
        }
        let selected_speedup =
            (mdc_cycles > 0).then(|| mdc_cycles as f64 / ddgt_cycles.max(1) as f64 - 1.0);
        Table4Row {
            benchmark: benchmark.into(),
            comm_ratio,
            selected_speedup,
        }
    }
}

/// Table 4: Δ communication operations and selected-loop speedups
/// (PrefClus).
///
/// # Errors
///
/// Propagates the first pipeline failure.
pub fn table4(machine: &MachineConfig) -> Result<Vec<Table4Row>, PipelineError> {
    let pipeline = Pipeline::new(machine.clone());
    let mut rows = Vec::new();
    for suite in figure_suites() {
        let h = Heuristic::PrefClus;
        let free = pipeline.run_suite(&suite, Solution::Free, h)?;
        let mdc = pipeline.run_suite(&suite, Solution::Mdc, h)?;
        let ddgt = pipeline.run_suite(&suite, Solution::Ddgt, h)?;
        rows.push(Table4Row::from_stats(
            suite.name.clone(),
            &free,
            &mdc,
            &ddgt,
        ));
    }
    Ok(rows)
}

/// One benchmark row of Table 5.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Ratios before code specialization.
    pub old: ChainStats,
    /// Ratios after code specialization.
    pub new: ChainStats,
    /// Paper values `(old_cmr, old_car, new_cmr, new_car)`.
    pub paper: (f64, f64, f64, f64),
}

/// Table 5: chain restrictions before and after code specialization for
/// epicdec, pgpdec and rasta (paper Section 6).
#[must_use]
pub fn table5() -> Vec<Table5Row> {
    let targets = [
        ("epicdec", (0.64, 0.22, 0.20, 0.06)),
        ("pgpdec", (0.73, 0.24, 0.52, 0.17)),
        ("rasta", (0.52, 0.26, 0.13, 0.06)),
    ];
    targets
        .iter()
        .map(|&(name, paper)| {
            let s = suite(name).expect("specialization benchmarks exist");
            let old = chain_stats(s.kernels.iter());
            let specialized: Vec<_> = s.kernels.iter().map(|k| specialize_kernel(k).0).collect();
            let new = chain_stats(specialized.iter());
            Table5Row {
                benchmark: name.to_string(),
                old,
                new,
                paper,
            }
        })
        .collect()
}

/// One benchmark row of the NOBAL bus-configuration study (Section 4.2,
/// "Other architectural configurations").
#[derive(Debug, Clone)]
pub struct NobalRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Best MDC total cycles (over both heuristics).
    pub best_mdc: u64,
    /// DDGT(PrefClus) total cycles.
    pub ddgt_pref: u64,
    /// Speedup of DDGT(PrefClus) over the best MDC (positive = DDGT
    /// wins).
    pub ddgt_speedup: f64,
}

/// Runs the NOBAL study on one machine variant
/// ([`MachineConfig::nobal_mem`] or [`MachineConfig::nobal_reg`]).
///
/// # Errors
///
/// Propagates the first pipeline failure.
pub fn nobal(machine: &MachineConfig) -> Result<Vec<NobalRow>, PipelineError> {
    let pipeline = Pipeline::new(machine.clone());
    let mut rows = Vec::new();
    for suite in figure_suites() {
        let mdc_pref = pipeline.run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)?;
        let mdc_min = pipeline.run_suite(&suite, Solution::Mdc, Heuristic::MinComs)?;
        let ddgt = pipeline.run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)?;
        let best_mdc = mdc_pref.total_cycles().min(mdc_min.total_cycles());
        let ddgt_pref = ddgt.total_cycles();
        rows.push(NobalRow {
            benchmark: suite.name.clone(),
            best_mdc,
            ddgt_pref,
            ddgt_speedup: best_mdc as f64 / ddgt_pref.max(1) as f64 - 1.0,
        });
    }
    Ok(rows)
}

/// The gsmdec loop case study of Section 4.2 and the epicdec Attraction
/// Buffer case study of Section 5.4.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Which loop.
    pub name: String,
    /// MDC(PrefClus) compute and stall cycles.
    pub mdc: (u64, u64),
    /// DDGT(PrefClus) compute and stall cycles.
    pub ddgt: (u64, u64),
    /// MDC local hit ratio.
    pub mdc_local: f64,
    /// DDGT local hit ratio.
    pub ddgt_local: f64,
    /// Speedup of DDGT over MDC on this loop.
    pub speedup: f64,
}

fn case_study(machine: &MachineConfig, bench: &str) -> Result<CaseStudy, PipelineError> {
    let s = suite(bench).expect("case-study benchmark exists");
    let pipeline = Pipeline::new(machine.clone().with_interleave(s.interleave_bytes));
    let chained = &s.kernels[0];
    let mdc = pipeline.run_kernel(chained, Solution::Mdc, Heuristic::PrefClus)?;
    let ddgt = pipeline.run_kernel(chained, Solution::Ddgt, Heuristic::PrefClus)?;
    Ok(CaseStudy {
        name: format!("{bench}.{}", chained.name),
        mdc: (mdc.stats.compute_cycles, mdc.stats.stall_cycles),
        ddgt: (ddgt.stats.compute_cycles, ddgt.stats.stall_cycles),
        mdc_local: mdc.stats.local_hit_ratio(),
        ddgt_local: ddgt.stats.local_hit_ratio(),
        speedup: mdc.stats.total_cycles() as f64 / ddgt.stats.total_cycles().max(1) as f64 - 1.0,
    })
}

/// The gsmdec selected-loop case study (paper Section 4.2).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn gsmdec_case_study(machine: &MachineConfig) -> Result<CaseStudy, PipelineError> {
    case_study(machine, "gsmdec")
}

/// The epicdec Attraction-Buffer case study (paper Section 5.4): the
/// 76-memory-op chain loop with 16-entry 2-way buffers.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn epicdec_ab_case_study(machine: &MachineConfig) -> Result<CaseStudy, PipelineError> {
    let with_ab = machine
        .clone()
        .with_attraction_buffers(AttractionBufferConfig::paper());
    case_study(&with_ab, "epicdec")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reports_all_figure_benchmarks() {
        let rows = table3();
        assert_eq!(rows.len(), 13);
        for row in &rows {
            assert!(row.stats.car <= row.stats.cmr + 1e-9, "{}", row.benchmark);
        }
    }

    #[test]
    fn table5_specialization_shrinks_chains() {
        for row in table5() {
            assert!(
                row.new.cmr < row.old.cmr,
                "{}: {} !< {}",
                row.benchmark,
                row.new.cmr,
                row.old.cmr
            );
            assert!(row.new.car <= row.old.car + 1e-9, "{}", row.benchmark);
        }
    }

    #[test]
    fn fig6_single_benchmark_shapes() {
        // Run one benchmark end to end (full fig6 is exercised by the
        // reproduction binaries; this keeps unit tests fast).
        let machine = MachineConfig::paper_baseline();
        let pipeline = Pipeline::new(machine);
        let s = suite("pgpdec").unwrap();
        let h = Heuristic::PrefClus;
        let free = pipeline.run_suite(&s, Solution::Free, h).unwrap();
        let mdc = pipeline.run_suite(&s, Solution::Mdc, h).unwrap();
        let ddgt = pipeline.run_suite(&s, Solution::Ddgt, h).unwrap();
        let f = AccessBreakdown::of(&free);
        let m = AccessBreakdown::of(&mdc);
        let d = AccessBreakdown::of(&ddgt);
        // The paper's ordering: DDGT maximizes local accesses; MDC
        // colocation reduces them below the unrestricted baseline.
        assert!(
            d.local_hits() >= m.local_hits(),
            "DDGT {} vs MDC {}",
            d.local_hits(),
            m.local_hits()
        );
        assert!(
            f.local_hits() >= m.local_hits(),
            "Free {} vs MDC {}",
            f.local_hits(),
            m.local_hits()
        );
    }
}
