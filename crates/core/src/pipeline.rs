//! The end-to-end pipeline: coherence pass → cluster-aware modulo
//! scheduling → cycle-level simulation.

use std::fmt;

use distvliw_arch::MachineConfig;
use distvliw_coherence::{find_chains, specialize_kernel, transform, SchedConstraints};
use distvliw_ir::{profile::preferred_clusters, LoopKernel, Suite};
use distvliw_sched::{Heuristic, ModuloScheduler, Schedule, ScheduleError};
use distvliw_sim::{simulate_kernel, SimOptions, SimStats};

/// Which coherence solution the pipeline applies (paper Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Solution {
    /// No restriction: the paper's optimistic (unsound) baseline, where
    /// memory instructions are freely scheduled in any cluster.
    Free,
    /// Memory Dependent Chains.
    Mdc,
    /// Data Dependence Graph Transformations (store replication +
    /// load–store synchronization).
    Ddgt,
    /// The per-loop hybrid the paper sketches as future work (Section 6):
    /// "the execution time of a loop with both solutions could be
    /// estimated at compile time and the best solution could be chosen".
    /// Both solutions are compiled and estimated; the cheaper one wins,
    /// loop by loop.
    Hybrid,
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Solution::Free => f.write_str("Free"),
            Solution::Mdc => f.write_str("MDC"),
            Solution::Ddgt => f.write_str("DDGT"),
            Solution::Hybrid => f.write_str("Hybrid"),
        }
    }
}

/// Pipeline-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The scheduler failed on a kernel.
    Schedule {
        /// Kernel name.
        kernel: String,
        /// Underlying error.
        error: ScheduleError,
    },
    /// A kernel failed validation.
    Kernel {
        /// Kernel name.
        kernel: String,
        /// Description of the defect.
        error: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Schedule { kernel, error } => {
                write!(f, "scheduling `{kernel}` failed: {error}")
            }
            PipelineError::Kernel { kernel, error } => {
                write!(f, "invalid kernel `{kernel}`: {error}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Simulator options.
    pub sim: SimOptions,
    /// Apply code specialization (paper Section 6) before the coherence
    /// pass.
    pub specialize: bool,
    /// Cache-sensitive latency assignment in the scheduler.
    pub relax_latencies: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            sim: SimOptions::default(),
            specialize: false,
            relax_latencies: true,
        }
    }
}

/// Result of compiling and simulating one loop kernel.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Kernel name.
    pub name: String,
    /// The initiation interval achieved.
    pub ii: u32,
    /// Schedule length (pipeline fill).
    pub span: u32,
    /// Static communication (copy) operations per iteration.
    pub static_comm_ops: usize,
    /// Simulation statistics (all invocations).
    pub stats: SimStats,
}

/// Result of running a whole benchmark suite.
#[derive(Debug, Clone)]
pub struct SuiteStats {
    /// Benchmark name.
    pub name: String,
    /// Per-kernel results.
    pub kernels: Vec<KernelRun>,
    /// Aggregate over all kernels.
    pub total: SimStats,
}

impl SuiteStats {
    /// Total cycles of the suite.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total.total_cycles()
    }

    /// Aggregate local hit ratio.
    #[must_use]
    pub fn local_hit_ratio(&self) -> f64 {
        self.total.local_hit_ratio()
    }
}

impl std::ops::Deref for SuiteStats {
    type Target = SimStats;

    fn deref(&self) -> &SimStats {
        &self.total
    }
}

/// The end-to-end compile-and-simulate pipeline for one machine.
#[derive(Debug, Clone)]
pub struct Pipeline {
    machine: MachineConfig,
    options: PipelineOptions,
}

impl Pipeline {
    /// Creates a pipeline with default options.
    ///
    /// # Panics
    ///
    /// Panics if the machine configuration is invalid.
    #[must_use]
    pub fn new(machine: MachineConfig) -> Self {
        machine.validate().expect("valid machine configuration");
        Pipeline { machine, options: PipelineOptions::default() }
    }

    /// Replaces the pipeline options.
    #[must_use]
    pub fn with_options(mut self, options: PipelineOptions) -> Self {
        self.options = options;
        self
    }

    /// The machine this pipeline targets.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Compiles and simulates every kernel of `suite` under the given
    /// solution and heuristic. The machine's interleaving factor is set
    /// from the suite (paper Table 1).
    ///
    /// # Errors
    ///
    /// Returns the first kernel that fails validation or scheduling.
    pub fn run_suite(
        &self,
        suite: &Suite,
        solution: Solution,
        heuristic: Heuristic,
    ) -> Result<SuiteStats, PipelineError> {
        let machine = self.machine.clone().with_interleave(suite.interleave_bytes);
        let mut kernels = Vec::with_capacity(suite.kernels.len());
        let mut total = SimStats::default();
        for kernel in &suite.kernels {
            let run = self.run_kernel_on(&machine, kernel, solution, heuristic)?;
            total += run.stats;
            kernels.push(run);
        }
        Ok(SuiteStats { name: suite.name.clone(), kernels, total })
    }

    /// Compiles and simulates a single kernel with the pipeline's machine
    /// (using its configured interleave).
    ///
    /// # Errors
    ///
    /// Returns the kernel's validation or scheduling failure.
    pub fn run_kernel(
        &self,
        kernel: &LoopKernel,
        solution: Solution,
        heuristic: Heuristic,
    ) -> Result<KernelRun, PipelineError> {
        self.run_kernel_on(&self.machine, kernel, solution, heuristic)
    }

    fn run_kernel_on(
        &self,
        machine: &MachineConfig,
        kernel: &LoopKernel,
        solution: Solution,
        heuristic: Heuristic,
    ) -> Result<KernelRun, PipelineError> {
        // The hybrid works loop by loop: compile and estimate both
        // solutions, keep the cheaper (paper Section 6; the estimate is
        // our cycle-level model, standing in for the paper's compile-time
        // cost model).
        if solution == Solution::Hybrid {
            let mdc = self.run_kernel_on(machine, kernel, Solution::Mdc, heuristic)?;
            let ddgt = self.run_kernel_on(machine, kernel, Solution::Ddgt, heuristic)?;
            return Ok(if mdc.stats.total_cycles() <= ddgt.stats.total_cycles() {
                mdc
            } else {
                ddgt
            });
        }

        kernel.validate().map_err(|e| PipelineError::Kernel {
            kernel: kernel.name.clone(),
            error: e.to_string(),
        })?;

        // Optional code specialization (paper Section 6).
        let mut kernel = if self.options.specialize {
            specialize_kernel(kernel).0
        } else {
            kernel.clone()
        };

        // Profile pass: preferred clusters under the profile input.
        let prefs = preferred_clusters(&kernel, machine.n_clusters, |addr| {
            machine.home_cluster(addr)
        });

        // Coherence pass.
        let constraints = match solution {
            Solution::Free => SchedConstraints::none(),
            Solution::Mdc => {
                let chains = find_chains(&kernel.ddg);
                let pref_arg =
                    (heuristic == Heuristic::PrefClus).then_some(&prefs);
                SchedConstraints::for_mdc(&chains, &kernel.ddg, pref_arg, machine.n_clusters)
            }
            Solution::Ddgt => {
                let report = transform(&mut kernel.ddg, machine.n_clusters);
                SchedConstraints::for_ddgt(&report)
            }
            Solution::Hybrid => unreachable!("handled above"),
        };

        // Cluster-aware modulo scheduling.
        let schedule: Schedule = ModuloScheduler::new(machine)
            .with_latency_relaxation(self.options.relax_latencies)
            .schedule(&kernel.ddg, &constraints, &prefs, heuristic)
            .map_err(|error| PipelineError::Schedule {
                kernel: kernel.name.clone(),
                error,
            })?;

        // Cycle-level simulation.
        let stats = simulate_kernel(machine, &kernel, &schedule, self.options.sim);
        Ok(KernelRun {
            name: kernel.name.clone(),
            ii: schedule.ii,
            span: schedule.span,
            static_comm_ops: schedule.comm_ops(),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    #[test]
    fn pipeline_runs_a_benchmark_suite() {
        let suite = distvliw_mediabench::suite("gsmdec").unwrap();
        let p = Pipeline::new(machine());
        let stats = p.run_suite(&suite, Solution::Mdc, Heuristic::PrefClus).unwrap();
        assert_eq!(stats.kernels.len(), suite.kernels.len());
        assert!(stats.total_cycles() > 0);
        assert!(stats.total.accesses.total() > 0);
        assert_eq!(stats.total.coherence_violations, 0);
    }

    #[test]
    fn all_solutions_and_heuristics_run() {
        let suite = distvliw_mediabench::suite("jpegenc").unwrap();
        let p = Pipeline::new(machine());
        for solution in [Solution::Free, Solution::Mdc, Solution::Ddgt] {
            for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
                let stats = p.run_suite(&suite, solution, heuristic).unwrap();
                assert!(stats.total_cycles() > 0, "{solution}/{heuristic}");
            }
        }
    }

    #[test]
    fn mdc_and_ddgt_are_always_coherent() {
        let suite = distvliw_mediabench::suite("pgpdec").unwrap();
        let p = Pipeline::new(machine());
        for solution in [Solution::Mdc, Solution::Ddgt] {
            for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
                let stats = p.run_suite(&suite, solution, heuristic).unwrap();
                assert_eq!(
                    stats.total.coherence_violations, 0,
                    "{solution}/{heuristic} must be coherent"
                );
            }
        }
    }

    #[test]
    fn specialization_option_changes_chained_benchmarks() {
        let suite = distvliw_mediabench::suite("rasta").unwrap();
        let base = Pipeline::new(machine());
        let spec = Pipeline::new(machine()).with_options(PipelineOptions {
            specialize: true,
            ..PipelineOptions::default()
        });
        // With MinComs the scheduler can spread the now-independent
        // segments over clusters: specialization removes the
        // cross-segment links, shrinking what MDC must serialize and the
        // chained loop's II with it. (Under PrefClus the segments can
        // still tie-break into one cluster, so MinComs is the clean
        // observable.)
        let plain = base.run_suite(&suite, Solution::Mdc, Heuristic::MinComs).unwrap();
        let specialized = spec.run_suite(&suite, Solution::Mdc, Heuristic::MinComs).unwrap();
        let ii_plain = plain.kernels[0].ii;
        let ii_spec = specialized.kernels[0].ii;
        assert!(ii_spec <= ii_plain, "II {ii_spec} vs {ii_plain}");
    }

    #[test]
    fn display_impls() {
        assert_eq!(Solution::Free.to_string(), "Free");
        assert_eq!(Solution::Mdc.to_string(), "MDC");
        assert_eq!(Solution::Ddgt.to_string(), "DDGT");
        assert_eq!(Solution::Hybrid.to_string(), "Hybrid");
    }

    #[test]
    fn hybrid_picks_the_best_solution_per_loop() {
        // Paper Section 6: the hybrid estimates both solutions per loop
        // and keeps the winner, so it can never lose to either.
        let p = Pipeline::new(machine());
        for name in ["epicdec", "pgpenc", "gsmdec"] {
            let suite = distvliw_mediabench::suite(name).unwrap();
            for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
                let mdc = p.run_suite(&suite, Solution::Mdc, heuristic).unwrap();
                let ddgt = p.run_suite(&suite, Solution::Ddgt, heuristic).unwrap();
                let hybrid = p.run_suite(&suite, Solution::Hybrid, heuristic).unwrap();
                assert!(
                    hybrid.total_cycles() <= mdc.total_cycles().min(ddgt.total_cycles()),
                    "{name}/{heuristic}: hybrid {} vs MDC {} / DDGT {}",
                    hybrid.total_cycles(),
                    mdc.total_cycles(),
                    ddgt.total_cycles()
                );
                assert_eq!(hybrid.total.coherence_violations, 0);
            }
        }
    }
}
