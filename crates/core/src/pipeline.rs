//! The end-to-end pipeline: coherence pass → cluster-aware modulo
//! scheduling → cycle-level simulation.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use distvliw_arch::MachineConfig;
use distvliw_coherence::{find_chains, specialize_kernel, transform, SchedConstraints};
use distvliw_ir::{profile::preferred_clusters, Ddg, LoopKernel, Suite};
use distvliw_sched::{Heuristic, ModuloScheduler, SchedStats, Schedule, ScheduleError};
use distvliw_sim::{simulate_kernel_detailed, ClusterUsage, SimOptions, SimStats};

use crate::{cachekey, par};

/// Which coherence solution the pipeline applies (paper Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Solution {
    /// No restriction: the paper's optimistic (unsound) baseline, where
    /// memory instructions are freely scheduled in any cluster.
    Free,
    /// Memory Dependent Chains.
    Mdc,
    /// Data Dependence Graph Transformations (store replication +
    /// load–store synchronization).
    Ddgt,
    /// The per-loop hybrid the paper sketches as future work (Section 6):
    /// "the execution time of a loop with both solutions could be
    /// estimated at compile time and the best solution could be chosen".
    /// Both solutions are compiled and estimated; the cheaper one wins,
    /// loop by loop.
    Hybrid,
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Solution::Free => f.write_str("Free"),
            Solution::Mdc => f.write_str("MDC"),
            Solution::Ddgt => f.write_str("DDGT"),
            Solution::Hybrid => f.write_str("Hybrid"),
        }
    }
}

impl std::str::FromStr for Solution {
    type Err = String;

    /// Parses the case-insensitive solution name used in request bodies
    /// and CLI flags (`free`, `mdc`, `ddgt`, `hybrid`).
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "free" => Ok(Solution::Free),
            "mdc" => Ok(Solution::Mdc),
            "ddgt" => Ok(Solution::Ddgt),
            "hybrid" => Ok(Solution::Hybrid),
            other => Err(format!(
                "unknown solution `{other}` (expected free, mdc, ddgt or hybrid)"
            )),
        }
    }
}

/// Pipeline-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The scheduler failed on a kernel.
    Schedule {
        /// Kernel name.
        kernel: String,
        /// Underlying error.
        error: ScheduleError,
    },
    /// A kernel failed validation.
    Kernel {
        /// Kernel name.
        kernel: String,
        /// Description of the defect.
        error: String,
    },
    /// The static checker rejected an emitted schedule — the scheduler
    /// produced something the independent verifier (`distvliw-check`)
    /// can prove illegal, which is always a scheduler bug.
    Check {
        /// Kernel name.
        kernel: String,
        /// Per-kind summary plus every violation, pretty-printed.
        report: String,
    },
    /// A sweep cell failed: the underlying error wrapped with the grid
    /// coordinates of the first cell (in row order) it surfaced in, so a
    /// failure deep in a 10k-cell grid names its cell instead of only
    /// its kernel.
    Cell {
        /// Cluster count of the failing grid point.
        n_clusters: usize,
        /// Memory-bus configuration of the failing grid point.
        mem_buses: distvliw_arch::BusConfig,
        /// Coherence solution of the failing cell.
        solution: Solution,
        /// Suite the failing kernel belongs to.
        suite: String,
        /// The underlying pipeline failure.
        source: Box<PipelineError>,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Schedule { kernel, error } => {
                write!(f, "scheduling `{kernel}` failed: {error}")
            }
            PipelineError::Kernel { kernel, error } => {
                write!(f, "invalid kernel `{kernel}`: {error}")
            }
            PipelineError::Check { kernel, report } => {
                write!(f, "schedule for `{kernel}` failed verification: {report}")
            }
            PipelineError::Cell {
                n_clusters,
                mem_buses,
                solution,
                suite,
                source,
            } => {
                write!(
                    f,
                    "sweep cell ({n_clusters} clusters, {}@{} buses, {solution}, {suite}): {source}",
                    mem_buses.count, mem_buses.latency
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Cell { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Simulator options.
    pub sim: SimOptions,
    /// Apply code specialization (paper Section 6) before the coherence
    /// pass.
    pub specialize: bool,
    /// Cache-sensitive latency assignment in the scheduler.
    pub relax_latencies: bool,
    /// Run the independent static verifier (`distvliw-check`) on every
    /// compiled schedule and fail the compile on any violation. Debug
    /// builds verify unconditionally (every test run exercises the
    /// checker); this flag extends the guarantee to release builds — the
    /// `check` bin and `serve --check` turn it on.
    pub check: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            sim: SimOptions::default(),
            specialize: false,
            relax_latencies: true,
            check: false,
        }
    }
}

/// Result of compiling and simulating one loop kernel.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Kernel name.
    pub name: String,
    /// The initiation interval achieved.
    pub ii: u32,
    /// Schedule length (pipeline fill).
    pub span: u32,
    /// Static communication (copy) operations per iteration.
    pub static_comm_ops: usize,
    /// Scheduler search telemetry (attempts, ejections, II seed).
    pub sched: SchedStats,
    /// Simulation statistics (all invocations).
    pub stats: SimStats,
    /// Per-cluster resource usage (all invocations).
    pub cluster: ClusterUsage,
}

/// Scheduler search effort aggregated over a suite (or any set of
/// kernel runs): the ejection/attempt trajectory the sweep report and
/// the bench harness surface.
///
/// These are *effort* numbers, not pure functions of the inputs: a
/// pipeline whose II-seed store is warm (an earlier run of the same
/// configuration on the same `Pipeline` instance) legitimately reports
/// fewer attempts and a nonzero `seeded_kernels` while producing the
/// byte-identical schedule. Compare effort across runs only from a
/// fresh `Pipeline` (as `run_matrix` and the bench harness do).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedTotals {
    /// Placement attempts across all kernels.
    pub placement_attempts: u64,
    /// Ops evicted by the ejection scheduler across all kernels.
    pub ejections: u64,
    /// Initiation intervals tried across all kernels.
    pub iis_tried: u64,
    /// Kernels whose search opened at a profile seed.
    pub seeded_kernels: u64,
    /// Peak stage-aware register pressure over all kernels.
    pub max_reg_pressure: u32,
}

impl SchedTotals {
    fn absorb(&mut self, s: &SchedStats) {
        self.placement_attempts += s.placement_attempts;
        self.ejections += s.ejections;
        self.iis_tried += u64::from(s.iis_tried);
        self.seeded_kernels += u64::from(s.seeded_at.is_some());
        self.max_reg_pressure = self.max_reg_pressure.max(s.max_reg_pressure);
    }
}

/// Folds another aggregate in: counters add, the register-pressure peak
/// takes the maximum — the same fold the private per-kernel `absorb`
/// applies, so a new counter field added here cannot be silently
/// dropped from one of the two sums.
impl std::ops::AddAssign<&SchedTotals> for SchedTotals {
    fn add_assign(&mut self, other: &SchedTotals) {
        self.placement_attempts += other.placement_attempts;
        self.ejections += other.ejections;
        self.iis_tried += other.iis_tried;
        self.seeded_kernels += other.seeded_kernels;
        self.max_reg_pressure = self.max_reg_pressure.max(other.max_reg_pressure);
    }
}

/// One `(suite, solution, heuristic)` cell of an experiment grid run by
/// [`Pipeline::run_matrix`].
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Benchmark suite name.
    pub suite: String,
    /// Coherence solution of this cell.
    pub solution: Solution,
    /// Cluster-assignment heuristic of this cell.
    pub heuristic: Heuristic,
    /// The cell's result (or its pipeline failure).
    pub stats: Result<SuiteStats, PipelineError>,
}

/// Result of running a whole benchmark suite.
#[derive(Debug, Clone)]
pub struct SuiteStats {
    /// Benchmark name.
    pub name: String,
    /// Per-kernel results.
    pub kernels: Vec<KernelRun>,
    /// Aggregate over all kernels.
    pub total: SimStats,
    /// Per-cluster usage aggregated over all kernels (the imbalance
    /// surface: which clusters issued the accesses, where the violations
    /// were attributed, how many bus grants the suite consumed).
    pub cluster: ClusterUsage,
    /// Scheduler search effort aggregated over all kernels.
    pub sched: SchedTotals,
}

impl SuiteStats {
    /// Total cycles of the suite.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total.total_cycles()
    }

    /// Aggregate local hit ratio.
    #[must_use]
    pub fn local_hit_ratio(&self) -> f64 {
        self.total.local_hit_ratio()
    }
}

impl std::ops::Deref for SuiteStats {
    type Target = SimStats;

    fn deref(&self) -> &SimStats {
        &self.total
    }
}

/// One kernel's compile-phase output: the (specialized, transformed)
/// kernel the simulator must execute together with its schedule and the
/// search telemetry that produced it. Everything here is a pure function
/// of the kernel, the coherence solution, the heuristic and the
/// machine's *scheduler projection*
/// ([`MachineConfig::sched_canonical_bytes`]), so one artifact replays
/// under every memory-system variant that shares the projection.
#[derive(Debug, Clone)]
pub struct KernelArtifact {
    /// The kernel as scheduled: specialization applied when the pipeline
    /// options ask for it, and the DDGT graph transformation applied for
    /// [`Solution::Ddgt`] (store replicas and synchronization edges are
    /// part of the graph the schedule refers to).
    pub kernel: LoopKernel,
    /// The modulo schedule.
    pub schedule: Schedule,
    /// Scheduler search telemetry of the (cold) compile.
    pub sched: SchedStats,
}

/// The compile phase of a whole suite: one [`KernelArtifact`] per kernel,
/// in suite order, plus the interleave the suite was compiled under.
/// Produced by [`Pipeline::compile_suite`], replayed by
/// [`Pipeline::simulate_artifact`].
#[derive(Debug, Clone)]
pub struct SuiteArtifact {
    /// Suite name.
    pub name: String,
    /// The suite's interleaving factor the compile machine used (paper
    /// Table 1); the sim machine applies the same one.
    pub interleave_bytes: u64,
    /// Per-kernel artifacts, in suite order.
    pub kernels: Vec<KernelArtifact>,
}

/// Profile-guided II seeds: achieved IIs recorded per full scheduling
/// configuration (machine, graph, constraints, profile, heuristic), fed
/// back so a repeat search opens just under the recorded II instead of
/// re-scanning from the MII. Shared across the pipeline's clones and
/// threads; the scheduler is deterministic, so a warm seed reproduces
/// the cold result exactly while skipping the provably re-failing IIs.
///
/// The store is durable-state aware: [`IiSeedStore::snapshot`] and
/// [`IiSeedStore::absorb`] give the serving layer lossless save/load
/// hooks, and [`IiSeedStore::drain_dirty`] yields only the entries
/// recorded (or changed) since the last drain, so a persistence layer
/// can append incrementally instead of rewriting the whole store per
/// compile. Keys are the 128-bit full-configuration fingerprints of
/// `seed_key`; a persisted store must be era-tagged by the caller (the
/// fingerprint embeds `MachineConfig::canonical_bytes`, so any encoding
/// change silently changes every key — see `docs/persistence.md`).
#[derive(Debug, Default)]
pub struct IiSeedStore {
    map: Mutex<HashMap<[u8; 16], u32>>,
    /// Keys recorded with a new or changed value since the last
    /// [`IiSeedStore::drain_dirty`], in record order.
    dirty: Mutex<Vec<[u8; 16]>>,
}

impl IiSeedStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        IiSeedStore::default()
    }

    fn get(&self, key: [u8; 16]) -> Option<u32> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
            .copied()
    }

    fn record(&self, key: [u8; 16], ii: u32) {
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if map.insert(key, ii) != Some(ii) {
            self.dirty
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(key);
        }
    }

    /// Number of recorded seeds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether no seed has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every `(key, ii)` pair, sorted by key so a persisted snapshot is
    /// deterministic across runs.
    #[must_use]
    pub fn snapshot(&self) -> Vec<([u8; 16], u32)> {
        let mut entries: Vec<([u8; 16], u32)> = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        entries.sort_unstable_by_key(|entry| entry.0);
        entries
    }

    /// Loads `(key, ii)` pairs (later entries win on duplicate keys, so
    /// replaying an append-ordered log lands on the freshest value).
    /// Loaded entries do **not** mark the store dirty: they are already
    /// durable.
    pub fn absorb(&self, entries: &[([u8; 16], u32)]) {
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (key, ii) in entries {
            map.insert(*key, *ii);
        }
    }

    /// The `(key, ii)` pairs recorded since the last drain, clearing the
    /// dirty set. Values are read at drain time, so a key recorded twice
    /// between drains yields its freshest II (and appears once per
    /// record, which an append log tolerates by last-wins replay).
    #[must_use]
    pub fn drain_dirty(&self) -> Vec<([u8; 16], u32)> {
        let keys: Vec<[u8; 16]> = std::mem::take(
            &mut *self
                .dirty
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        let map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        keys.iter()
            .filter_map(|k| map.get(k).map(|ii| (*k, *ii)))
            .collect()
    }
}

/// The full-configuration key of one scheduling problem. Everything the
/// scheduler's output depends on is encoded — the machine's *scheduler
/// projection* ([`MachineConfig::sched_canonical_bytes`], the same
/// invariant the sweep's compile-once factoring relies on, so machines
/// differing only in simulation fields share their seeds), graph
/// topology (the same `op_tag`/`dep_tag` encoding the result-cache
/// digest uses), constraints, profile preferences, heuristic and
/// options — then compressed to the cache layer's 128-bit two-FNV
/// fingerprint, so a seed is never replayed against a different problem
/// (a replayed seed above the victim's optimal II would silently return
/// a worse schedule, which is why a single 64-bit hash is not enough
/// here either).
fn seed_key(
    machine: &MachineConfig,
    ddg: &Ddg,
    constraints: &SchedConstraints,
    prefs: &distvliw_ir::PrefMap,
    heuristic: Heuristic,
    relax_latencies: bool,
) -> [u8; 16] {
    let mut bytes = machine.sched_canonical_bytes();
    let u64le = |bytes: &mut Vec<u8>, v: u64| bytes.extend_from_slice(&v.to_le_bytes());
    u64le(&mut bytes, ddg.node_count() as u64);
    for (_, op) in ddg.iter() {
        bytes.push(cachekey::op_tag(op.kind));
        match op.mem_id() {
            Some(m) => {
                bytes.push(0);
                u64le(&mut bytes, u64::from(m.0));
            }
            None => bytes.push(0xff),
        }
    }
    for (_, d) in ddg.deps() {
        u64le(&mut bytes, u64::from(d.src.0));
        u64le(&mut bytes, u64::from(d.dst.0));
        bytes.push(cachekey::dep_tag(d.kind));
        u64le(&mut bytes, u64::from(d.distance));
    }
    for (n, g) in &constraints.colocate {
        u64le(&mut bytes, u64::from(n.0));
        u64le(&mut bytes, u64::from(*g));
    }
    for (g, c) in &constraints.group_target {
        u64le(&mut bytes, u64::from(*g));
        u64le(&mut bytes, *c as u64);
    }
    for (n, c) in &constraints.pinned {
        u64le(&mut bytes, u64::from(n.0));
        u64le(&mut bytes, *c as u64);
    }
    u64le(&mut bytes, u64::from(constraints.min_ii));
    for (m, info) in prefs {
        u64le(&mut bytes, u64::from(m.0));
        for &c in info.counts() {
            u64le(&mut bytes, c);
        }
    }
    bytes.push(heuristic as u8);
    bytes.push(u8::from(relax_latencies));
    cachekey::digest_fingerprint(&bytes)
}

/// The end-to-end compile-and-simulate pipeline for one machine.
#[derive(Debug, Clone)]
pub struct Pipeline {
    machine: MachineConfig,
    options: PipelineOptions,
    /// Profile-guided II seeds, shared by all clones of this pipeline.
    seeds: Arc<IiSeedStore>,
}

impl Pipeline {
    /// Creates a pipeline with default options.
    ///
    /// # Panics
    ///
    /// Panics if the machine configuration is invalid.
    #[must_use]
    pub fn new(machine: MachineConfig) -> Self {
        Self::with_parts(
            machine,
            PipelineOptions::default(),
            Arc::new(IiSeedStore::new()),
        )
    }

    /// The single constructor every pipeline goes through — `new`, the
    /// seed-store builder and `run_matrix`'s detached per-cell pipelines
    /// all funnel here, so there is exactly one place a seed store is
    /// attached and a persisted store cannot be silently bypassed by a
    /// second construction path.
    fn with_parts(
        machine: MachineConfig,
        options: PipelineOptions,
        seeds: Arc<IiSeedStore>,
    ) -> Self {
        machine.validate().expect("valid machine configuration");
        Pipeline {
            machine,
            options,
            seeds,
        }
    }

    /// Replaces the pipeline options.
    #[must_use]
    pub fn with_options(mut self, options: PipelineOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the II-seed store with a shared (possibly persisted)
    /// one. The scheduler is deterministic, so a warm store changes only
    /// search *effort* (fewer `iis_tried`, a nonzero `seeded_at`), never
    /// a schedule byte — pinned by `warm_seed_store_reproduces_cold_run`.
    #[must_use]
    pub fn with_seed_store(mut self, seeds: Arc<IiSeedStore>) -> Self {
        self.seeds = seeds;
        self
    }

    /// The pipeline's II-seed store (shared by all clones), for
    /// persistence layers that save it across restarts.
    #[must_use]
    pub fn seed_store(&self) -> &Arc<IiSeedStore> {
        &self.seeds
    }

    /// A pipeline with this one's machine and options but a fresh,
    /// empty seed store — the detached cell `run_matrix` schedules on so
    /// concurrent cells report thread-timing-independent effort numbers.
    fn detached(&self) -> Self {
        Self::with_parts(
            self.machine.clone(),
            self.options,
            Arc::new(IiSeedStore::new()),
        )
    }

    /// The machine this pipeline targets.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Compiles and simulates every kernel of `suite` under the given
    /// solution and heuristic. The machine's interleaving factor is set
    /// from the suite (paper Table 1).
    ///
    /// Kernels compile and simulate concurrently (schedule and simulation
    /// are pure functions of the kernel and machine); results are merged
    /// in kernel order, so the statistics — and which error is reported —
    /// are identical to a serial run. Set `DISTVLIW_THREADS=1` to force a
    /// serial run. Per-kernel cost is dominated by the simulator's dense
    /// event-queue engine (see `docs/sim.md`), so the fan-out scales with
    /// suite size rather than with one slow kernel.
    ///
    /// # Errors
    ///
    /// Returns the first kernel (in suite order) that fails validation or
    /// scheduling.
    pub fn run_suite(
        &self,
        suite: &Suite,
        solution: Solution,
        heuristic: Heuristic,
    ) -> Result<SuiteStats, PipelineError> {
        let machine = self.machine.clone().with_interleave(suite.interleave_bytes);
        let runs = par::par_map(&suite.kernels, |kernel| {
            self.run_kernel_on(&machine, kernel, solution, heuristic)
        });
        Self::merge_runs(&suite.name, runs)
    }

    /// Folds per-kernel results (in kernel order) into suite statistics,
    /// reporting the first error. Shared by [`Pipeline::run_suite`] and
    /// [`Pipeline::run_matrix`] so both merge identically.
    fn merge_runs(
        name: &str,
        runs: Vec<Result<KernelRun, PipelineError>>,
    ) -> Result<SuiteStats, PipelineError> {
        let mut kernels = Vec::with_capacity(runs.len());
        let mut total = SimStats::default();
        let mut cluster = ClusterUsage::default();
        let mut sched = SchedTotals::default();
        for run in runs {
            let run = run?;
            total += run.stats;
            cluster += &run.cluster;
            sched.absorb(&run.sched);
            kernels.push(run);
        }
        Ok(SuiteStats {
            name: name.to_string(),
            kernels,
            total,
            cluster,
            sched,
        })
    }

    /// Runs a whole experiment grid — every `(suite, solution, heuristic)`
    /// combination — with the combinations themselves fanned out in
    /// parallel (each cell runs its kernels serially to avoid
    /// oversubscribing the worker pool). Results come back in input
    /// order.
    ///
    /// # Errors
    ///
    /// Each cell reports its own pipeline failure independently.
    pub fn run_matrix(
        &self,
        suites: &[Suite],
        solutions: &[Solution],
        heuristics: &[Heuristic],
    ) -> Vec<MatrixCell> {
        let mut cells: Vec<(usize, Solution, Heuristic)> = Vec::new();
        for (i, _) in suites.iter().enumerate() {
            for &solution in solutions {
                for &heuristic in heuristics {
                    cells.push((i, solution, heuristic));
                }
            }
        }
        par::par_map(&cells, |&(i, solution, heuristic)| {
            let suite = &suites[i];
            let machine = self.machine.clone().with_interleave(suite.interleave_bytes);
            // Each cell schedules against its own fresh II-seed store:
            // cells run concurrently, and two cells can legitimately
            // share a seed key (Free and MDC coincide on chainless
            // kernels), which would otherwise make the surfaced search
            // telemetry depend on thread timing. Schedules are
            // deterministic either way; this keeps the *effort* numbers
            // per cell reproducible and equal to a cold `run_suite`.
            let cell = self.detached();
            let mut runs = Vec::with_capacity(suite.kernels.len());
            for kernel in &suite.kernels {
                let run = cell.run_kernel_on(&machine, kernel, solution, heuristic);
                let failed = run.is_err();
                runs.push(run);
                if failed {
                    break;
                }
            }
            MatrixCell {
                suite: suite.name.clone(),
                solution,
                heuristic,
                stats: Self::merge_runs(&suite.name, runs),
            }
        })
    }

    /// Compiles and simulates a single kernel with the pipeline's machine
    /// (using its configured interleave).
    ///
    /// # Errors
    ///
    /// Returns the kernel's validation or scheduling failure.
    pub fn run_kernel(
        &self,
        kernel: &LoopKernel,
        solution: Solution,
        heuristic: Heuristic,
    ) -> Result<KernelRun, PipelineError> {
        self.run_kernel_on(&self.machine, kernel, solution, heuristic)
    }

    fn run_kernel_on(
        &self,
        machine: &MachineConfig,
        kernel: &LoopKernel,
        solution: Solution,
        heuristic: Heuristic,
    ) -> Result<KernelRun, PipelineError> {
        // The hybrid works loop by loop: compile and estimate both
        // solutions, keep the cheaper (paper Section 6; the estimate is
        // our cycle-level model, standing in for the paper's compile-time
        // cost model).
        if solution == Solution::Hybrid {
            let mdc = self.run_kernel_on(machine, kernel, Solution::Mdc, heuristic)?;
            let ddgt = self.run_kernel_on(machine, kernel, Solution::Ddgt, heuristic)?;
            return Ok(if mdc.stats.total_cycles() <= ddgt.stats.total_cycles() {
                mdc
            } else {
                ddgt
            });
        }

        let artifact = self.compile_kernel_on(machine, kernel, solution, heuristic)?;
        Ok(self.simulate_kernel_artifact(machine, &artifact))
    }

    /// The compile phase for one kernel: validation, optional
    /// specialization, the profile and coherence passes, and the modulo
    /// schedule. `solution` must be concrete ([`Solution::Hybrid`] is a
    /// selection over MDC and DDGT runs, not a compilation).
    fn compile_kernel_on(
        &self,
        machine: &MachineConfig,
        kernel: &LoopKernel,
        solution: Solution,
        heuristic: Heuristic,
    ) -> Result<KernelArtifact, PipelineError> {
        debug_assert!(solution != Solution::Hybrid, "hybrid is not compiled");
        let mut span = distvliw_obs::Span::enter("compile");
        span.field_str("kernel", kernel.name.clone());
        kernel.validate().map_err(|e| PipelineError::Kernel {
            kernel: kernel.name.clone(),
            error: e.to_string(),
        })?;

        // Optional code specialization (paper Section 6).
        let mut kernel = if self.options.specialize {
            specialize_kernel(kernel).0
        } else {
            kernel.clone()
        };

        // Profile pass: preferred clusters under the profile input.
        let prefs = preferred_clusters(&kernel, machine.n_clusters, |addr| {
            machine.home_cluster(addr)
        });

        // Coherence pass.
        let constraints = match solution {
            Solution::Free => SchedConstraints::none(),
            Solution::Mdc => {
                let chains = find_chains(&kernel.ddg);
                let pref_arg = (heuristic == Heuristic::PrefClus).then_some(&prefs);
                SchedConstraints::for_mdc(&chains, &kernel.ddg, pref_arg, machine.n_clusters)
            }
            Solution::Ddgt => {
                let report = transform(&mut kernel.ddg, machine.n_clusters);
                SchedConstraints::for_ddgt(&report)
            }
            Solution::Hybrid => unreachable!("hybrid is not compiled"),
        };

        // Cluster-aware modulo scheduling, seeded with the II a prior
        // run of this exact configuration achieved (if any) and feeding
        // the achieved II back for the next one.
        let key = seed_key(
            machine,
            &kernel.ddg,
            &constraints,
            &prefs,
            heuristic,
            self.options.relax_latencies,
        );
        let (schedule, sched): (Schedule, SchedStats) = ModuloScheduler::new(machine)
            .with_latency_relaxation(self.options.relax_latencies)
            .with_ii_seed(self.seeds.get(key))
            .schedule_with_stats(&kernel.ddg, &constraints, &prefs, heuristic)
            .map_err(|error| PipelineError::Schedule {
                kernel: kernel.name.clone(),
                error,
            })?;
        self.seeds.record(key, schedule.ii);
        span.field_u64("ii", u64::from(schedule.ii));

        // Translation validation: re-verify the schedule from first
        // principles with the independent checker. Debug builds always
        // check (every test run doubles as a checker run); release
        // builds check when `options.check` is set.
        if self.options.check || cfg!(debug_assertions) {
            let report = distvliw_check::check_schedule(
                &kernel.ddg,
                machine,
                &constraints,
                heuristic,
                &schedule,
            );
            distvliw_obs::global()
                .counter(
                    "check_violations_total",
                    "schedule-checker violations found by the pipeline hook",
                )
                .add(report.len() as u64);
            if !report.is_clean() {
                debug_assert!(false, "checker rejected `{}`: {report}", kernel.name);
                return Err(PipelineError::Check {
                    kernel: kernel.name.clone(),
                    report: report.to_string(),
                });
            }
        }

        Ok(KernelArtifact {
            kernel,
            schedule,
            sched,
        })
    }

    /// The sim phase for one compiled kernel: cycle-level simulation of
    /// the artifact's schedule on `machine`, which may differ from the
    /// compile machine in simulation-only fields (memory-bus count,
    /// cache geometry, Attraction Buffers — anything outside
    /// [`MachineConfig::sched_canonical_bytes`]).
    fn simulate_kernel_artifact(
        &self,
        machine: &MachineConfig,
        artifact: &KernelArtifact,
    ) -> KernelRun {
        let mut span = distvliw_obs::Span::enter("sim");
        span.field_str("kernel", artifact.kernel.name.clone());
        let (stats, cluster) = simulate_kernel_detailed(
            machine,
            &artifact.kernel,
            &artifact.schedule,
            self.options.sim,
        );
        KernelRun {
            name: artifact.kernel.name.clone(),
            ii: artifact.schedule.ii,
            span: artifact.schedule.span,
            static_comm_ops: artifact.schedule.comm_ops(),
            sched: artifact.sched,
            stats,
            cluster,
        }
    }

    /// The compile phase of [`Pipeline::run_suite`]: schedules every
    /// kernel of `suite` under the given concrete solution and
    /// heuristic (kernels compile concurrently, artifacts come back in
    /// suite order) without simulating anything. The artifact replays
    /// via [`Pipeline::simulate_artifact`] on any machine whose
    /// scheduler projection ([`MachineConfig::sched_canonical_bytes`],
    /// after applying the suite's interleave) equals this pipeline's —
    /// the sweep runner uses this to compile once per projection and
    /// simulate per bus point.
    ///
    /// # Panics
    ///
    /// Panics on [`Solution::Hybrid`]: the hybrid is a per-loop
    /// *selection* over the MDC and DDGT runs (see [`derive_hybrid`]),
    /// not a compilation.
    ///
    /// # Errors
    ///
    /// Returns the first kernel (in suite order) that fails validation
    /// or scheduling.
    pub fn compile_suite(
        &self,
        suite: &Suite,
        solution: Solution,
        heuristic: Heuristic,
    ) -> Result<SuiteArtifact, PipelineError> {
        assert!(
            solution != Solution::Hybrid,
            "hybrid is derived from MDC and DDGT runs, not compiled"
        );
        let machine = self.machine.clone().with_interleave(suite.interleave_bytes);
        let compiled = par::par_map(&suite.kernels, |kernel| {
            self.compile_kernel_on(&machine, kernel, solution, heuristic)
        });
        let mut kernels = Vec::with_capacity(compiled.len());
        for artifact in compiled {
            kernels.push(artifact?);
        }
        Ok(SuiteArtifact {
            name: suite.name.clone(),
            interleave_bytes: suite.interleave_bytes,
            kernels,
        })
    }

    /// The sim phase of [`Pipeline::run_suite`]: replays a compiled
    /// suite artifact on this pipeline's machine (with the artifact's
    /// interleave applied) and merges the per-kernel results exactly
    /// like `run_suite` — `compile_suite` + `simulate_artifact` on the
    /// same machine is byte-identical to one `run_suite` call.
    #[must_use]
    pub fn simulate_artifact(&self, artifact: &SuiteArtifact) -> SuiteStats {
        let machine = self
            .machine
            .clone()
            .with_interleave(artifact.interleave_bytes);
        let runs = par::par_map(&artifact.kernels, |kernel| {
            Ok(self.simulate_kernel_artifact(&machine, kernel))
        });
        Self::merge_runs(&artifact.name, runs).expect("simulation cannot fail")
    }
}

/// Derives the per-loop hybrid (paper Section 6) from the pure MDC and
/// DDGT runs of the same suite: kernel by kernel, the cheaper run wins
/// (ties go to MDC, matching `Pipeline::run_suite(Hybrid)`), and the
/// winners fold into suite statistics exactly like a direct hybrid run.
/// Shared by the factored sweep and the serving layer's `GET /sweep` so
/// neither re-compiles or re-simulates anything for the hybrid rows.
///
/// # Panics
///
/// Panics if the two runs disagree on kernel count (they must come from
/// the same suite).
#[must_use]
pub fn derive_hybrid(mdc: &SuiteStats, ddgt: &SuiteStats) -> SuiteStats {
    assert_eq!(
        mdc.kernels.len(),
        ddgt.kernels.len(),
        "hybrid derivation needs runs of the same suite"
    );
    let winners = mdc
        .kernels
        .iter()
        .zip(&ddgt.kernels)
        .map(|(m, d)| {
            Ok(if m.stats.total_cycles() <= d.stats.total_cycles() {
                m.clone()
            } else {
                d.clone()
            })
        })
        .collect();
    Pipeline::merge_runs(&mdc.name, winners).expect("winners cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    #[test]
    fn pipeline_runs_a_benchmark_suite() {
        let suite = distvliw_mediabench::suite("gsmdec").unwrap();
        let p = Pipeline::new(machine());
        let stats = p
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        assert_eq!(stats.kernels.len(), suite.kernels.len());
        assert!(stats.total_cycles() > 0);
        assert!(stats.total.accesses.total() > 0);
        assert_eq!(stats.total.coherence_violations, 0);
    }

    #[test]
    fn all_solutions_and_heuristics_run() {
        let suite = distvliw_mediabench::suite("jpegenc").unwrap();
        let p = Pipeline::new(machine());
        for solution in [Solution::Free, Solution::Mdc, Solution::Ddgt] {
            for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
                let stats = p.run_suite(&suite, solution, heuristic).unwrap();
                assert!(stats.total_cycles() > 0, "{solution}/{heuristic}");
            }
        }
    }

    #[test]
    fn mdc_and_ddgt_are_always_coherent() {
        let suite = distvliw_mediabench::suite("pgpdec").unwrap();
        let p = Pipeline::new(machine());
        for solution in [Solution::Mdc, Solution::Ddgt] {
            for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
                let stats = p.run_suite(&suite, solution, heuristic).unwrap();
                assert_eq!(
                    stats.total.coherence_violations, 0,
                    "{solution}/{heuristic} must be coherent"
                );
            }
        }
    }

    #[test]
    fn specialization_option_changes_chained_benchmarks() {
        let suite = distvliw_mediabench::suite("rasta").unwrap();
        let base = Pipeline::new(machine());
        let spec = Pipeline::new(machine()).with_options(PipelineOptions {
            specialize: true,
            ..PipelineOptions::default()
        });
        // With MinComs the scheduler can spread the now-independent
        // segments over clusters: specialization removes the
        // cross-segment links, shrinking what MDC must serialize and the
        // chained loop's II with it. (Under PrefClus the segments can
        // still tie-break into one cluster, so MinComs is the clean
        // observable.)
        let plain = base
            .run_suite(&suite, Solution::Mdc, Heuristic::MinComs)
            .unwrap();
        let specialized = spec
            .run_suite(&suite, Solution::Mdc, Heuristic::MinComs)
            .unwrap();
        let ii_plain = plain.kernels[0].ii;
        let ii_spec = specialized.kernels[0].ii;
        assert!(ii_spec <= ii_plain, "II {ii_spec} vs {ii_plain}");
    }

    #[test]
    fn parallel_run_suite_is_deterministic() {
        // Kernel fan-out must not perturb the merged statistics: repeated
        // runs agree exactly, kernel order is preserved.
        let suite = distvliw_mediabench::suite("epicdec").unwrap();
        let p = Pipeline::new(machine());
        let a = p
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        let b = p
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        assert_eq!(a.total_cycles(), b.total_cycles());
        assert_eq!(a.kernels.len(), b.kernels.len());
        for (x, y) in a.kernels.iter().zip(&b.kernels) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.ii, y.ii);
            assert_eq!(x.stats.total_cycles(), y.stats.total_cycles());
        }
        let names: Vec<&str> = a.kernels.iter().map(|k| k.name.as_str()).collect();
        let want: Vec<&str> = suite.kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(names, want);
    }

    #[test]
    fn run_matrix_matches_run_suite() {
        let suites = vec![
            distvliw_mediabench::suite("gsmdec").unwrap(),
            distvliw_mediabench::suite("jpegenc").unwrap(),
        ];
        let p = Pipeline::new(machine());
        let cells = p.run_matrix(
            &suites,
            &[Solution::Mdc, Solution::Ddgt],
            &[Heuristic::PrefClus],
        );
        assert_eq!(cells.len(), 4);
        // Cells come back in (suite, solution, heuristic) input order.
        assert_eq!(cells[0].suite, "gsmdec");
        assert_eq!(cells[3].suite, "jpegenc");
        for cell in cells {
            let suite = suites.iter().find(|s| s.name == cell.suite).unwrap();
            let direct = p.run_suite(suite, cell.solution, cell.heuristic).unwrap();
            let got = cell.stats.expect("cell runs");
            assert_eq!(got.total_cycles(), direct.total_cycles(), "{}", cell.suite);
            assert_eq!(got.kernels.len(), direct.kernels.len());
        }
    }

    #[test]
    fn warm_seed_store_reproduces_cold_run() {
        // A pipeline handed another run's seed store must produce
        // byte-identical schedules and simulations — only the search
        // *effort* may differ (fewer IIs tried, nonzero seeded counts).
        // This is the invariant that makes persisting the store safe.
        let suite = distvliw_mediabench::suite("gsmdec").unwrap();
        let cold_pipeline = Pipeline::new(machine());
        let cold = cold_pipeline
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        assert!(!cold_pipeline.seed_store().is_empty());

        let warm_pipeline =
            Pipeline::new(machine()).with_seed_store(cold_pipeline.seed_store().clone());
        let warm = warm_pipeline
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        assert_eq!(warm.total, cold.total);
        assert_eq!(warm.cluster, cold.cluster);
        for (w, c) in warm.kernels.iter().zip(&cold.kernels) {
            assert_eq!(w.name, c.name);
            assert_eq!(w.ii, c.ii, "{}", w.name);
            assert_eq!(w.span, c.span, "{}", w.name);
            assert_eq!(w.static_comm_ops, c.static_comm_ops, "{}", w.name);
            assert_eq!(w.stats, c.stats, "{}", w.name);
            assert!(
                w.sched.iis_tried <= c.sched.iis_tried,
                "{}: a warm search never tries more IIs",
                w.name
            );
        }
        // The warm run re-recorded identical seeds: the store is stable.
        assert_eq!(
            warm_pipeline.seed_store().snapshot(),
            cold_pipeline.seed_store().snapshot()
        );
    }

    #[test]
    fn seeds_shared_across_sim_only_machine_variants() {
        // The seed key embeds the machine's *scheduler projection*
        // (`sched_canonical_bytes`), not the full canonical encoding, so
        // a machine differing only in a simulation field — memory-bus
        // count here — resumes the II search from the other variant's
        // seeds. epicenc/MDC schedules its chained kernel well above the
        // MII, which makes the resumption observable as a nonzero
        // `seeded_kernels`.
        let suite = distvliw_mediabench::suite("epicenc").unwrap();
        let cold_pipeline = Pipeline::new(machine());
        let cold = cold_pipeline
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        assert_eq!(cold.sched.seeded_kernels, 0, "cold run has no seeds");
        assert!(
            cold.kernels.iter().any(|k| k.sched.ii > k.sched.mii + 2),
            "a kernel scheduling above MII+slack is what makes seeding observable"
        );

        let mut variant = machine();
        variant.mem_buses.count += 1;
        let warm_pipeline =
            Pipeline::new(variant).with_seed_store(cold_pipeline.seed_store().clone());
        let warm = warm_pipeline
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        assert!(
            warm.sched.seeded_kernels > 0,
            "the bus variant must resume from the persisted-style seeds"
        );
        // Seeding changes search effort only: the schedules themselves
        // are identical (the simulation differs — more buses).
        for (w, c) in warm.kernels.iter().zip(&cold.kernels) {
            assert_eq!(w.ii, c.ii, "{}", w.name);
            assert_eq!(w.span, c.span, "{}", w.name);
            assert_eq!(w.static_comm_ops, c.static_comm_ops, "{}", w.name);
        }
    }

    #[test]
    fn seed_store_snapshot_absorb_round_trips() {
        let store = IiSeedStore::new();
        store.record([1; 16], 10);
        store.record([2; 16], 20);
        store.record([1; 16], 8); // update wins
        let snap = store.snapshot();
        assert_eq!(snap, vec![([1; 16], 8), ([2; 16], 20)]);

        let restored = IiSeedStore::new();
        restored.absorb(&snap);
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.len(), 2);
        // Absorbed entries are durable already: nothing is dirty.
        assert!(restored.drain_dirty().is_empty());

        // Dirty tracking: only changes since the last drain, last value.
        let dirty = store.drain_dirty();
        assert_eq!(dirty.len(), 3, "three records (one key twice)");
        assert!(dirty.contains(&([1; 16], 8)));
        assert!(store.drain_dirty().is_empty());
        store.record([2; 16], 20); // same value: not dirty
        assert!(store.drain_dirty().is_empty());
        store.record([2; 16], 19);
        assert_eq!(store.drain_dirty(), vec![([2; 16], 19)]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Solution::Free.to_string(), "Free");
        assert_eq!(Solution::Mdc.to_string(), "MDC");
        assert_eq!(Solution::Ddgt.to_string(), "DDGT");
        assert_eq!(Solution::Hybrid.to_string(), "Hybrid");
    }

    #[test]
    fn hybrid_picks_the_best_solution_per_loop() {
        // Paper Section 6: the hybrid estimates both solutions per loop
        // and keeps the winner, so it can never lose to either.
        let p = Pipeline::new(machine());
        for name in ["epicdec", "pgpenc", "gsmdec"] {
            let suite = distvliw_mediabench::suite(name).unwrap();
            for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
                let mdc = p.run_suite(&suite, Solution::Mdc, heuristic).unwrap();
                let ddgt = p.run_suite(&suite, Solution::Ddgt, heuristic).unwrap();
                let hybrid = p.run_suite(&suite, Solution::Hybrid, heuristic).unwrap();
                assert!(
                    hybrid.total_cycles() <= mdc.total_cycles().min(ddgt.total_cycles()),
                    "{name}/{heuristic}: hybrid {} vs MDC {} / DDGT {}",
                    hybrid.total_cycles(),
                    mdc.total_cycles(),
                    ddgt.total_cycles()
                );
                assert_eq!(hybrid.total.coherence_violations, 0);
            }
        }
    }
}
