//! Plain-text rendering of experiment results, shaped like the paper's
//! tables and figures.

use std::fmt::Write as _;

use distvliw_arch::AccessClass;
use distvliw_sim::ClusterUsage;

use crate::experiments::{
    exec_amean, fig6_amean, CaseStudy, ExecRow, Fig6Row, NobalRow, SweepReuse, SweepRow, Table3Row,
    Table4Row, Table5Row, SWEEP_SOLUTIONS,
};

fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Renders Figure 6 (memory access classification, PrefClus).
#[must_use]
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6: classification of memory accesses (PrefClus)\n\
         columns per solution: local-hit / remote-hit / local-miss / remote-miss / combined"
    );
    let _ = writeln!(
        out,
        "{:<10} | {:^41} | {:^41} | {:^41}",
        "benchmark", "Free", "MDC", "DDGT"
    );
    let all = AccessClass::ALL;
    let mut rows_with_mean: Vec<Fig6Row> = rows.to_vec();
    rows_with_mean.push(fig6_amean(rows));
    for row in &rows_with_mean {
        let fmt5 = |b: &crate::experiments::AccessBreakdown| {
            all.iter()
                .map(|c| pct(b.fractions[c.index()]))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let _ = writeln!(
            out,
            "{:<10} | {} | {} | {}",
            row.benchmark,
            fmt5(&row.free),
            fmt5(&row.mdc),
            fmt5(&row.ddgt)
        );
    }
    out
}

/// Renders Figure 7 / Figure 9 (normalized execution time).
#[must_use]
pub fn render_exec(rows: &[ExecRow], title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{title}\ncolumns: compute+stall = total (normalized to Free/MinComs)"
    );
    let _ = writeln!(
        out,
        "{:<10} | {:^20} | {:^20} | {:^20} | {:^20}",
        "benchmark", "MDC(PrefClus)", "MDC(MinComs)", "DDGT(PrefClus)", "DDGT(MinComs)"
    );
    let mut rows_with_mean: Vec<ExecRow> = rows.to_vec();
    rows_with_mean.push(exec_amean(rows));
    for row in &rows_with_mean {
        let fmt = |b: &crate::experiments::NormalizedBar| {
            format!("{:.2}+{:.2}={:.2}", b.compute, b.stall, b.total())
        };
        let _ = writeln!(
            out,
            "{:<10} | {:^20} | {:^20} | {:^20} | {:^20}",
            row.benchmark,
            fmt(&row.mdc_pref),
            fmt(&row.mdc_min),
            fmt(&row.ddgt_pref),
            fmt(&row.ddgt_min)
        );
    }
    out
}

/// Renders Table 3 (CMR / CAR), with the paper's values alongside.
#[must_use]
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: memory dependent chain ratios");
    let _ = writeln!(
        out,
        "{:<10} | {:>9} {:>9} | {:>9} {:>9}",
        "benchmark", "CMR", "CAR", "paper CMR", "paper CAR"
    );
    for row in rows {
        let (pc, pa) = row
            .paper
            .map_or(("-".to_string(), "-".to_string()), |(c, a)| {
                (format!("{c:.2}"), format!("{a:.2}"))
            });
        let _ = writeln!(
            out,
            "{:<10} | {:>9.2} {:>9.2} | {:>9} {:>9}",
            row.benchmark, row.stats.cmr, row.stats.car, pc, pa
        );
    }
    out
}

/// Renders Table 4 (Δ communication ops + selected-loop speedups).
#[must_use]
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4: analyzing the DDGT solution (PrefClus)");
    let _ = writeln!(
        out,
        "{:<10} | {:>10} | {:>22}",
        "benchmark", "Δ com.ops", "speedup selected loops"
    );
    for row in rows {
        let speedup = row
            .selected_speedup
            .map_or("-".to_string(), |s| format!("{:+.1}%", s * 100.0));
        let _ = writeln!(
            out,
            "{:<10} | {:>10.2} | {:>22}",
            row.benchmark, row.comm_ratio, speedup
        );
    }
    out
}

/// Renders Table 5 (code specialization).
#[must_use]
pub fn render_table5(rows: &[Table5Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 5: chain restrictions before/after code specialization"
    );
    let _ = writeln!(
        out,
        "{:<10} | {:>8} {:>8} {:>8} {:>8} | paper: old/new",
        "benchmark", "old CMR", "old CAR", "new CMR", "new CAR"
    );
    for row in rows {
        let (poc, poa, pnc, pna) = row.paper;
        let _ = writeln!(
            out,
            "{:<10} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {poc:.2}/{poa:.2} -> {pnc:.2}/{pna:.2}",
            row.benchmark, row.old.cmr, row.old.car, row.new.cmr, row.new.car
        );
    }
    out
}

/// Renders a NOBAL study table.
#[must_use]
pub fn render_nobal(rows: &[NobalRow], title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<10} | {:>12} | {:>12} | {:>14}",
        "benchmark", "best MDC", "DDGT(Pref)", "DDGT speedup"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<10} | {:>12} | {:>12} | {:>13.1}%",
            row.benchmark,
            row.best_mdc,
            row.ddgt_pref,
            row.ddgt_speedup * 100.0
        );
    }
    out
}

/// Renders a per-cluster usage table with an **imbalance** column: for
/// every labelled run, the share of memory accesses each cluster
/// issued, the busiest-cluster-over-mean imbalance ratio
/// ([`ClusterUsage::imbalance`]), the per-cluster violation split and
/// the bus / next-level grant pressure.
#[must_use]
pub fn render_cluster_imbalance(title: &str, entries: &[(String, ClusterUsage)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{title}\ncolumns: per-cluster access shares | imbalance (max/mean) | violations by cluster | bus grants | L2 grants"
    );
    let clusters = entries
        .iter()
        .map(|(_, u)| u.accesses.len())
        .max()
        .unwrap_or(0);
    for (label, usage) in entries {
        let total: u64 = (0..clusters).map(|c| usage.accesses_of(c)).sum();
        let shares = (0..clusters)
            .map(|c| {
                if total == 0 {
                    "  0.0%".to_string()
                } else {
                    pct(usage.accesses_of(c) as f64 / total as f64)
                }
            })
            .collect::<Vec<_>>()
            .join(" ");
        let viols = (0..clusters)
            .map(|c| usage.violations.get(c).to_string())
            .collect::<Vec<_>>()
            .join("/");
        let _ = writeln!(
            out,
            "{:<24} | {} | {:>5.2} | {} | {:>10} | {:>10}",
            label,
            shares,
            usage.imbalance(),
            viols,
            usage.mem_bus_grants,
            usage.next_level_grants
        );
    }
    out
}

/// Renders a sensitivity sweep as the cluster-count × bus grid: one
/// line per grid point with, for each of the four solutions, the total
/// cycles, the per-cluster **imbalance** ratio (busiest cluster over
/// mean — the headline number: does the distributed cache stay balanced
/// as the machine scales?) and the memory-bus occupancy. The trailing
/// columns report the Free baseline's coherence violations (which only
/// the unrestricted schedule incurs) and the scheduler-ejection count
/// over the grid point's four solutions — the backtracking scheduler's
/// effort trajectory.
///
/// Expects rows in the `(cluster count, bus point, solution)` nesting
/// order [`crate::experiments::sweep`] produces.
#[must_use]
pub fn render_sweep(rows: &[SweepRow], title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{title}\ncolumns per solution: total cycles | imbalance (max/mean) | bus occupancy"
    );
    let mut header = format!("{:>8} {:>9} |", "clusters", "buses");
    for solution in SWEEP_SOLUTIONS {
        let _ = write!(header, " {:^28} |", solution.to_string());
    }
    let _ = writeln!(out, "{header} {:>10} {:>9}", "Free viol.", "ejections");
    for point in rows.chunks(SWEEP_SOLUTIONS.len()) {
        let first = &point[0];
        let _ = write!(
            out,
            "{:>8} {:>9} |",
            first.n_clusters,
            format!("{}@{}", first.mem_buses.count, first.mem_buses.latency)
        );
        for row in point {
            let _ = write!(
                out,
                " {:>12} {:>6.2} {:>7.1}% |",
                row.total_cycles,
                row.imbalance(),
                row.bus_occupancy() * 100.0
            );
        }
        let ejections: u64 = point.iter().map(|r| r.sched.ejections).sum();
        let _ = writeln!(out, " {:>10} {:>9}", first.violations, ejections);
    }
    out
}

/// Renders the factored sweep's schedule-reuse counters as a one-line
/// footer for the sweep report: how many suite schedules were compiled,
/// how many cells replayed an existing artifact, and how many compiles
/// were sched-axis fallbacks (a sim axis — bus latency — that is
/// scheduler-visible forced a recompile instead of a reuse). Surfacing
/// the fallback count here is what keeps the factored runner honest: it
/// can never silently degrade to per-cell recompiles.
#[must_use]
pub fn render_sweep_reuse(reuse: &SweepReuse) -> String {
    format!(
        "schedule reuse: {} compiled, {} cells reused, {} sched-axis fallback recompiles\n",
        reuse.schedules_compiled, reuse.schedules_reused, reuse.sched_axis_recompiles
    )
}

/// Renders a case study.
#[must_use]
pub fn render_case_study(cs: &CaseStudy) -> String {
    format!(
        "case study {}:\n  MDC : compute={} stall={} local-hit={:.1}%\n  \
         DDGT: compute={} stall={} local-hit={:.1}%\n  DDGT speedup over MDC: {:+.1}%\n",
        cs.name,
        cs.mdc.0,
        cs.mdc.1,
        cs.mdc_local * 100.0,
        cs.ddgt.0,
        cs.ddgt.1,
        cs.ddgt_local * 100.0,
        cs.speedup * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{AccessBreakdown, NormalizedBar};
    use distvliw_coherence::ChainStats;

    #[test]
    fn fig6_render_contains_headers_and_amean() {
        let rows = vec![Fig6Row {
            benchmark: "toy".into(),
            free: AccessBreakdown {
                fractions: [0.5, 0.2, 0.1, 0.1, 0.1],
            },
            mdc: AccessBreakdown::default(),
            ddgt: AccessBreakdown::default(),
        }];
        let text = render_fig6(&rows);
        assert!(text.contains("Figure 6"));
        assert!(text.contains("toy"));
        assert!(text.contains("AMEAN"));
        assert!(text.contains("50.0%"));
    }

    #[test]
    fn exec_render_totals() {
        let rows = vec![ExecRow {
            benchmark: "toy".into(),
            mdc_pref: NormalizedBar {
                compute: 0.8,
                stall: 0.2,
            },
            mdc_min: NormalizedBar {
                compute: 0.7,
                stall: 0.2,
            },
            ddgt_pref: NormalizedBar {
                compute: 0.9,
                stall: 0.1,
            },
            ddgt_min: NormalizedBar {
                compute: 0.9,
                stall: 0.2,
            },
        }];
        let text = render_exec(&rows, "Figure 7");
        assert!(text.contains("Figure 7"));
        assert!(text.contains("0.80+0.20=1.00"));
    }

    #[test]
    fn table_renders() {
        let t3 = render_table3(&[Table3Row {
            benchmark: "toy".into(),
            stats: ChainStats {
                cmr: 0.5,
                car: 0.25,
            },
            paper: Some((0.52, 0.26)),
        }]);
        assert!(t3.contains("0.50"));
        assert!(t3.contains("0.52"));

        let t4 = render_table4(&[Table4Row {
            benchmark: "toy".into(),
            comm_ratio: 1.8,
            selected_speedup: None,
        }]);
        assert!(t4.contains("1.80"));
        assert!(t4.contains('-'));

        let t5 = render_table5(&[Table5Row {
            benchmark: "toy".into(),
            old: ChainStats { cmr: 0.6, car: 0.2 },
            new: ChainStats {
                cmr: 0.2,
                car: 0.06,
            },
            paper: (0.64, 0.22, 0.20, 0.06),
        }]);
        assert!(t5.contains("0.60"));

        let nb = render_nobal(
            &[NobalRow {
                benchmark: "toy".into(),
                best_mdc: 1000,
                ddgt_pref: 900,
                ddgt_speedup: 0.111,
            }],
            "NOBAL+REG",
        );
        assert!(nb.contains("NOBAL+REG"));
        assert!(nb.contains("11.1%"));
    }

    #[test]
    fn cluster_imbalance_render() {
        use distvliw_sim::AccessCounts;
        let mut usage = ClusterUsage {
            accesses: vec![AccessCounts::new(); 4],
            ..ClusterUsage::default()
        };
        for _ in 0..9 {
            usage.accesses[0].record(distvliw_arch::AccessClass::LocalHit);
        }
        usage.accesses[1].record(distvliw_arch::AccessClass::RemoteHit);
        usage.violations.add(2, 7);
        usage.mem_bus_grants = 1234;
        usage.next_level_grants = 56;
        let text =
            render_cluster_imbalance("imbalance", &[("toy MDC(PrefClus)".to_string(), usage)]);
        assert!(text.contains("imbalance"));
        assert!(text.contains("90.0%"));
        assert!(text.contains("0/0/7/0"));
        assert!(text.contains("1234"));
        // max 9 over mean 2.5 → 3.6.
        assert!(text.contains("3.60"));
    }

    #[test]
    fn sweep_render_groups_grid_points() {
        use crate::experiments::sweep_row;
        use crate::SuiteStats;
        use distvliw_arch::BusConfig;
        use distvliw_sim::SimStats;

        let bus = BusConfig {
            count: 4,
            latency: 2,
        };
        let stats = SuiteStats {
            name: "toy".into(),
            kernels: vec![],
            total: SimStats {
                compute_cycles: 900,
                stall_cycles: 100,
                coherence_violations: 7,
                bus_busy_cycles: 400,
                bus_drain_cycles: 1000,
                ..SimStats::default()
            },
            cluster: ClusterUsage::default(),
            sched: crate::SchedTotals {
                ejections: 3,
                ..crate::SchedTotals::default()
            },
        };
        let rows: Vec<SweepRow> = SWEEP_SOLUTIONS
            .iter()
            .map(|&s| sweep_row(8, bus, s, &[&stats]))
            .collect();
        assert_eq!(rows[0].total_cycles, 1000);
        assert_eq!(rows[0].bus_drain_cycles, 1000);
        assert!((rows[0].bus_occupancy() - 0.1).abs() < 1e-12);
        let text = render_sweep(&rows, "Sweep");
        assert!(text.contains("Sweep"));
        assert!(text.contains("4@2"));
        assert!(text.contains("Hybrid"));
        assert!(text.contains("10.0%"));
        // One grid line + title, legend and column-header lines.
        assert_eq!(text.lines().count(), 4);
        // Trailing columns: 7 Free violations, then 4 × 3 ejections.
        let last = text.lines().last().unwrap().trim_end();
        assert!(last.ends_with("7        12"), "{last}");
        assert!(text.contains("ejections"));
    }

    #[test]
    fn case_study_render() {
        let text = render_case_study(&CaseStudy {
            name: "gsmdec.chained".into(),
            mdc: (1_280_000, 701_000),
            ddgt: (1_280_000, 0),
            mdc_local: 0.65,
            ddgt_local: 0.97,
            speedup: 0.36,
        });
        assert!(text.contains("gsmdec.chained"));
        assert!(text.contains("+36.0%"));
    }
}
