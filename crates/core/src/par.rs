//! Minimal scoped-thread fan-out for the experiment pipeline.
//!
//! The build environment has no network access, so `rayon` is not
//! available; this module provides the one primitive the pipeline needs —
//! an order-preserving parallel map over a slice — on plain
//! `std::thread::scope` with an atomic work index. Results come back in
//! input order regardless of completion order, so callers that fold them
//! sequentially stay deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Upper bound on worker threads; set `DISTVLIW_THREADS` to override the
/// detected parallelism (e.g. `DISTVLIW_THREADS=1` forces serial runs for
/// timing comparisons).
fn worker_count(items: usize) -> usize {
    let detected = std::env::var("DISTVLIW_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    detected.min(items)
}

/// Applies `f` to every item of `items` concurrently, returning the
/// results in input order. Falls back to a serial loop for a single item
/// or a single worker.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    // Worker threads inherit the caller's trace context so spans opened
    // inside `f` (compile, sim, sweep cells) stay attached to the
    // requesting trace; this is the single propagation point for every
    // fan-out in the workspace.
    let ctx = distvliw_obs::trace::current_ctx();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    // The slot unwrap happens *after* the scope closes: if a worker
    // panicked, `scope` re-raises that worker's panic (with its original
    // message) instead of this function masking it with a missing-slot
    // panic of its own.
    let slots = std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            let ctx = ctx.clone();
            scope.spawn(move || {
                distvliw_obs::trace::with_ctx(ctx, || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    if tx.send((i, f(item))).is_err() {
                        break;
                    }
                });
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker produced every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_work() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_still_orders() {
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(&items, |&x| {
            // Early items take longest: exercises out-of-order completion.
            std::thread::sleep(std::time::Duration::from_micros(320 - x * 10));
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn worker_panic_message_propagates() {
        let items = vec![1u32, 2, 3, 4];
        let result = std::panic::catch_unwind(|| {
            par_map(&items, |&x| {
                assert!(x != 3, "kernel exploded");
                x
            })
        });
        let err = result.unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| err.downcast_ref::<&str>().copied())
            .unwrap_or("");
        assert!(msg.contains("kernel exploded"), "masked panic: {msg:?}");
    }

    #[test]
    fn errors_pass_through_as_values() {
        let items = vec![1u32, 0, 3];
        let out = par_map(&items, |&x| if x == 0 { Err("zero") } else { Ok(x) });
        assert_eq!(out, vec![Ok(1), Err("zero"), Ok(3)]);
    }
}
