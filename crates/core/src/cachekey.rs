//! Content-addressed cache keys for experiment results.
//!
//! The serving layer memoizes one *cell* of an experiment grid — the
//! result of running a benchmark suite under one `(machine, options,
//! solution, heuristic)` combination — keyed by a canonical byte
//! encoding of everything the result depends on. Keys carry the full
//! encoding (lookups compare the bytes) with one deliberate exception:
//! the suite's graph/stream content — which runs to ~100 KB — enters as
//! a 128-bit [`digest_fingerprint`] of its [`suite_digest`], so machine
//! and option collisions are impossible and suite-content collisions
//! require two independent 64-bit FNV halves to collide at once.

use distvliw_arch::MachineConfig;
use distvliw_ir::{AddressStream, DepKind, OpKind, Suite};
use distvliw_sched::Heuristic;

use crate::pipeline::{PipelineOptions, Solution};

/// Version of the [`cell_key`] encoding; bump when the encoded field set
/// changes. Like [`distvliw_arch::CANONICAL_BYTES_VERSION`], this is
/// part of the durable-state era: the serving layer's on-disk stores
/// hold raw cell keys, so a format change here must invalidate them
/// (see `docs/persistence.md`) rather than let old keys alias new ones.
pub const CELL_KEY_VERSION: u8 = 3;

/// A content-addressed cache key: the canonical encoding of one
/// experiment cell plus its precomputed 64-bit FNV-1a hash.
///
/// Equality is byte equality; the hash only accelerates map lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    bytes: Vec<u8>,
    hash: u64,
}

impl CacheKey {
    /// Wraps an already-canonical encoding.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        let hash = fnv1a64(&bytes);
        CacheKey { bytes, hash }
    }

    /// The canonical encoding.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The precomputed FNV-1a hash of the encoding.
    #[must_use]
    pub fn hash64(&self) -> u64 {
        self.hash
    }
}

impl std::hash::Hash for CacheKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// 64-bit FNV-1a over `bytes`.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends a length-prefixed string (length prefix keeps adjacent
/// fields from aliasing across boundaries).
fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn op_tag(kind: OpKind) -> u8 {
    match kind {
        OpKind::Load => 0,
        OpKind::Store => 1,
        OpKind::IntAlu => 2,
        OpKind::IntMul => 3,
        OpKind::FpAlu => 4,
        OpKind::FpMul => 5,
        OpKind::Copy => 6,
        OpKind::FakeConsumer => 7,
    }
}

pub(crate) fn dep_tag(kind: DepKind) -> u8 {
    match kind {
        DepKind::RegFlow => 0,
        DepKind::MemFlow => 1,
        DepKind::MemAnti => 2,
        DepKind::MemOut => 3,
        DepKind::Sync => 4,
    }
}

fn push_stream(out: &mut Vec<u8>, stream: &AddressStream) {
    match stream {
        AddressStream::Affine { base, stride } => {
            out.push(0);
            push_u64(out, *base);
            push_u64(out, *stride as u64);
        }
        AddressStream::Indexed(addrs) => {
            out.push(1);
            push_u64(out, addrs.len() as u64);
            for &a in addrs.iter() {
                push_u64(out, a);
            }
        }
    }
}

/// A content digest of `suite`: name, interleave, and the full graph
/// and address-stream content of every kernel (operations, dependence
/// edges with kinds and distances, profile and execution streams). Two
/// suites digest equal **iff** they describe the same workload, so a
/// regenerated suite changes every derived cache key even when its
/// name and graph sizes collide with the old one.
///
/// The digest walks every kernel, so callers that key many cells
/// against a fixed suite set (the serving engine) should compute it
/// once per suite and reuse its fingerprint via
/// [`cell_key_from_fingerprint`].
#[must_use]
pub fn suite_digest(suite: &Suite) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    push_str(&mut out, &suite.name);
    push_u64(&mut out, suite.interleave_bytes);
    push_u64(&mut out, suite.kernels.len() as u64);
    for kernel in &suite.kernels {
        push_str(&mut out, &kernel.name);
        push_u64(&mut out, kernel.trip_count);
        push_u64(&mut out, kernel.invocations);
        let ddg = &kernel.ddg;
        push_u64(&mut out, ddg.node_ids().count() as u64);
        for n in ddg.node_ids() {
            let node = ddg.node(n);
            out.push(op_tag(node.kind));
            push_u64(&mut out, u64::from(ddg.seq(n)));
            match node.mem {
                None => out.push(0xff),
                Some(mem) => {
                    out.push(0);
                    push_u64(&mut out, u64::from(mem.mem.0));
                    push_u64(&mut out, mem.width.bytes());
                }
            }
        }
        push_u64(&mut out, ddg.deps().count() as u64);
        for (_, d) in ddg.deps() {
            push_u64(&mut out, u64::from(d.src.0));
            push_u64(&mut out, u64::from(d.dst.0));
            out.push(dep_tag(d.kind));
            push_u64(&mut out, u64::from(d.distance));
        }
        for image in [&kernel.profile, &kernel.exec] {
            push_u64(&mut out, image.len() as u64);
            for (mem, stream) in image.iter() {
                push_u64(&mut out, u64::from(mem.0));
                push_stream(&mut out, stream);
            }
        }
    }
    out
}

/// A compact 128-bit fingerprint of a [`suite_digest`]: two
/// independent 64-bit FNV-1a passes (standard and alternate offset
/// basis). Digests run to ~100 KB for the Indexed-stream suites, so
/// keys embed this fingerprint instead of the raw digest — computing
/// it once per suite keeps warm-path key derivation O(1) instead of
/// re-hashing 100 KB per cell per request.
#[must_use]
pub fn digest_fingerprint(digest: &[u8]) -> [u8; 16] {
    let a = fnv1a64(digest);
    // Second pass with a perturbed basis; together the two halves make
    // accidental suite-content collisions (the only part of a key not
    // compared byte-for-byte) vanishingly unlikely.
    let mut b: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15;
    for &byte in digest {
        b ^= u64::from(byte);
        b = b.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&a.to_le_bytes());
    out[8..].copy_from_slice(&b.to_le_bytes());
    out
}

/// The canonical key of one experiment cell: a suite (by the
/// [`digest_fingerprint`] of its [`suite_digest`]) run on `machine`
/// (with the suite's interleave applied by the pipeline) under
/// `options`, `solution` and `heuristic`. The machine contributes its
/// full [`MachineConfig::canonical_bytes`] encoding.
#[must_use]
pub fn cell_key_from_fingerprint(
    fingerprint: &[u8; 16],
    machine: &MachineConfig,
    options: &PipelineOptions,
    solution: Solution,
    heuristic: Heuristic,
) -> CacheKey {
    let mut out = Vec::with_capacity(160);
    out.push(CELL_KEY_VERSION);

    out.extend_from_slice(fingerprint);

    let mb = machine.canonical_bytes();
    push_u64(&mut out, mb.len() as u64);
    out.extend_from_slice(&mb);

    push_u64(&mut out, options.sim.max_iterations);
    out.push(u8::from(options.sim.detect_violations));
    out.push(u8::from(options.specialize));
    out.push(u8::from(options.relax_latencies));

    out.push(match solution {
        Solution::Free => 0,
        Solution::Mdc => 1,
        Solution::Ddgt => 2,
        Solution::Hybrid => 3,
    });
    out.push(match heuristic {
        Heuristic::PrefClus => 0,
        Heuristic::MinComs => 1,
    });

    CacheKey::from_bytes(out)
}

/// [`cell_key_from_fingerprint`] with the suite digested on the spot.
#[must_use]
pub fn cell_key(
    suite: &Suite,
    machine: &MachineConfig,
    options: &PipelineOptions,
    solution: Solution,
    heuristic: Heuristic,
) -> CacheKey {
    cell_key_from_fingerprint(
        &digest_fingerprint(&suite_digest(suite)),
        machine,
        options,
        solution,
        heuristic,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_sim::SimOptions;

    fn base_key() -> CacheKey {
        let suite = distvliw_mediabench::suite("gsmdec").unwrap();
        cell_key(
            &suite,
            &MachineConfig::paper_baseline(),
            &PipelineOptions::default(),
            Solution::Mdc,
            Heuristic::PrefClus,
        )
    }

    #[test]
    fn identical_inputs_produce_identical_keys() {
        let a = base_key();
        let b = base_key();
        assert_eq!(a, b);
        assert_eq!(a.hash64(), b.hash64());
    }

    #[test]
    fn every_field_perturbation_changes_the_key() {
        let suite = distvliw_mediabench::suite("gsmdec").unwrap();
        let machine = MachineConfig::paper_baseline();
        let options = PipelineOptions::default();
        let base = base_key();

        // Different suite.
        let other = distvliw_mediabench::suite("jpegenc").unwrap();
        assert_ne!(
            cell_key(
                &other,
                &machine,
                &options,
                Solution::Mdc,
                Heuristic::PrefClus
            ),
            base
        );

        // Suite content (not just name) matters.
        let mut renamed = suite.clone();
        renamed.kernels[0].trip_count += 1;
        assert_ne!(
            cell_key(
                &renamed,
                &machine,
                &options,
                Solution::Mdc,
                Heuristic::PrefClus
            ),
            base
        );

        // Graph/stream *content* matters even when every size is
        // unchanged: perturb one execution stream's stride in place.
        let mut restrided = suite.clone();
        let site = restrided.kernels[0]
            .exec
            .iter()
            .map(|(m, s)| (m, s.clone()))
            .next()
            .expect("kernels have memory sites");
        let stream = match site.1 {
            distvliw_ir::AddressStream::Affine { base, stride } => {
                distvliw_ir::AddressStream::Affine {
                    base,
                    stride: stride + 4,
                }
            }
            distvliw_ir::AddressStream::Indexed(addrs) => {
                let mut addrs: Vec<u64> = addrs.to_vec();
                addrs[0] = addrs[0].wrapping_add(4);
                distvliw_ir::AddressStream::Indexed(addrs.into())
            }
        };
        restrided.kernels[0].exec.insert(site.0, stream);
        assert_eq!(
            restrided.kernels[0].ddg.node_ids().count(),
            suite.kernels[0].ddg.node_ids().count(),
            "perturbation must keep sizes identical"
        );
        assert_ne!(
            cell_key(
                &restrided,
                &machine,
                &options,
                Solution::Mdc,
                Heuristic::PrefClus
            ),
            base,
            "stream content must be part of the key"
        );

        // The precomputed-fingerprint path agrees with the direct path.
        assert_eq!(
            cell_key_from_fingerprint(
                &digest_fingerprint(&suite_digest(&suite)),
                &machine,
                &options,
                Solution::Mdc,
                Heuristic::PrefClus
            ),
            base
        );

        // Machine.
        let m2 = machine.clone().with_interleave(2);
        assert_ne!(
            cell_key(&suite, &m2, &options, Solution::Mdc, Heuristic::PrefClus),
            base
        );

        // Options, field by field.
        let mut o = options;
        o.sim = SimOptions {
            max_iterations: 64,
            ..o.sim
        };
        assert_ne!(
            cell_key(&suite, &machine, &o, Solution::Mdc, Heuristic::PrefClus),
            base
        );
        let mut o = options;
        o.sim.detect_violations = false;
        assert_ne!(
            cell_key(&suite, &machine, &o, Solution::Mdc, Heuristic::PrefClus),
            base
        );
        let o = PipelineOptions {
            specialize: true,
            ..options
        };
        assert_ne!(
            cell_key(&suite, &machine, &o, Solution::Mdc, Heuristic::PrefClus),
            base
        );
        let o = PipelineOptions {
            relax_latencies: false,
            ..options
        };
        assert_ne!(
            cell_key(&suite, &machine, &o, Solution::Mdc, Heuristic::PrefClus),
            base
        );

        // Solution and heuristic.
        assert_ne!(
            cell_key(
                &suite,
                &machine,
                &options,
                Solution::Ddgt,
                Heuristic::PrefClus
            ),
            base
        );
        assert_ne!(
            cell_key(
                &suite,
                &machine,
                &options,
                Solution::Mdc,
                Heuristic::MinComs
            ),
            base
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
