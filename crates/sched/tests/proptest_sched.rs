//! Property tests for the modulo scheduler: every produced schedule must
//! respect dependences (with copy latency for cross-cluster flow),
//! functional-unit capacity, and the heuristics' placement contracts.

use std::collections::BTreeMap;

use distvliw_arch::MachineConfig;
use distvliw_coherence::SchedConstraints;
use distvliw_ir::{Ddg, DdgBuilder, DepKind, NodeId, NodeMap, OpKind, PrefInfo, PrefMap, Width};
use distvliw_sched::{Heuristic, ModuloScheduler, Schedule};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Ddg> {
    (1usize..12, proptest::collection::vec(any::<u8>(), 16)).prop_map(|(n, entropy)| {
        let mut b = DdgBuilder::new();
        let mut produced: Vec<NodeId> = Vec::new();
        for i in 0..n {
            let pick = entropy[i % entropy.len()];
            let node = match pick % 5 {
                0 => b.load(Width::W4),
                1 if !produced.is_empty() => {
                    let src = produced[usize::from(pick) % produced.len()];
                    b.store(Width::W4, &[src])
                }
                2 => b.op(OpKind::FpAlu, &[]),
                _ => {
                    let srcs: Vec<NodeId> = produced
                        .get(usize::from(pick) % produced.len().max(1))
                        .copied()
                        .into_iter()
                        .collect();
                    b.op(OpKind::IntAlu, &srcs)
                }
            };
            if b.graph().node(node).dest.is_some() {
                produced.push(node);
            }
        }
        // A loop-carried recurrence sometimes.
        if entropy[0] % 2 == 0 {
            if let Some(&p) = produced.first() {
                if let Some(&q) = produced.last() {
                    if p != q {
                        b.recurrence(q, p, 1 + u32::from(entropy[1] % 2));
                    }
                }
            }
        }
        b.finish()
    })
}

fn machine() -> MachineConfig {
    MachineConfig::paper_baseline()
}

/// Checks dependence and resource legality of a schedule.
fn assert_legal(ddg: &Ddg, s: &Schedule, m: &MachineConfig) -> Result<(), TestCaseError> {
    for (_, d) in ddg.deps() {
        if d.src == d.dst {
            continue;
        }
        let a = s.op(d.src);
        let b = s.op(d.dst);
        let lat = match d.kind {
            DepKind::RegFlow => {
                let base = if ddg.node(d.src).is_load() {
                    a.assumed_class.map_or(1, |c| m.latency_of(c))
                } else {
                    ddg.node(d.src).kind.base_latency()
                };
                base + if a.cluster != b.cluster {
                    m.reg_buses.latency
                } else {
                    0
                }
            }
            k => k.min_separation(),
        };
        prop_assert!(
            i64::from(b.start) + i64::from(s.ii) * i64::from(d.distance)
                >= i64::from(a.start) + i64::from(lat),
            "violated {d:?} at II {}",
            s.ii
        );
    }
    let mut fu: BTreeMap<(usize, usize, u32), u32> = BTreeMap::new();
    for op in s.ops.values() {
        if let Some(class) = ddg.node(op.node).kind.fu_class() {
            let e = fu
                .entry((op.cluster, class.index(), op.start % s.ii))
                .or_default();
            *e += 1;
            prop_assert!(
                *e <= 1,
                "FU oversubscribed at {:?}",
                (op.cluster, class, op.start)
            );
        }
    }
    // Register buses: transfers occupy `latency` slots; capacity `count`.
    let mut bus = vec![0u32; s.ii as usize];
    for c in &s.copies {
        for k in 0..m.reg_buses.latency {
            let slot = ((c.start + k) % s.ii) as usize;
            bus[slot] += 1;
            prop_assert!(bus[slot] <= m.reg_buses.count as u32, "bus oversubscribed");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedules_are_always_legal(ddg in arb_graph()) {
        let m = machine();
        for h in [Heuristic::PrefClus, Heuristic::MinComs] {
            let s = ModuloScheduler::new(&m)
                .schedule(&ddg, &SchedConstraints::none(), &PrefMap::new(), h)
                .unwrap();
            assert_legal(&ddg, &s, &m)?;
            prop_assert_eq!(s.ops.len(), ddg.node_count());
        }
    }

    #[test]
    fn disabling_relaxation_is_also_legal(ddg in arb_graph()) {
        let m = machine();
        let s = ModuloScheduler::new(&m)
            .with_latency_relaxation(false)
            .schedule(&ddg, &SchedConstraints::none(), &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        assert_legal(&ddg, &s, &m)?;
        // Without relaxation every load keeps the optimistic class.
        for l in ddg.loads() {
            prop_assert_eq!(
                s.op(l).assumed_class,
                Some(distvliw_arch::LatencyClass::LocalHit)
            );
        }
    }

    #[test]
    fn prefclus_honors_unanimous_profiles(ddg in arb_graph(), cluster in 0usize..4) {
        let m = machine();
        let mut prefs = PrefMap::new();
        for n in ddg.mem_nodes() {
            let mut counts = vec![0u64; 4];
            counts[cluster] = 100;
            prefs.insert(ddg.node(n).mem_id().unwrap(), PrefInfo::from_counts(counts));
        }
        // Latency relaxation re-places the graph and may legitimately use
        // fallback clusters; the strict property holds for the base
        // placement.
        let s = ModuloScheduler::new(&m)
            .with_latency_relaxation(false)
            .schedule(&ddg, &SchedConstraints::none(), &prefs, Heuristic::PrefClus)
            .unwrap();
        // With unanimous profiles, light memory pressure (≤ II slots) and
        // no loop-carried edges (which let a consumer be placed *before*
        // its producer and bound it from above), every load lands in its
        // preferred cluster. Stores may still fall back when operand-copy
        // deadlines do not fit.
        let mem_count = ddg.mem_nodes().count() as u32;
        let acyclic = ddg.deps().all(|(_, d)| d.distance == 0);
        if mem_count <= s.ii && acyclic {
            for n in ddg.loads() {
                prop_assert_eq!(s.op(n).cluster, cluster);
            }
        }
        assert_legal(&ddg, &s, &m)?;
    }

    #[test]
    fn pinning_is_always_respected(ddg in arb_graph(), pin in 0usize..4) {
        let m = machine();
        let mut constraints = SchedConstraints::none();
        for n in ddg.node_ids() {
            constraints.pinned.insert(n, pin);
        }
        // Everything in one cluster is schedulable (II inflates).
        let s = ModuloScheduler::new(&m)
            .schedule(&ddg, &constraints, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        for n in ddg.node_ids() {
            prop_assert_eq!(s.op(n).cluster, pin);
        }
        prop_assert_eq!(s.comm_ops(), 0, "single cluster needs no copies");
        assert_legal(&ddg, &s, &m)?;
    }

    #[test]
    fn ii_never_undershoots_mii(ddg in arb_graph()) {
        let m = machine();
        let lat: NodeMap<u32> = ddg.loads().map(|l| (l, 1)).collect();
        let bound = distvliw_sched::mii::mii(&ddg, &m, &lat);
        let s = ModuloScheduler::new(&m)
            .schedule(&ddg, &SchedConstraints::none(), &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        prop_assert!(s.ii >= bound, "II {} below MII {}", s.ii, bound);
    }
}
