//! Ejection (backtracking) policy for the modulo scheduler.
//!
//! The restart-only II search resolved every placement failure by
//! abandoning the II and re-running the whole placement from scratch one
//! II higher — so a single hard-to-place node (typically a memory op
//! whose MDC chain or DDGT pin confines it to one congested cluster)
//! cost a full pass per II. Iterative modulo scheduling (Rau) instead
//! *ejects* the ops blocking the failed node, re-places the node, and
//! re-enqueues the victims at the back of the worklist; the II is only
//! bumped once the ejection budget for the current II is exhausted.
//!
//! This module holds the policy pieces — the eviction record that makes
//! an ejection chain rejectable, and the per-II budget — while the
//! mechanics (which ops conflict, how reservations are released) live
//! with the placer in `scheduler.rs`. A rejected chain must restore the
//! scheduler state *exactly*: side tables are restored from the record,
//! and the reservation table restores itself through its journal (the
//! targeted releases of [`crate::Mrt::release_fu`] /
//! [`crate::Mrt::release_bus`] roll back like any reservation).

use distvliw_ir::NodeId;

use crate::schedule::CopyOp;

/// Everything a rejected ejection chain must restore, besides the
/// reservation table (which restores itself via the journal).
#[derive(Debug, Default)]
pub(crate) struct EvictionRecord {
    /// Evicted placements: `(node, cluster, start)`.
    pub nodes: Vec<(NodeId, usize, u32)>,
    /// Copy operations removed with them.
    pub copies: Vec<CopyOp>,
    /// Colocation-group bindings cleared because their last placed
    /// member was evicted: `(group, cluster)`.
    pub groups: Vec<(u32, usize)>,
    /// Journal of live-range cells the evictions overwrote (flat
    /// `(index, previous range)` pairs, undone in reverse), keeping the
    /// incremental register-pressure accounting rollback-exact.
    pub ranges: Vec<(usize, (i64, i64))>,
}

impl EvictionRecord {
    /// The evicted nodes, in eviction order (for re-enqueueing at lower
    /// priority).
    pub fn evicted(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().map(|&(n, _, _)| n)
    }
}

/// Total ejections allowed at one II before the search bumps to the
/// next. Rau's iterative modulo scheduling uses a small multiple of the
/// operation count; the constant offset keeps tiny kernels from giving
/// up after a couple of evictions. The multiple also caps what a
/// *hopeless* II may cost — an ejection pass that fails burns the whole
/// budget, and it runs once per II the plain pass fails at.
#[must_use]
pub(crate) fn eject_budget(n_nodes: usize) -> u64 {
    n_nodes as u64 * 3 + 16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scales_with_graph_size() {
        assert_eq!(eject_budget(0), 16);
        assert_eq!(eject_budget(10), 46);
        assert!(eject_budget(100) > eject_budget(10));
    }

    #[test]
    fn record_lists_evicted_nodes_in_order() {
        let rec = EvictionRecord {
            nodes: vec![(NodeId(3), 0, 5), (NodeId(1), 2, 0)],
            ..EvictionRecord::default()
        };
        let order: Vec<NodeId> = rec.evicted().collect();
        assert_eq!(order, vec![NodeId(3), NodeId(1)]);
    }
}
