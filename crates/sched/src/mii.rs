//! Minimum initiation interval: resource-constrained (ResMII) and
//! recurrence-constrained (RecMII) lower bounds.
//!
//! RecMII is a binary search over a Bellman–Ford-style feasibility test.
//! The hot path runs that search once per latency-assignment trial, so
//! [`RecMiiSolver`] extracts the edge list once per graph and reuses one
//! scratch distance buffer across every probe of every search instead of
//! reallocating per probe.

use std::collections::BTreeMap;

use distvliw_arch::MachineConfig;
use distvliw_coherence::SchedConstraints;
use distvliw_ir::{Ddg, Dep, DepKind, FuClass, NodeId, NodeMap};

use crate::dense::{DenseDeps, DepRec};

/// The latency a dependence edge imposes between the issue cycles of its
/// endpoints.
///
/// * Register flow: the producer's latency (loads use their assigned
///   latency from `load_lat`).
/// * MF/MO: one cycle (strict ordering at the memory system).
/// * MA/SYNC: zero cycles (not-before ordering).
#[must_use]
pub fn dep_latency(ddg: &Ddg, dep: &Dep, load_lat: &NodeMap<u32>) -> u32 {
    match dep.kind {
        DepKind::RegFlow => {
            let op = ddg.node(dep.src);
            if op.is_load() {
                load_lat
                    .get(dep.src)
                    .copied()
                    .unwrap_or_else(|| op.kind.base_latency())
            } else {
                op.kind.base_latency()
            }
        }
        _ => dep.kind.min_separation(),
    }
}

/// Resource-constrained MII: for each functional-unit class, the ops of
/// that class divided by total machine capacity.
#[must_use]
pub fn res_mii(ddg: &Ddg, machine: &MachineConfig) -> u32 {
    let mut counts = [0u32; 3];
    for (_, op) in ddg.iter() {
        if let Some(class) = op.kind.fu_class() {
            counts[class.index()] += 1;
        }
    }
    let caps = [
        machine.fu.integer as u32 * machine.n_clusters as u32,
        machine.fu.fp as u32 * machine.n_clusters as u32,
        machine.fu.memory as u32 * machine.n_clusters as u32,
    ];
    let mut mii = 1;
    for class in FuClass::ALL {
        let i = class.index();
        if caps[i] == 0 && counts[i] > 0 {
            // Unschedulable mix; report an absurd bound so scheduling fails
            // loudly rather than looping forever.
            return u32::MAX;
        }
        if caps[i] > 0 {
            mii = mii.max(counts[i].div_ceil(caps[i]));
        }
    }
    mii
}

/// Constraint-aware resource MII: the tightest per-cluster bound implied
/// by cluster-assignment constraints.
///
/// Ops of one colocation group all execute in a single cluster, so the
/// group alone needs `ceil(class count / per-cluster units)` II slots of
/// each class; likewise every set of ops pinned to the same cluster.
/// Groups with a pre-decided target cluster pool with the pins of that
/// cluster. The plain [`res_mii`] divides by *machine-wide* capacity and
/// misses all of this — under MDC/DDGT the II search used to discover
/// the gap one failed full placement pass per II, which is exactly the
/// degenerate blowup this bound now skips: every II below it is provably
/// infeasible.
#[must_use]
pub fn constrained_res_mii(
    ddg: &Ddg,
    machine: &MachineConfig,
    constraints: &SchedConstraints,
) -> u32 {
    if constraints.colocate.is_empty() && constraints.pinned.is_empty() {
        return 1;
    }
    let caps = [
        machine.fu.integer as u32,
        machine.fu.fp as u32,
        machine.fu.memory as u32,
    ];
    // Per-target-cluster counts (pins + groups with a known target) and
    // per-untargeted-group counts.
    let mut cluster_counts: BTreeMap<usize, [u32; 3]> = BTreeMap::new();
    let mut group_counts: BTreeMap<u32, [u32; 3]> = BTreeMap::new();
    for (n, op) in ddg.iter() {
        let Some(class) = op.kind.fu_class() else {
            continue;
        };
        if let Some(&pin) = constraints.pinned.get(&n) {
            cluster_counts.entry(pin).or_insert([0; 3])[class.index()] += 1;
        } else if let Some(g) = constraints.colocate.get(&n) {
            match constraints.group_target.get(g) {
                Some(&target) => cluster_counts.entry(target).or_insert([0; 3])[class.index()] += 1,
                None => group_counts.entry(*g).or_insert([0; 3])[class.index()] += 1,
            }
        }
    }
    let mut mii = 1u32;
    for counts in cluster_counts.values().chain(group_counts.values()) {
        for class in FuClass::ALL {
            let i = class.index();
            if counts[i] == 0 {
                continue;
            }
            if caps[i] == 0 {
                return u32::MAX;
            }
            mii = mii.max(counts[i].div_ceil(caps[i]));
        }
    }
    mii
}

/// Reusable RecMII engine for one graph.
///
/// The edge topology is extracted once (shared with the scheduler's
/// crate-private `DenseDeps` snapshot, so the latency-resolution
/// contract lives in a single place: `DepRec::latency`);
/// [`RecMiiSolver::rec_mii`] refreshes per-edge latencies from the
/// current latency assignment and binary-searches feasibility, reusing
/// one scratch distance buffer for every probe.
#[derive(Debug, Clone)]
pub struct RecMiiSolver {
    n: usize,
    edges: Vec<DepRec>,
    /// Latency of `edges[i]` under the latency assignment of the most
    /// recent `rec_mii` call.
    latencies: Vec<u32>,
    /// Scratch longest-path estimates, reused across probes.
    dist: Vec<i64>,
}

impl RecMiiSolver {
    /// Extracts the feasibility system of `ddg`.
    #[must_use]
    pub fn new(ddg: &Ddg) -> Self {
        Self::from_dense(&DenseDeps::new(ddg))
    }

    /// Builds the solver from an existing dense snapshot (the scheduler
    /// already has one).
    #[must_use]
    pub(crate) fn from_dense(dense: &DenseDeps) -> Self {
        let n = dense.node_count();
        let edges: Vec<DepRec> = (0..n)
            .flat_map(|i| dense.out_deps(NodeId(i as u32)).iter().copied())
            .collect();
        let latencies = vec![0; edges.len()];
        RecMiiSolver {
            n,
            edges,
            latencies,
            dist: vec![0; n],
        }
    }

    fn refresh_latencies(&mut self, load_lat: &NodeMap<u32>) {
        for (e, lat) in self.edges.iter().zip(&mut self.latencies) {
            *lat = e.latency(load_lat);
        }
    }

    /// Whether the graph admits a legal schedule at initiation interval
    /// `ii` under the latencies of the most recent refresh: no cycle may
    /// have positive total weight, where an edge weighs
    /// `latency − ii × distance`.
    fn feasible(&mut self, ii: u32) -> bool {
        let n = self.n;
        if n == 0 {
            return true;
        }
        self.dist.clear();
        self.dist.resize(n, 0);
        for round in 0..=n {
            let mut changed = false;
            for (e, &lat) in self.edges.iter().zip(&self.latencies) {
                let w = i64::from(lat) - i64::from(ii) * i64::from(e.distance);
                let relaxed = self.dist[e.src.index()] + w;
                if relaxed > self.dist[e.dst.index()] {
                    self.dist[e.dst.index()] = relaxed;
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
            if round == n {
                return false;
            }
        }
        true
    }

    /// Whether the graph admits a legal schedule at `ii` under
    /// `load_lat`. Equivalent to `self.rec_mii(load_lat) <= ii` (by
    /// monotonicity of feasibility) at the cost of a single probe instead
    /// of a binary search — the latency-assignment loop asks exactly this
    /// question once per trial.
    #[must_use]
    pub fn feasible_at(&mut self, load_lat: &NodeMap<u32>, ii: u32) -> bool {
        self.refresh_latencies(load_lat);
        self.feasible(ii)
    }

    /// Recurrence-constrained MII under `load_lat`: the smallest `ii` at
    /// which no dependence cycle is violated (feasibility is monotone in
    /// `ii`), or `u32::MAX` for zero-distance positive cycles.
    #[must_use]
    pub fn rec_mii(&mut self, load_lat: &NodeMap<u32>) -> u32 {
        self.refresh_latencies(load_lat);
        // An upper bound: the latency of the longest *simple* cycle. A
        // simple cycle visits at most min(n, edges) edges, so
        // `min(n, edges) × max edge latency` bounds its latency sum, and
        // any binding latency-to-distance ratio is achieved by a simple
        // cycle. (The previous bound summed over *all* edges, which on
        // huge synthetic graphs forced the binary search to open at an
        // absurd II.)
        let max_lat = self.latencies.iter().copied().max().unwrap_or(0);
        let cycle_edges = self.n.min(self.edges.len()) as i64;
        let hi0: i64 = (cycle_edges * i64::from(max_lat)).max(1);
        let mut lo = 1u32;
        let mut hi = hi0.min(i64::from(u32::MAX - 1)) as u32;
        if !self.feasible(hi) {
            // Zero-distance positive cycle: no II works.
            return u32::MAX;
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.feasible(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

/// Whether the graph admits a legal schedule at initiation interval `ii`.
///
/// One-shot convenience over [`RecMiiSolver`]; hot paths should hold a
/// solver instead.
#[must_use]
pub fn feasible_ii(ddg: &Ddg, load_lat: &NodeMap<u32>, ii: u32) -> bool {
    let mut solver = RecMiiSolver::new(ddg);
    solver.refresh_latencies(load_lat);
    solver.feasible(ii)
}

/// Recurrence-constrained MII (one-shot convenience over
/// [`RecMiiSolver`]).
#[must_use]
pub fn rec_mii(ddg: &Ddg, load_lat: &NodeMap<u32>) -> u32 {
    RecMiiSolver::new(ddg).rec_mii(load_lat)
}

/// `max(ResMII, RecMII)`.
#[must_use]
pub fn mii(ddg: &Ddg, machine: &MachineConfig, load_lat: &NodeMap<u32>) -> u32 {
    res_mii(ddg, machine).max(rec_mii(ddg, load_lat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_ir::{DdgBuilder, OpKind, Width};

    #[test]
    fn res_mii_counts_fu_pressure() {
        let mut b = DdgBuilder::new();
        // 9 loads on a 4-cluster machine with 1 mem FU each → ceil(9/4) = 3.
        for _ in 0..9 {
            b.load(Width::W4);
        }
        let g = b.finish();
        assert_eq!(res_mii(&g, &MachineConfig::paper_baseline()), 3);
    }

    #[test]
    fn res_mii_is_one_for_small_graphs() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let _ = b.op(OpKind::IntAlu, &[l]);
        let g = b.finish();
        assert_eq!(res_mii(&g, &MachineConfig::paper_baseline()), 1);
    }

    #[test]
    fn rec_mii_of_simple_recurrence() {
        // acc = acc + x, loop-carried at distance 1 with 1-cycle add:
        // cycle weight 1 − ii ≤ 0 → RecMII = 1. With a 2-cycle fp add → 2.
        let mut b = DdgBuilder::new();
        let acc = b.op(OpKind::FpAlu, &[]);
        b.recurrence(acc, acc, 1);
        let g = b.finish();
        assert_eq!(rec_mii(&g, &NodeMap::new()), 2);
    }

    #[test]
    fn rec_mii_divides_by_distance() {
        // A 2-op cycle with total latency 4 spread over distance 2 → II 2.
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FpAlu, &[]);
        let c = b.op(OpKind::FpAlu, &[a]);
        b.recurrence(c, a, 2);
        let g = b.finish();
        assert_eq!(rec_mii(&g, &NodeMap::new()), 2);
    }

    #[test]
    fn load_latency_raises_rec_mii() {
        // load -> add -> store -> (MF d=1) -> load.
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let a = b.op(OpKind::IntAlu, &[l]);
        let s = b.store(Width::W4, &[a]);
        b.dep(s, l, DepKind::MemFlow, 1);
        let g = b.finish();
        // Optimistic (1-cycle load): cycle = 1+1+1 = 3 over distance 1.
        assert_eq!(rec_mii(&g, &NodeMap::new()), 3);
        // Remote-miss load (15 cycles): 15+1+1 = 17.
        let mut lat = NodeMap::new();
        lat.insert(l, 15);
        assert_eq!(rec_mii(&g, &lat), 17);
    }

    #[test]
    fn feasibility_is_monotone() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let a = b.op(OpKind::IntAlu, &[l]);
        let s = b.store(Width::W4, &[a]);
        b.dep(s, l, DepKind::MemFlow, 1);
        let g = b.finish();
        let lat = NodeMap::new();
        let r = rec_mii(&g, &lat);
        assert!(!feasible_ii(&g, &lat, r - 1));
        assert!(feasible_ii(&g, &lat, r));
        assert!(feasible_ii(&g, &lat, r + 5));
    }

    #[test]
    fn solver_reuse_matches_one_shot() {
        // The same solver answering under changing latency assignments
        // must agree with fresh one-shot computations.
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let a = b.op(OpKind::IntAlu, &[l]);
        let s = b.store(Width::W4, &[a]);
        b.dep(s, l, DepKind::MemFlow, 1);
        let g = b.finish();
        let mut solver = RecMiiSolver::new(&g);
        for load_latency in [1u32, 5, 10, 15, 2] {
            let mut lat = NodeMap::new();
            lat.insert(l, load_latency);
            assert_eq!(
                solver.rec_mii(&lat),
                rec_mii(&g, &lat),
                "latency {load_latency}"
            );
        }
    }

    #[test]
    fn acyclic_graph_has_rec_mii_one() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W8);
        let m = b.op(OpKind::IntMul, &[l]);
        let _ = b.store(Width::W8, &[m]);
        let g = b.finish();
        assert_eq!(rec_mii(&g, &NodeMap::new()), 1);
    }

    #[test]
    fn mii_takes_max_of_bounds() {
        let mut b = DdgBuilder::new();
        // Resource pressure: 9 int ops → ResMII 3; plus a latency-4 1-dist
        // recurrence → RecMII 4.
        let first = b.op(OpKind::FpMul, &[]);
        b.recurrence(first, first, 1);
        for _ in 0..9 {
            b.op(OpKind::IntAlu, &[]);
        }
        let g = b.finish();
        let machine = MachineConfig::paper_baseline();
        assert_eq!(res_mii(&g, &machine), 3);
        assert_eq!(rec_mii(&g, &NodeMap::new()), 4);
        assert_eq!(mii(&g, &machine, &NodeMap::new()), 4);
    }

    #[test]
    fn constrained_res_mii_counts_colocated_chains() {
        // 6 memory ops colocated in one group on the 4-cluster paper
        // machine: global ResMII is ceil(6/4) = 2, but one cluster must
        // serialize all 6 → constrained bound 6.
        let mut b = DdgBuilder::new();
        let nodes: Vec<_> = (0..6).map(|_| b.load(Width::W4)).collect();
        let g = b.finish();
        let machine = MachineConfig::paper_baseline();
        let mut c = SchedConstraints::none();
        for &n in &nodes {
            c.colocate.insert(n, 0);
        }
        assert_eq!(res_mii(&g, &machine), 2);
        assert_eq!(constrained_res_mii(&g, &machine, &c), 6);
        // An explicit target does not change the bound…
        c.group_target.insert(0, 1);
        assert_eq!(constrained_res_mii(&g, &machine, &c), 6);
        // …but pins sharing the target cluster pool with it.
        let mut b = DdgBuilder::new();
        let chain: Vec<_> = (0..3).map(|_| b.load(Width::W4)).collect();
        let pinned = b.load(Width::W4);
        let g = b.finish();
        let mut c = SchedConstraints::none();
        for &n in &chain {
            c.colocate.insert(n, 0);
        }
        c.group_target.insert(0, 2);
        c.pinned.insert(pinned, 2);
        assert_eq!(constrained_res_mii(&g, &machine, &c), 4);
        // A pin in another cluster does not pool.
        let mut c2 = c.clone();
        *c2.pinned.get_mut(&pinned).unwrap() = 3;
        assert_eq!(constrained_res_mii(&g, &machine, &c2), 3);
    }

    #[test]
    fn constrained_res_mii_is_one_without_constraints() {
        let mut b = DdgBuilder::new();
        for _ in 0..9 {
            b.load(Width::W4);
        }
        let g = b.finish();
        assert_eq!(
            constrained_res_mii(
                &g,
                &MachineConfig::paper_baseline(),
                &SchedConstraints::none()
            ),
            1
        );
    }

    #[test]
    fn rec_mii_upper_bound_is_cycle_scoped() {
        // A wide acyclic graph with many high-latency edges plus one
        // small recurrence: the sum-of-all-latencies bound would open
        // the search absurdly high; the cycle-scoped bound must still
        // give the exact RecMII.
        let mut b = DdgBuilder::new();
        let acc = b.op(OpKind::FpMul, &[]); // 4-cycle producer
        b.recurrence(acc, acc, 1);
        for _ in 0..50 {
            let l = b.load(Width::W8);
            let _ = b.op(OpKind::FpMul, &[l]);
        }
        let g = b.finish();
        let mut lat = NodeMap::new();
        for l in g.loads() {
            lat.insert(l, 15);
        }
        assert_eq!(rec_mii(&g, &lat), 4);
    }

    #[test]
    fn rec_mii_clamped_bound_terminates_on_huge_latencies() {
        // A register-flow cycle of 64 loads at latency u32::MAX/2 each:
        // the cycle needs more than any u32 II, the bound clamps to
        // u32::MAX − 1, and the clamped probe must terminate and report
        // the cycle as infeasible (u32::MAX) rather than spin.
        let cycle = |latency: u32| {
            let mut b = DdgBuilder::new();
            let loads: Vec<NodeId> = (0..64).map(|_| b.load(Width::W4)).collect();
            for w in loads.windows(2) {
                b.recurrence(w[0], w[1], 0);
            }
            b.recurrence(loads[63], loads[0], 1);
            let g = b.finish();
            let mut lat = NodeMap::new();
            for &l in &loads {
                lat.insert(l, latency);
            }
            rec_mii(&g, &lat)
        };
        assert_eq!(cycle(u32::MAX / 2), u32::MAX);
        // A cycle that fits a u32 II still converges exactly:
        // 64 × 1000 over distance 1.
        assert_eq!(cycle(1000), 64_000);
    }

    #[test]
    fn sync_edges_cost_zero_latency() {
        let mut b = DdgBuilder::new();
        let c = b.op(OpKind::IntAlu, &[]);
        let s = b.store(Width::W4, &[]);
        b.dep(c, s, DepKind::Sync, 0);
        let g = b.finish();
        let d = g.deps().next().unwrap().1;
        assert_eq!(dep_latency(&g, &d, &NodeMap::new()), 0);
    }
}
