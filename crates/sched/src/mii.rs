//! Minimum initiation interval: resource-constrained (ResMII) and
//! recurrence-constrained (RecMII) lower bounds.
//!
//! RecMII is a binary search over a Bellman–Ford-style feasibility test.
//! The hot path runs that search once per latency-assignment trial, so
//! [`RecMiiSolver`] extracts the edge list once per graph and reuses one
//! scratch distance buffer across every probe of every search instead of
//! reallocating per probe.

use distvliw_arch::MachineConfig;
use distvliw_ir::{Ddg, Dep, DepKind, FuClass, NodeId, NodeMap};

use crate::dense::{DenseDeps, DepRec};

/// The latency a dependence edge imposes between the issue cycles of its
/// endpoints.
///
/// * Register flow: the producer's latency (loads use their assigned
///   latency from `load_lat`).
/// * MF/MO: one cycle (strict ordering at the memory system).
/// * MA/SYNC: zero cycles (not-before ordering).
#[must_use]
pub fn dep_latency(ddg: &Ddg, dep: &Dep, load_lat: &NodeMap<u32>) -> u32 {
    match dep.kind {
        DepKind::RegFlow => {
            let op = ddg.node(dep.src);
            if op.is_load() {
                load_lat
                    .get(dep.src)
                    .copied()
                    .unwrap_or_else(|| op.kind.base_latency())
            } else {
                op.kind.base_latency()
            }
        }
        _ => dep.kind.min_separation(),
    }
}

/// Resource-constrained MII: for each functional-unit class, the ops of
/// that class divided by total machine capacity.
#[must_use]
pub fn res_mii(ddg: &Ddg, machine: &MachineConfig) -> u32 {
    let mut counts = [0u32; 3];
    for (_, op) in ddg.iter() {
        if let Some(class) = op.kind.fu_class() {
            counts[class.index()] += 1;
        }
    }
    let caps = [
        machine.fu.integer as u32 * machine.n_clusters as u32,
        machine.fu.fp as u32 * machine.n_clusters as u32,
        machine.fu.memory as u32 * machine.n_clusters as u32,
    ];
    let mut mii = 1;
    for class in FuClass::ALL {
        let i = class.index();
        if caps[i] == 0 && counts[i] > 0 {
            // Unschedulable mix; report an absurd bound so scheduling fails
            // loudly rather than looping forever.
            return u32::MAX;
        }
        if caps[i] > 0 {
            mii = mii.max(counts[i].div_ceil(caps[i]));
        }
    }
    mii
}

/// Reusable RecMII engine for one graph.
///
/// The edge topology is extracted once (shared with the scheduler's
/// crate-private `DenseDeps` snapshot, so the latency-resolution
/// contract lives in a single place: `DepRec::latency`);
/// [`RecMiiSolver::rec_mii`] refreshes per-edge latencies from the
/// current latency assignment and binary-searches feasibility, reusing
/// one scratch distance buffer for every probe.
#[derive(Debug, Clone)]
pub struct RecMiiSolver {
    n: usize,
    edges: Vec<DepRec>,
    /// Latency of `edges[i]` under the latency assignment of the most
    /// recent `rec_mii` call.
    latencies: Vec<u32>,
    /// Scratch longest-path estimates, reused across probes.
    dist: Vec<i64>,
}

impl RecMiiSolver {
    /// Extracts the feasibility system of `ddg`.
    #[must_use]
    pub fn new(ddg: &Ddg) -> Self {
        Self::from_dense(&DenseDeps::new(ddg))
    }

    /// Builds the solver from an existing dense snapshot (the scheduler
    /// already has one).
    #[must_use]
    pub(crate) fn from_dense(dense: &DenseDeps) -> Self {
        let n = dense.node_count();
        let edges: Vec<DepRec> = (0..n)
            .flat_map(|i| dense.out_deps(NodeId(i as u32)).iter().copied())
            .collect();
        let latencies = vec![0; edges.len()];
        RecMiiSolver {
            n,
            edges,
            latencies,
            dist: vec![0; n],
        }
    }

    fn refresh_latencies(&mut self, load_lat: &NodeMap<u32>) {
        for (e, lat) in self.edges.iter().zip(&mut self.latencies) {
            *lat = e.latency(load_lat);
        }
    }

    /// Whether the graph admits a legal schedule at initiation interval
    /// `ii` under the latencies of the most recent refresh: no cycle may
    /// have positive total weight, where an edge weighs
    /// `latency − ii × distance`.
    fn feasible(&mut self, ii: u32) -> bool {
        let n = self.n;
        if n == 0 {
            return true;
        }
        self.dist.clear();
        self.dist.resize(n, 0);
        for round in 0..=n {
            let mut changed = false;
            for (e, &lat) in self.edges.iter().zip(&self.latencies) {
                let w = i64::from(lat) - i64::from(ii) * i64::from(e.distance);
                let relaxed = self.dist[e.src.index()] + w;
                if relaxed > self.dist[e.dst.index()] {
                    self.dist[e.dst.index()] = relaxed;
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
            if round == n {
                return false;
            }
        }
        true
    }

    /// Whether the graph admits a legal schedule at `ii` under
    /// `load_lat`. Equivalent to `self.rec_mii(load_lat) <= ii` (by
    /// monotonicity of feasibility) at the cost of a single probe instead
    /// of a binary search — the latency-assignment loop asks exactly this
    /// question once per trial.
    #[must_use]
    pub fn feasible_at(&mut self, load_lat: &NodeMap<u32>, ii: u32) -> bool {
        self.refresh_latencies(load_lat);
        self.feasible(ii)
    }

    /// Recurrence-constrained MII under `load_lat`: the smallest `ii` at
    /// which no dependence cycle is violated (feasibility is monotone in
    /// `ii`), or `u32::MAX` for zero-distance positive cycles.
    #[must_use]
    pub fn rec_mii(&mut self, load_lat: &NodeMap<u32>) -> u32 {
        self.refresh_latencies(load_lat);
        // An upper bound: sum of all edge latencies (a cycle cannot need
        // more).
        let hi0: i64 = self
            .latencies
            .iter()
            .map(|&l| i64::from(l))
            .sum::<i64>()
            .max(1);
        let mut lo = 1u32;
        let mut hi = hi0.min(i64::from(u32::MAX - 1)) as u32;
        if !self.feasible(hi) {
            // Zero-distance positive cycle: no II works.
            return u32::MAX;
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.feasible(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

/// Whether the graph admits a legal schedule at initiation interval `ii`.
///
/// One-shot convenience over [`RecMiiSolver`]; hot paths should hold a
/// solver instead.
#[must_use]
pub fn feasible_ii(ddg: &Ddg, load_lat: &NodeMap<u32>, ii: u32) -> bool {
    let mut solver = RecMiiSolver::new(ddg);
    solver.refresh_latencies(load_lat);
    solver.feasible(ii)
}

/// Recurrence-constrained MII (one-shot convenience over
/// [`RecMiiSolver`]).
#[must_use]
pub fn rec_mii(ddg: &Ddg, load_lat: &NodeMap<u32>) -> u32 {
    RecMiiSolver::new(ddg).rec_mii(load_lat)
}

/// `max(ResMII, RecMII)`.
#[must_use]
pub fn mii(ddg: &Ddg, machine: &MachineConfig, load_lat: &NodeMap<u32>) -> u32 {
    res_mii(ddg, machine).max(rec_mii(ddg, load_lat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_ir::{DdgBuilder, OpKind, Width};

    #[test]
    fn res_mii_counts_fu_pressure() {
        let mut b = DdgBuilder::new();
        // 9 loads on a 4-cluster machine with 1 mem FU each → ceil(9/4) = 3.
        for _ in 0..9 {
            b.load(Width::W4);
        }
        let g = b.finish();
        assert_eq!(res_mii(&g, &MachineConfig::paper_baseline()), 3);
    }

    #[test]
    fn res_mii_is_one_for_small_graphs() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let _ = b.op(OpKind::IntAlu, &[l]);
        let g = b.finish();
        assert_eq!(res_mii(&g, &MachineConfig::paper_baseline()), 1);
    }

    #[test]
    fn rec_mii_of_simple_recurrence() {
        // acc = acc + x, loop-carried at distance 1 with 1-cycle add:
        // cycle weight 1 − ii ≤ 0 → RecMII = 1. With a 2-cycle fp add → 2.
        let mut b = DdgBuilder::new();
        let acc = b.op(OpKind::FpAlu, &[]);
        b.recurrence(acc, acc, 1);
        let g = b.finish();
        assert_eq!(rec_mii(&g, &NodeMap::new()), 2);
    }

    #[test]
    fn rec_mii_divides_by_distance() {
        // A 2-op cycle with total latency 4 spread over distance 2 → II 2.
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FpAlu, &[]);
        let c = b.op(OpKind::FpAlu, &[a]);
        b.recurrence(c, a, 2);
        let g = b.finish();
        assert_eq!(rec_mii(&g, &NodeMap::new()), 2);
    }

    #[test]
    fn load_latency_raises_rec_mii() {
        // load -> add -> store -> (MF d=1) -> load.
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let a = b.op(OpKind::IntAlu, &[l]);
        let s = b.store(Width::W4, &[a]);
        b.dep(s, l, DepKind::MemFlow, 1);
        let g = b.finish();
        // Optimistic (1-cycle load): cycle = 1+1+1 = 3 over distance 1.
        assert_eq!(rec_mii(&g, &NodeMap::new()), 3);
        // Remote-miss load (15 cycles): 15+1+1 = 17.
        let mut lat = NodeMap::new();
        lat.insert(l, 15);
        assert_eq!(rec_mii(&g, &lat), 17);
    }

    #[test]
    fn feasibility_is_monotone() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let a = b.op(OpKind::IntAlu, &[l]);
        let s = b.store(Width::W4, &[a]);
        b.dep(s, l, DepKind::MemFlow, 1);
        let g = b.finish();
        let lat = NodeMap::new();
        let r = rec_mii(&g, &lat);
        assert!(!feasible_ii(&g, &lat, r - 1));
        assert!(feasible_ii(&g, &lat, r));
        assert!(feasible_ii(&g, &lat, r + 5));
    }

    #[test]
    fn solver_reuse_matches_one_shot() {
        // The same solver answering under changing latency assignments
        // must agree with fresh one-shot computations.
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let a = b.op(OpKind::IntAlu, &[l]);
        let s = b.store(Width::W4, &[a]);
        b.dep(s, l, DepKind::MemFlow, 1);
        let g = b.finish();
        let mut solver = RecMiiSolver::new(&g);
        for load_latency in [1u32, 5, 10, 15, 2] {
            let mut lat = NodeMap::new();
            lat.insert(l, load_latency);
            assert_eq!(
                solver.rec_mii(&lat),
                rec_mii(&g, &lat),
                "latency {load_latency}"
            );
        }
    }

    #[test]
    fn acyclic_graph_has_rec_mii_one() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W8);
        let m = b.op(OpKind::IntMul, &[l]);
        let _ = b.store(Width::W8, &[m]);
        let g = b.finish();
        assert_eq!(rec_mii(&g, &NodeMap::new()), 1);
    }

    #[test]
    fn mii_takes_max_of_bounds() {
        let mut b = DdgBuilder::new();
        // Resource pressure: 9 int ops → ResMII 3; plus a latency-4 1-dist
        // recurrence → RecMII 4.
        let first = b.op(OpKind::FpMul, &[]);
        b.recurrence(first, first, 1);
        for _ in 0..9 {
            b.op(OpKind::IntAlu, &[]);
        }
        let g = b.finish();
        let machine = MachineConfig::paper_baseline();
        assert_eq!(res_mii(&g, &machine), 3);
        assert_eq!(rec_mii(&g, &NodeMap::new()), 4);
        assert_eq!(mii(&g, &machine, &NodeMap::new()), 4);
    }

    #[test]
    fn sync_edges_cost_zero_latency() {
        let mut b = DdgBuilder::new();
        let c = b.op(OpKind::IntAlu, &[]);
        let s = b.store(Width::W4, &[]);
        b.dep(c, s, DepKind::Sync, 0);
        let g = b.finish();
        let d = g.deps().next().unwrap().1;
        assert_eq!(dep_latency(&g, &d, &NodeMap::new()), 0);
    }
}
