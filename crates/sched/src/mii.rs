//! Minimum initiation interval: resource-constrained (ResMII) and
//! recurrence-constrained (RecMII) lower bounds.

use std::collections::BTreeMap;

use distvliw_arch::MachineConfig;
use distvliw_ir::{Ddg, Dep, DepKind, FuClass, NodeId};

/// The latency a dependence edge imposes between the issue cycles of its
/// endpoints.
///
/// * Register flow: the producer's latency (loads use their assigned
///   latency from `load_lat`).
/// * MF/MO: one cycle (strict ordering at the memory system).
/// * MA/SYNC: zero cycles (not-before ordering).
#[must_use]
pub fn dep_latency(ddg: &Ddg, dep: &Dep, load_lat: &BTreeMap<NodeId, u32>) -> u32 {
    match dep.kind {
        DepKind::RegFlow => {
            let op = ddg.node(dep.src);
            if op.is_load() {
                load_lat.get(&dep.src).copied().unwrap_or_else(|| op.kind.base_latency())
            } else {
                op.kind.base_latency()
            }
        }
        _ => dep.kind.min_separation(),
    }
}

/// Resource-constrained MII: for each functional-unit class, the ops of
/// that class divided by total machine capacity.
#[must_use]
pub fn res_mii(ddg: &Ddg, machine: &MachineConfig) -> u32 {
    let mut counts = [0u32; 3];
    for (_, op) in ddg.iter() {
        if let Some(class) = op.kind.fu_class() {
            counts[class.index()] += 1;
        }
    }
    let caps = [
        machine.fu.integer as u32 * machine.n_clusters as u32,
        machine.fu.fp as u32 * machine.n_clusters as u32,
        machine.fu.memory as u32 * machine.n_clusters as u32,
    ];
    let mut mii = 1;
    for class in FuClass::ALL {
        let i = class.index();
        if caps[i] == 0 && counts[i] > 0 {
            // Unschedulable mix; report an absurd bound so scheduling fails
            // loudly rather than looping forever.
            return u32::MAX;
        }
        if caps[i] > 0 {
            mii = mii.max(counts[i].div_ceil(caps[i]));
        }
    }
    mii
}

/// Whether the graph admits a legal schedule at initiation interval `ii`:
/// no cycle may have positive total weight, where an edge weighs
/// `latency − ii × distance`.
///
/// Uses Bellman–Ford-style longest-path relaxation; divergence beyond
/// `V` rounds signals a positive cycle.
#[must_use]
pub fn feasible_ii(ddg: &Ddg, load_lat: &BTreeMap<NodeId, u32>, ii: u32) -> bool {
    let n = ddg.node_count();
    if n == 0 {
        return true;
    }
    let edges: Vec<(usize, usize, i64)> = ddg
        .deps()
        .map(|(_, d)| {
            let w = i64::from(dep_latency(ddg, &d, load_lat)) - i64::from(ii) * i64::from(d.distance);
            (d.src.index(), d.dst.index(), w)
        })
        .collect();
    let mut dist = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for &(u, v, w) in &edges {
            if dist[u] + w > dist[v] {
                dist[v] = dist[u] + w;
                changed = true;
            }
        }
        if !changed {
            return true;
        }
        if round == n {
            return false;
        }
    }
    true
}

/// Recurrence-constrained MII: the smallest `ii` at which no dependence
/// cycle is violated, found by binary search over [`feasible_ii`]
/// (feasibility is monotone in `ii`).
#[must_use]
pub fn rec_mii(ddg: &Ddg, load_lat: &BTreeMap<NodeId, u32>) -> u32 {
    // An upper bound: sum of all edge latencies (a cycle cannot need more).
    let hi0: i64 = ddg
        .deps()
        .map(|(_, d)| i64::from(dep_latency(ddg, &d, load_lat)))
        .sum::<i64>()
        .max(1);
    let mut lo = 1u32;
    let mut hi = hi0.min(i64::from(u32::MAX - 1)) as u32;
    if !feasible_ii(ddg, load_lat, hi) {
        // Zero-distance positive cycle: no II works.
        return u32::MAX;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible_ii(ddg, load_lat, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// `max(ResMII, RecMII)`.
#[must_use]
pub fn mii(ddg: &Ddg, machine: &MachineConfig, load_lat: &BTreeMap<NodeId, u32>) -> u32 {
    res_mii(ddg, machine).max(rec_mii(ddg, load_lat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_ir::{DdgBuilder, OpKind, Width};

    #[test]
    fn res_mii_counts_fu_pressure() {
        let mut b = DdgBuilder::new();
        // 9 loads on a 4-cluster machine with 1 mem FU each → ceil(9/4) = 3.
        for _ in 0..9 {
            b.load(Width::W4);
        }
        let g = b.finish();
        assert_eq!(res_mii(&g, &MachineConfig::paper_baseline()), 3);
    }

    #[test]
    fn res_mii_is_one_for_small_graphs() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let _ = b.op(OpKind::IntAlu, &[l]);
        let g = b.finish();
        assert_eq!(res_mii(&g, &MachineConfig::paper_baseline()), 1);
    }

    #[test]
    fn rec_mii_of_simple_recurrence() {
        // acc = acc + x, loop-carried at distance 1 with 1-cycle add:
        // cycle weight 1 − ii ≤ 0 → RecMII = 1. With a 2-cycle fp add → 2.
        let mut b = DdgBuilder::new();
        let acc = b.op(OpKind::FpAlu, &[]);
        b.recurrence(acc, acc, 1);
        let g = b.finish();
        assert_eq!(rec_mii(&g, &BTreeMap::new()), 2);
    }

    #[test]
    fn rec_mii_divides_by_distance() {
        // A 2-op cycle with total latency 4 spread over distance 2 → II 2.
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FpAlu, &[]);
        let c = b.op(OpKind::FpAlu, &[a]);
        b.recurrence(c, a, 2);
        let g = b.finish();
        assert_eq!(rec_mii(&g, &BTreeMap::new()), 2);
    }

    #[test]
    fn load_latency_raises_rec_mii() {
        // load -> add -> store -> (MF d=1) -> load.
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let a = b.op(OpKind::IntAlu, &[l]);
        let s = b.store(Width::W4, &[a]);
        b.dep(s, l, DepKind::MemFlow, 1);
        let g = b.finish();
        // Optimistic (1-cycle load): cycle = 1+1+1 = 3 over distance 1.
        assert_eq!(rec_mii(&g, &BTreeMap::new()), 3);
        // Remote-miss load (15 cycles): 15+1+1 = 17.
        let mut lat = BTreeMap::new();
        lat.insert(l, 15);
        assert_eq!(rec_mii(&g, &lat), 17);
    }

    #[test]
    fn feasibility_is_monotone() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let a = b.op(OpKind::IntAlu, &[l]);
        let s = b.store(Width::W4, &[a]);
        b.dep(s, l, DepKind::MemFlow, 1);
        let g = b.finish();
        let lat = BTreeMap::new();
        let r = rec_mii(&g, &lat);
        assert!(!feasible_ii(&g, &lat, r - 1));
        assert!(feasible_ii(&g, &lat, r));
        assert!(feasible_ii(&g, &lat, r + 5));
    }

    #[test]
    fn acyclic_graph_has_rec_mii_one() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W8);
        let m = b.op(OpKind::IntMul, &[l]);
        let _ = b.store(Width::W8, &[m]);
        let g = b.finish();
        assert_eq!(rec_mii(&g, &BTreeMap::new()), 1);
    }

    #[test]
    fn mii_takes_max_of_bounds() {
        let mut b = DdgBuilder::new();
        // Resource pressure: 9 int ops → ResMII 3; plus a latency-4 1-dist
        // recurrence → RecMII 4.
        let first = b.op(OpKind::FpMul, &[]);
        b.recurrence(first, first, 1);
        for _ in 0..9 {
            b.op(OpKind::IntAlu, &[]);
        }
        let g = b.finish();
        let machine = MachineConfig::paper_baseline();
        assert_eq!(res_mii(&g, &machine), 3);
        assert_eq!(rec_mii(&g, &BTreeMap::new()), 4);
        assert_eq!(mii(&g, &machine, &BTreeMap::new()), 4);
    }

    #[test]
    fn sync_edges_cost_zero_latency() {
        let mut b = DdgBuilder::new();
        let c = b.op(OpKind::IntAlu, &[]);
        let s = b.store(Width::W4, &[]);
        b.dep(c, s, DepKind::Sync, 0);
        let g = b.finish();
        let d = g.deps().next().unwrap().1;
        assert_eq!(dep_latency(&g, &d, &BTreeMap::new()), 0);
    }
}
