//! Modulo reservation tables: per-cluster functional units and the shared
//! register-to-register buses.
//!
//! The table is *transactional*: every reservation is recorded in a
//! journal of touched cells, so a failed placement trial is undone with
//! [`Mrt::rollback`] instead of cloning the whole table per trial — the
//! scheduler's innermost loop commits one candidate `(cluster, cycle)`
//! placement per call and used to pay a full `Mrt` clone each time.

use distvliw_arch::MachineConfig;
use distvliw_ir::FuClass;

/// One journaled reservation (or targeted un-reservation — the
/// ejection scheduler releases individual cells of *committed*
/// placements, and those releases must themselves roll back when the
/// surrounding ejection chain is rejected).
#[derive(Debug, Clone, Copy)]
enum Reservation {
    /// A functional-unit slot: cluster, class index, slot.
    Fu(u32, u8, u32),
    /// A register-bus transfer starting at this cycle (covers
    /// `bus_latency` slots).
    Bus(u32),
    /// Inverse of [`Reservation::Fu`]: a released unit slot.
    FuRelease(u32, u8, u32),
    /// Inverse of [`Reservation::Bus`]: a released bus transfer.
    BusRelease(u32),
}

/// A position in the journal, returned by [`Mrt::checkpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint(usize);

/// Tracks resource usage modulo the initiation interval.
#[derive(Debug, Clone)]
pub struct Mrt {
    ii: u32,
    /// `fu[cluster][class][slot]` = operations issued.
    fu: Vec<[Vec<u32>; 3]>,
    fu_cap: [u32; 3],
    /// Reserved operations per cluster (all classes), maintained
    /// incrementally for the MinComs balance tie-break.
    cluster_ops: Vec<u32>,
    /// `bus[slot]` = register-bus occupancy (a transfer occupies
    /// `bus_latency` consecutive slots).
    bus: Vec<u32>,
    bus_cap: u32,
    bus_latency: u32,
    journal: Vec<Reservation>,
}

impl Mrt {
    /// Creates an empty table for the given machine and II.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    #[must_use]
    pub fn new(machine: &MachineConfig, ii: u32) -> Self {
        assert!(ii > 0, "II must be positive");
        let slots = ii as usize;
        Mrt {
            ii,
            fu: (0..machine.n_clusters)
                .map(|_| [vec![0; slots], vec![0; slots], vec![0; slots]])
                .collect(),
            fu_cap: [
                machine.fu.integer as u32,
                machine.fu.fp as u32,
                machine.fu.memory as u32,
            ],
            cluster_ops: vec![0; machine.n_clusters],
            bus: vec![0; slots],
            bus_cap: machine.reg_buses.count as u32,
            bus_latency: machine.reg_buses.latency,
            journal: Vec::new(),
        }
    }

    /// The initiation interval this table was built for.
    #[must_use]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    fn slot(&self, cycle: u32) -> usize {
        (cycle % self.ii) as usize
    }

    /// Marks the current state; reservations made after this point can be
    /// undone with [`Mrt::rollback`] or made permanent with
    /// [`Mrt::commit`].
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.journal.len())
    }

    /// Undoes every reservation made since `mark`.
    ///
    /// # Panics
    ///
    /// Panics if `mark` does not come from this table's current epoch
    /// (i.e. reservations before it were already rolled back).
    pub fn rollback(&mut self, mark: Checkpoint) {
        assert!(mark.0 <= self.journal.len(), "stale checkpoint");
        while self.journal.len() > mark.0 {
            match self.journal.pop().expect("journal entry") {
                Reservation::Fu(cluster, class, slot) => {
                    self.fu[cluster as usize][class as usize][slot as usize] -= 1;
                    self.cluster_ops[cluster as usize] -= 1;
                }
                Reservation::Bus(cycle) => {
                    for i in 0..self.bus_latency {
                        let slot = self.slot(cycle + i);
                        self.bus[slot] -= 1;
                    }
                }
                Reservation::FuRelease(cluster, class, slot) => {
                    self.fu[cluster as usize][class as usize][slot as usize] += 1;
                    self.cluster_ops[cluster as usize] += 1;
                }
                Reservation::BusRelease(cycle) => {
                    for i in 0..self.bus_latency {
                        let slot = self.slot(cycle + i);
                        self.bus[slot] += 1;
                    }
                }
            }
        }
    }

    /// Accepts every reservation made since `mark`, truncating the
    /// journal so the next trial starts clean.
    pub fn commit(&mut self, mark: Checkpoint) {
        assert!(mark.0 <= self.journal.len(), "stale checkpoint");
        self.journal.truncate(mark.0);
    }

    /// Whether a `class` unit in `cluster` is free at `cycle`.
    #[must_use]
    pub fn fu_free(&self, cluster: usize, class: FuClass, cycle: u32) -> bool {
        let slot = self.slot(cycle);
        self.fu[cluster][class.index()][slot] < self.fu_cap[class.index()]
    }

    /// Reserves a `class` unit in `cluster` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the unit is already fully subscribed at that slot.
    pub fn reserve_fu(&mut self, cluster: usize, class: FuClass, cycle: u32) {
        assert!(self.fu_free(cluster, class, cycle), "FU oversubscribed");
        let slot = self.slot(cycle);
        self.fu[cluster][class.index()][slot] += 1;
        self.cluster_ops[cluster] += 1;
        self.journal.push(Reservation::Fu(
            cluster as u32,
            class.index() as u8,
            slot as u32,
        ));
    }

    /// Releases a previously committed `class` reservation in `cluster`
    /// at `cycle` — the ejection scheduler un-reserving an evicted op's
    /// unit. The release is journaled, so rolling back past it restores
    /// the reservation.
    ///
    /// # Panics
    ///
    /// Panics if no reservation is held at that cell.
    pub fn release_fu(&mut self, cluster: usize, class: FuClass, cycle: u32) {
        let slot = self.slot(cycle);
        assert!(
            self.fu[cluster][class.index()][slot] > 0,
            "releasing an empty FU cell"
        );
        self.fu[cluster][class.index()][slot] -= 1;
        self.cluster_ops[cluster] -= 1;
        self.journal.push(Reservation::FuRelease(
            cluster as u32,
            class.index() as u8,
            slot as u32,
        ));
    }

    /// Releases a previously committed bus transfer starting at `cycle`
    /// (all `bus_latency` covered slots). Journaled like
    /// [`Mrt::release_fu`].
    ///
    /// # Panics
    ///
    /// Panics if any covered slot holds no transfer.
    pub fn release_bus(&mut self, cycle: u32) {
        for i in 0..self.bus_latency {
            let slot = self.slot(cycle + i);
            assert!(self.bus[slot] > 0, "releasing an empty bus slot");
            self.bus[slot] -= 1;
        }
        self.journal.push(Reservation::BusRelease(cycle));
    }

    /// Total operations currently reserved in `cluster` (for workload
    /// balance in the MinComs cost function).
    #[must_use]
    pub fn cluster_load(&self, cluster: usize) -> u32 {
        self.cluster_ops[cluster]
    }

    /// Flat snapshot of every occupancy cell (all FU cells in
    /// cluster/class/slot order, then the bus slots, then the per-cluster
    /// op counts). Two tables with equal snapshots hold identical
    /// reservations — the ejection tests use this to prove a rejected
    /// ejection chain rolls back byte-identically.
    #[must_use]
    pub fn cells(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for cluster in &self.fu {
            for class in cluster {
                out.extend_from_slice(class);
            }
        }
        out.extend_from_slice(&self.bus);
        out.extend_from_slice(&self.cluster_ops);
        out
    }

    /// Whether a register-bus transfer may start at `cycle` (it occupies
    /// the bus for the bus latency).
    #[must_use]
    pub fn bus_free(&self, cycle: u32) -> bool {
        (0..self.bus_latency).all(|i| self.bus[self.slot(cycle + i)] < self.bus_cap)
    }

    /// Reserves a register-bus transfer starting at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the buses are full for any covered slot.
    pub fn reserve_bus(&mut self, cycle: u32) {
        assert!(self.bus_free(cycle), "register buses oversubscribed");
        for i in 0..self.bus_latency {
            let slot = self.slot(cycle + i);
            self.bus[slot] += 1;
        }
        self.journal.push(Reservation::Bus(cycle));
    }

    /// Earliest cycle in `[from, to]` at which a bus transfer can start,
    /// if any.
    #[must_use]
    pub fn find_bus_slot(&self, from: u32, to: u32) -> Option<u32> {
        if from > to {
            return None;
        }
        // Only II distinct residues exist; searching further is futile.
        let limit = to.min(from.saturating_add(self.ii));
        (from..=limit).find(|&c| self.bus_free(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    #[test]
    fn fu_capacity_is_per_cluster_per_slot() {
        let mut mrt = Mrt::new(&machine(), 2);
        assert!(mrt.fu_free(0, FuClass::Memory, 0));
        mrt.reserve_fu(0, FuClass::Memory, 0);
        assert!(!mrt.fu_free(0, FuClass::Memory, 0));
        // Same slot, other cluster: free.
        assert!(mrt.fu_free(1, FuClass::Memory, 0));
        // Other slot, same cluster: free.
        assert!(mrt.fu_free(0, FuClass::Memory, 1));
        // Modulo wrap: cycle 2 hits slot 0 again.
        assert!(!mrt.fu_free(0, FuClass::Memory, 2));
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn fu_over_reservation_panics() {
        let mut mrt = Mrt::new(&machine(), 2);
        mrt.reserve_fu(0, FuClass::Integer, 0);
        mrt.reserve_fu(0, FuClass::Integer, 2); // slot 0 again
    }

    #[test]
    fn bus_occupies_latency_slots() {
        let mut mrt = Mrt::new(&machine(), 4);
        // 4 buses, latency 2: starting at cycle 1 occupies slots 1 and 2.
        for _ in 0..4 {
            mrt.reserve_bus(1);
        }
        assert!(!mrt.bus_free(1));
        assert!(!mrt.bus_free(2)); // would need slot 2..3; slot 2 full
        assert!(mrt.bus_free(3)); // slots 3 and 0 free
        assert!(!mrt.bus_free(0)); // slot 0 free but slot 1 full
    }

    #[test]
    fn find_bus_slot_scans_window() {
        let mut mrt = Mrt::new(&machine(), 4);
        for _ in 0..4 {
            mrt.reserve_bus(0);
        }
        // Slots 0 and 1 are saturated; the first start that fits latency 2
        // is cycle 2 (slots 2,3).
        assert_eq!(mrt.find_bus_slot(0, 10), Some(2));
        assert_eq!(mrt.find_bus_slot(3, 3), None); // would cover slots 3,0
        assert_eq!(mrt.find_bus_slot(5, 4), None); // empty window
    }

    #[test]
    fn cluster_load_counts_all_classes() {
        let mut mrt = Mrt::new(&machine(), 3);
        mrt.reserve_fu(2, FuClass::Integer, 0);
        mrt.reserve_fu(2, FuClass::Memory, 1);
        mrt.reserve_fu(1, FuClass::Fp, 1);
        assert_eq!(mrt.cluster_load(2), 2);
        assert_eq!(mrt.cluster_load(1), 1);
        assert_eq!(mrt.cluster_load(0), 0);
    }

    #[test]
    fn ii_one_bus_wraps() {
        let mrt = Mrt::new(&machine(), 1);
        // With II=1 a 2-cycle transfer covers the single slot twice: needs
        // 2 units of the 4-bus capacity.
        assert!(mrt.bus_free(0));
    }

    #[test]
    #[should_panic(expected = "II must be positive")]
    fn zero_ii_rejected() {
        let _ = Mrt::new(&machine(), 0);
    }

    #[test]
    fn rollback_undoes_everything_since_checkpoint() {
        let mut mrt = Mrt::new(&machine(), 4);
        mrt.reserve_fu(0, FuClass::Integer, 0);
        let mark = mrt.checkpoint();
        mrt.reserve_fu(0, FuClass::Integer, 1);
        mrt.reserve_fu(1, FuClass::Memory, 2);
        mrt.reserve_bus(1);
        mrt.rollback(mark);
        // Pre-checkpoint state intact, post-checkpoint state undone.
        assert!(!mrt.fu_free(0, FuClass::Integer, 0));
        assert!(mrt.fu_free(0, FuClass::Integer, 1));
        assert!(mrt.fu_free(1, FuClass::Memory, 2));
        assert_eq!(mrt.cluster_load(0), 1);
        assert_eq!(mrt.cluster_load(1), 0);
        for _ in 0..4 {
            mrt.reserve_bus(1); // all four buses free again
        }
    }

    #[test]
    fn commit_keeps_state_and_truncates_journal() {
        let mut mrt = Mrt::new(&machine(), 4);
        let mark = mrt.checkpoint();
        mrt.reserve_fu(3, FuClass::Fp, 2);
        mrt.reserve_bus(0);
        mrt.commit(mark);
        // Committed reservations survive a later rollback to `mark`.
        mrt.rollback(mark);
        assert!(!mrt.fu_free(3, FuClass::Fp, 2));
        assert_eq!(mrt.cluster_load(3), 1);
        // The committed bus transfer still occupies its slots: three more
        // transfers saturate the four buses at cycle 0.
        for _ in 0..3 {
            mrt.reserve_bus(0);
        }
        assert!(!mrt.bus_free(0));
    }

    #[test]
    fn release_undoes_a_committed_reservation() {
        let mut mrt = Mrt::new(&machine(), 4);
        mrt.reserve_fu(0, FuClass::Memory, 1);
        assert!(!mrt.fu_free(0, FuClass::Memory, 1));
        mrt.release_fu(0, FuClass::Memory, 1);
        assert!(mrt.fu_free(0, FuClass::Memory, 1));
        assert_eq!(mrt.cluster_load(0), 0);
        for _ in 0..4 {
            mrt.reserve_bus(2);
        }
        assert!(!mrt.bus_free(2));
        mrt.release_bus(2);
        assert!(mrt.bus_free(2));
    }

    #[test]
    fn rejected_ejection_chain_rolls_back_byte_identically() {
        // Simulate an ejection chain: targeted releases of committed
        // cells interleaved with fresh reservations, then a rejection.
        // The table must come back *byte-identical*, releases included.
        let mut mrt = Mrt::new(&machine(), 4);
        mrt.reserve_fu(0, FuClass::Memory, 1);
        mrt.reserve_fu(2, FuClass::Integer, 3);
        mrt.reserve_bus(2);
        let before = mrt.cells();
        let mark = mrt.checkpoint();
        mrt.release_fu(0, FuClass::Memory, 1);
        mrt.reserve_fu(0, FuClass::Memory, 5); // same class, other slot
        mrt.release_bus(2);
        mrt.reserve_bus(0);
        mrt.reserve_fu(1, FuClass::Fp, 0);
        assert_ne!(mrt.cells(), before);
        mrt.rollback(mark);
        assert_eq!(mrt.cells(), before, "rollback must restore releases too");
        assert!(!mrt.fu_free(0, FuClass::Memory, 1));
        assert_eq!(mrt.cluster_load(0), 1);
    }

    #[test]
    #[should_panic(expected = "empty FU cell")]
    fn releasing_an_empty_fu_cell_panics() {
        let mut mrt = Mrt::new(&machine(), 2);
        mrt.release_fu(0, FuClass::Integer, 0);
    }

    #[test]
    fn nested_checkpoints_roll_back_in_order() {
        let mut mrt = Mrt::new(&machine(), 2);
        let outer = mrt.checkpoint();
        mrt.reserve_fu(0, FuClass::Integer, 0);
        let inner = mrt.checkpoint();
        mrt.reserve_fu(1, FuClass::Integer, 0);
        mrt.rollback(inner);
        assert!(mrt.fu_free(1, FuClass::Integer, 0));
        assert!(!mrt.fu_free(0, FuClass::Integer, 0));
        mrt.rollback(outer);
        assert!(mrt.fu_free(0, FuClass::Integer, 0));
        assert_eq!(mrt.cluster_load(0), 0);
    }
}
