//! Swing modulo scheduler with cluster assignment for word-interleaved
//! cache clustered VLIW processors (paper Section 2.2).
//!
//! The scheduler targets cyclic code: it overlaps loop iterations at a
//! fixed initiation interval (II), choosing for every operation a cluster
//! and a cycle such that all dependences, functional units and
//! register-bus slots are honored. Cluster assignment follows one of the
//! paper's heuristics ([`Heuristic::PrefClus`] / [`Heuristic::MinComs`])
//! and respects the coherence constraints produced by the MDC or DDGT
//! solutions. Memory latencies are assigned cache-sensitively: each load
//! is scheduled with the largest latency class that does not lengthen the
//! schedule.
//!
//! # Example
//!
//! ```
//! use distvliw_arch::MachineConfig;
//! use distvliw_coherence::SchedConstraints;
//! use distvliw_ir::{DdgBuilder, OpKind, PrefMap, Width};
//! use distvliw_sched::{Heuristic, ModuloScheduler};
//!
//! let mut b = DdgBuilder::new();
//! let load = b.load(Width::W4);
//! let add = b.op(OpKind::IntAlu, &[load]);
//! let _store = b.store(Width::W4, &[add]);
//! let ddg = b.finish();
//!
//! let machine = MachineConfig::paper_baseline();
//! let schedule = ModuloScheduler::new(&machine)
//!     .schedule(&ddg, &SchedConstraints::none(), &PrefMap::new(), Heuristic::MinComs)?;
//! assert_eq!(schedule.ii, 1);
//! # Ok::<(), distvliw_sched::ScheduleError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod dense;
mod eject;
pub mod mii;
mod mrt;
mod pressure;
mod schedule;
mod scheduler;

pub use mrt::Mrt;
pub use schedule::{CopyOp, SchedStats, Schedule, ScheduleError, ScheduledOp, SearchPhase};
pub use scheduler::{Heuristic, ModuloScheduler};
