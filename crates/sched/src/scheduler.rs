//! The swing-style modulo scheduler with integrated cluster assignment.
//!
//! For each candidate initiation interval (II) starting at the MII, nodes
//! are placed in priority order into per-cluster modulo reservation
//! tables. Cluster choice follows the active heuristic (paper
//! Section 2.2):
//!
//! * **PrefClus** — memory instructions go to their *preferred cluster*
//!   (profile-derived); MDC chains go to the chain's average preferred
//!   cluster; everything else minimizes communications with balance as a
//!   tie-break.
//! * **MinComs** — every unconstrained instruction minimizes
//!   register-to-register communications (workload balance as tie-break);
//!   a post-pass then maps virtual clusters to physical clusters so local
//!   accesses are maximized.
//!
//! Register-flow edges that end up crossing clusters materialize explicit
//! copy operations reserved on the register-bus rows of the reservation
//! table — the paper's "communication operations".
//!
//! # Hot-path layout
//!
//! The scheduler re-runs for every (solution × heuristic × II candidate ×
//! latency-class trial) combination, so the inner structures are dense
//! and allocation-free per trial:
//!
//! * every per-node side table ([`distvliw_ir::NodeMap`], [`CopyTable`])
//!   is a flat `NodeId`-indexed vector — no tree maps on the hot path;
//! * a candidate placement reserves resources directly in the [`Mrt`] and
//!   *rolls back* through its reservation journal on failure instead of
//!   cloning the table per trial;
//! * the priority order is computed once per latency assignment (it does
//!   not depend on the II) and shared by the whole II search;
//! * one [`RecMiiSolver`] instance carries its scratch buffers across
//!   every latency-assignment trial.

use std::collections::{BTreeMap, VecDeque};

use distvliw_arch::{LatencyClass, MachineConfig};
use distvliw_coherence::SchedConstraints;
use distvliw_ir::{Ddg, DepKind, NodeId, NodeMap, PrefMap};

use crate::dense::DenseDeps;
use crate::eject::{eject_budget, EvictionRecord};
use crate::mii::{constrained_res_mii, res_mii, RecMiiSolver};
use crate::mrt::Mrt;
use crate::pressure::{range_cost, PressureCtx};
use crate::schedule::{CopyOp, SchedStats, Schedule, ScheduleError, ScheduledOp, SearchPhase};

/// Slack subtracted from a profile-provided II seed before the search
/// opens: covers small graph drift between the run that recorded the
/// seed and the current one, while still skipping the (deterministically
/// re-failing) II range below it.
const SEED_II_SLACK: u32 = 2;

/// The two cluster-assignment heuristics of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Memory instructions to their preferred (profiled) cluster.
    PrefClus,
    /// Minimize communications; post-pass maps virtual→physical clusters.
    MinComs,
}

impl std::fmt::Display for Heuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Heuristic::PrefClus => f.write_str("PrefClus"),
            Heuristic::MinComs => f.write_str("MinComs"),
        }
    }
}

impl std::str::FromStr for Heuristic {
    type Err = String;

    /// Parses the case-insensitive heuristic name used in request bodies
    /// and CLI flags (`prefclus`, `mincoms`).
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "prefclus" => Ok(Heuristic::PrefClus),
            "mincoms" => Ok(Heuristic::MinComs),
            other => Err(format!(
                "unknown heuristic `{other}` (expected prefclus or mincoms)"
            )),
        }
    }
}

/// The read-only inputs shared by every placement attempt of one
/// `schedule` call.
#[derive(Clone, Copy)]
struct SchedCtx<'a> {
    ddg: &'a Ddg,
    dense: &'a DenseDeps,
    constraints: &'a SchedConstraints,
    prefs: &'a PrefMap,
    heuristic: Heuristic,
}

/// Modulo scheduler for one machine configuration.
#[derive(Debug, Clone)]
pub struct ModuloScheduler<'m> {
    machine: &'m MachineConfig,
    relax_latencies: bool,
    ejection: bool,
    ii_seed: Option<u32>,
}

impl<'m> ModuloScheduler<'m> {
    /// Creates a scheduler with cache-sensitive latency assignment and
    /// the ejection (backtracking) fallback enabled.
    #[must_use]
    pub fn new(machine: &'m MachineConfig) -> Self {
        ModuloScheduler {
            machine,
            relax_latencies: true,
            ejection: true,
            ii_seed: None,
        }
    }

    /// Enables or disables the latency-assignment relaxation pass
    /// (paper Section 2.2, reference 21); useful for ablation studies.
    #[must_use]
    pub fn with_latency_relaxation(mut self, on: bool) -> Self {
        self.relax_latencies = on;
        self
    }

    /// Enables or disables the ejection fallback. With it off the search
    /// degenerates to the restart-only scan (one from-scratch placement
    /// pass per II) — kept for ablations and the regression tests that
    /// prove ejection never does worse.
    #[must_use]
    pub fn with_ejection(mut self, on: bool) -> Self {
        self.ejection = on;
        self
    }

    /// Seeds the II search with a previously achieved II for this
    /// (graph, constraints, heuristic) configuration: the search opens
    /// at `seed − 2` (clamped to the MII), skipping the II range a prior
    /// deterministic run already proved unplaceable. An accurate seed
    /// reproduces the unseeded result exactly (the skipped IIs would
    /// fail again identically); callers must key seeds by the full
    /// configuration, since a seed recorded for a *different* graph
    /// could mask a lower feasible II.
    #[must_use]
    pub fn with_ii_seed(mut self, seed: Option<u32>) -> Self {
        self.ii_seed = seed;
        self
    }

    /// Schedules `ddg` under `constraints` with the given heuristic.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InvalidGraph`] for graphs with
    /// zero-distance cycles and [`ScheduleError::NoFeasibleIi`] if no II
    /// up to the search bound admits a placement.
    pub fn schedule(
        &self,
        ddg: &Ddg,
        constraints: &SchedConstraints,
        prefs: &PrefMap,
        heuristic: Heuristic,
    ) -> Result<Schedule, ScheduleError> {
        self.schedule_with_stats(ddg, constraints, prefs, heuristic)
            .map(|(s, _)| s)
    }

    /// Like [`ModuloScheduler::schedule`], additionally returning the
    /// search telemetry ([`SchedStats`]): attempts, ejections, the MII
    /// and the seed that applied. The pipeline records the achieved II
    /// per configuration and feeds it back via
    /// [`ModuloScheduler::with_ii_seed`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ModuloScheduler::schedule`].
    pub fn schedule_with_stats(
        &self,
        ddg: &Ddg,
        constraints: &SchedConstraints,
        prefs: &PrefMap,
        heuristic: Heuristic,
    ) -> Result<(Schedule, SchedStats), ScheduleError> {
        let start = std::time::Instant::now();
        let mut span = distvliw_obs::Span::enter("sched.schedule");
        span.field_u64("nodes", ddg.node_count() as u64);
        let result = self.schedule_inner(ddg, constraints, prefs, heuristic);
        let reg = distvliw_obs::global();
        reg.histogram(
            "sched_schedule_duration_us",
            "Wall time of one schedule() call in microseconds",
        )
        .record_micros(start.elapsed());
        match &result {
            Ok((_, stats)) => {
                span.field_u64("ii", u64::from(stats.ii));
                span.field_u64("mii", u64::from(stats.mii));
                span.field_u64("iis_tried", u64::from(stats.iis_tried));
                span.field_u64("ejections", stats.ejections);
                reg.counter("sched_schedules_total", "Completed schedule() calls")
                    .inc();
                reg.counter(
                    "sched_iis_tried_total",
                    "Candidate initiation intervals tried across all searches",
                )
                .add(u64::from(stats.iis_tried));
                reg.counter(
                    "sched_placement_attempts_total",
                    "Node placement attempts across all searches",
                )
                .add(stats.placement_attempts);
                reg.counter(
                    "sched_ejections_total",
                    "Nodes ejected by the backtracking placement fallback",
                )
                .add(stats.ejections);
                if stats.seeded_at.is_some() {
                    reg.counter(
                        "sched_seeded_schedules_total",
                        "Schedules whose II search opened from a stored seed",
                    )
                    .inc();
                }
            }
            Err(_) => {
                span.field_str("error", "unschedulable");
                reg.counter(
                    "sched_schedule_failures_total",
                    "schedule() calls returning an error",
                )
                .inc();
            }
        }
        result
    }

    fn schedule_inner(
        &self,
        ddg: &Ddg,
        constraints: &SchedConstraints,
        prefs: &PrefMap,
        heuristic: Heuristic,
    ) -> Result<(Schedule, SchedStats), ScheduleError> {
        let min_ii = constraints.min_ii.max(1);
        if ddg.has_zero_distance_cycle() {
            return Err(ScheduleError::InvalidGraph);
        }
        if ddg.node_count() == 0 {
            // Honor a constraint-mandated minimum II even for the
            // trivial schedule.
            return Ok((
                Schedule {
                    ii: min_ii,
                    ops: BTreeMap::new(),
                    copies: Vec::new(),
                    span: min_ii,
                    n_clusters: self.machine.n_clusters,
                },
                SchedStats {
                    ii: min_ii,
                    mii: min_ii,
                    ..SchedStats::default()
                },
            ));
        }
        let dense = DenseDeps::new(ddg);
        let ctx = SchedCtx {
            ddg,
            dense: &dense,
            constraints,
            prefs,
            heuristic,
        };

        // Phase 1: optimistic latencies (local hit for every load).
        let local_hit = self.machine.latency_of(LatencyClass::LocalHit);
        let mut classes: NodeMap<LatencyClass> =
            ddg.loads().map(|l| (l, LatencyClass::LocalHit)).collect();
        let mut lat = self.cycles_of(&classes);
        let mut rec_solver = RecMiiSolver::from_dense(&dense);

        // Every II below the MII is provably infeasible. The
        // constraint-aware resource bound is what kills the degenerate
        // blowup: an MDC chain colocated in one cluster used to start
        // the scan at the machine-wide ResMII and fail one full
        // placement pass per II until the single-cluster bound was
        // reached by brute force.
        let mii0 = res_mii(ddg, self.machine)
            .max(rec_solver.rec_mii(&lat))
            .max(constrained_res_mii(ddg, self.machine, constraints))
            .max(min_ii);
        if mii0 == u32::MAX {
            return Err(ScheduleError::InvalidGraph);
        }
        // Seed from a prior run of this configuration, keeping the
        // bound sound (never below the MII).
        let seeded_at = match self.ii_seed {
            Some(seed) => {
                let start = seed.saturating_sub(SEED_II_SLACK);
                (start > mii0).then_some(start)
            }
            None => None,
        };
        let start_ii = seeded_at.unwrap_or(mii0);
        // MDC chains can serialize all memory ops of a chain in one
        // cluster, inflating the achievable II up to n_clusters × ResMII.
        let max_ii = mii0
            .saturating_mul(self.machine.n_clusters as u32)
            .saturating_add(ddg.node_count() as u32)
            .saturating_add(32)
            .max(start_ii);

        // The priority order depends only on the latency assignment, not
        // the II: compute it once for the whole II search.
        let mut counters = SearchCounters::default();
        let mut order = priority_order(ddg, &dense, &lat);
        let mut found: Option<(u32, Placement)> = None;
        let mut used_eject = false;
        for ii in start_ii..=max_ii {
            counters.iis_tried += 1;
            let mut trial_span = distvliw_obs::Span::enter("sched.ii_trial");
            trial_span.field_u64("ii", u64::from(ii));
            if let Some(p) = self.try_place(ctx, &lat, &order, ii, &mut counters) {
                trial_span.field_str("outcome", "placed");
                found = Some((ii, p));
                break;
            }
            if self.ejection {
                let eject_span = distvliw_obs::Span::enter("sched.eject");
                let placed = self.try_place_eject(ctx, &lat, &order, ii, &mut counters);
                drop(eject_span);
                if let Some(p) = placed {
                    trial_span.field_str("outcome", "ejected");
                    found = Some((ii, p));
                    used_eject = true;
                    break;
                }
            }
            trial_span.field_str("outcome", "infeasible");
        }
        let Some((ii0, mut best)) = found else {
            return Err(ScheduleError::NoFeasibleIi {
                mii: mii0,
                max_tried: max_ii,
                phase: SearchPhase::Optimistic,
                attempts: counters.attempts,
                first_blocked: counters.first_blocked,
            });
        };
        let span_budget = best.span.saturating_add(4 * ii0);
        // A placement pass under relaxed latencies only gets the
        // ejection fallback if phase 1 needed it at this II — when the
        // plain pass carried phase 1, relaxation trials stay plain and
        // byte-identical to the pre-ejection scheduler. Only the
        // *joint* relaxation trials (at most three) get the fallback:
        // the per-load refinement multiplies by the load count, and a
        // full-budget ejection pass per failed refinement trial is the
        // kind of degenerate search-cost blowup this change exists to
        // remove.
        let relax_try = |order: &[NodeId], lat: &NodeMap<u32>, counters: &mut SearchCounters| {
            self.try_place(ctx, lat, order, ii0, counters).or_else(|| {
                (used_eject && self.ejection)
                    .then(|| self.try_place_eject(ctx, lat, order, ii0, counters))
                    .flatten()
            })
        };

        // Phase 2: cache-sensitive latency assignment — raise load
        // latencies as far as compute time (II and schedule length) allows.
        if self.relax_latencies && !classes.is_empty() {
            let loads: Vec<NodeId> = classes.keys().collect();
            // Joint pass: find the largest uniform class that still fits.
            let mut uniform = LatencyClass::LocalHit;
            for class in [
                LatencyClass::RemoteMiss,
                LatencyClass::LocalMiss,
                LatencyClass::RemoteHit,
            ] {
                if self.machine.latency_of(class) <= local_hit {
                    continue;
                }
                let saved_classes = classes.clone();
                let saved_lat = lat.clone();
                for &l in &loads {
                    classes.insert(l, class);
                    lat.insert(l, self.machine.latency_of(class));
                }
                if rec_solver.feasible_at(&lat, ii0) {
                    order = priority_order(ddg, &dense, &lat);
                    if let Some(p) = relax_try(&order, &lat, &mut counters) {
                        // Compute time is dominated by the II; allow the
                        // pipeline fill (span) to grow by a bounded number
                        // of stages, as the paper's latency assignment
                        // does.
                        if p.span <= span_budget {
                            best = p;
                            uniform = class;
                            break;
                        }
                    }
                }
                classes = saved_classes;
                lat = saved_lat;
            }
            // Per-load refinement above the uniform class.
            if uniform != LatencyClass::RemoteMiss {
                for &load in &loads {
                    for class in [
                        LatencyClass::RemoteMiss,
                        LatencyClass::LocalMiss,
                        LatencyClass::RemoteHit,
                    ] {
                        if self.machine.latency_of(class) <= self.machine.latency_of(classes[load])
                        {
                            break;
                        }
                        let old_class = classes[load];
                        let old_lat = lat[load];
                        classes.insert(load, class);
                        lat.insert(load, self.machine.latency_of(class));
                        if rec_solver.feasible_at(&lat, ii0) {
                            order = priority_order(ddg, &dense, &lat);
                            // Plain pass only — see `relax_try`.
                            if let Some(p) = self.try_place(ctx, &lat, &order, ii0, &mut counters) {
                                if p.span <= span_budget {
                                    best = p;
                                    break;
                                }
                            }
                        }
                        classes.insert(load, old_class);
                        lat.insert(load, old_lat);
                    }
                }
            }
        }

        let stats = SchedStats {
            ii: ii0,
            mii: mii0,
            iis_tried: counters.iis_tried,
            placement_attempts: counters.attempts,
            ejections: counters.ejections,
            seeded_at,
            max_reg_pressure: counters.max_pressure,
        };
        let mut schedule = Schedule {
            ii: ii0,
            ops: best
                .placed
                .iter()
                .map(|(n, &(cluster, start))| {
                    (
                        n,
                        ScheduledOp {
                            node: n,
                            cluster,
                            start,
                            assumed_class: classes.get(n).copied(),
                        },
                    )
                })
                .collect(),
            copies: best.copies,
            span: best.span,
            n_clusters: self.machine.n_clusters,
        };

        if heuristic == Heuristic::MinComs {
            let perm = best_physical_mapping(ddg, &schedule, prefs, self.machine.n_clusters);
            schedule.permute_clusters(&perm);
        }
        Ok((schedule, stats))
    }

    fn cycles_of(&self, classes: &NodeMap<LatencyClass>) -> NodeMap<u32> {
        classes
            .iter()
            .map(|(n, &c)| (n, self.machine.latency_of(c)))
            .collect()
    }

    fn placer<'a>(
        &'a self,
        ctx: SchedCtx<'a>,
        load_lat: &'a NodeMap<u32>,
        ii: u32,
        counters: &'a mut SearchCounters,
    ) -> Placer<'a> {
        Placer {
            machine: self.machine,
            ctx,
            load_lat,
            ii,
            bus_lat: self.machine.reg_buses.latency,
            mrt: Mrt::new(self.machine, ii),
            placed: NodeMap::with_capacity(ctx.ddg.node_count()),
            copies: Vec::new(),
            copy_map: CopyTable::new(ctx.ddg.node_count(), self.machine.n_clusters),
            group_cluster: ctx.constraints.group_target.clone(),
            planned: Vec::new(),
            ranges: vec![NO_RANGE; ctx.ddg.node_count() * self.machine.n_clusters],
            stage_regs: vec![0; self.machine.n_clusters],
            counters,
        }
    }

    /// One from-scratch placement pass at a fixed II. Returns `None`
    /// when any node cannot be placed.
    fn try_place(
        &self,
        ctx: SchedCtx<'_>,
        load_lat: &NodeMap<u32>,
        order: &[NodeId],
        ii: u32,
        counters: &mut SearchCounters,
    ) -> Option<Placement> {
        let mut placer = self.placer(ctx, load_lat, ii, counters);
        for &n in order {
            if !placer.place(n) {
                placer.counters.first_blocked = Some(n);
                return None;
            }
        }
        placer.into_placement()
    }

    /// The ejection pass at a fixed II: like [`ModuloScheduler::try_place`],
    /// but a node that cannot be placed evicts the ops blocking it (see
    /// `crate::eject`), which re-enter the worklist at the back. Fails
    /// the II once the ejection budget is spent or a node cannot be
    /// forced into any cluster.
    fn try_place_eject(
        &self,
        ctx: SchedCtx<'_>,
        load_lat: &NodeMap<u32>,
        order: &[NodeId],
        ii: u32,
        counters: &mut SearchCounters,
    ) -> Option<Placement> {
        let mut budget = eject_budget(ctx.ddg.node_count());
        let mut placer = self.placer(ctx, load_lat, ii, counters);
        let mut queue: VecDeque<NodeId> = order.iter().copied().collect();
        let mut floor: NodeMap<u32> = NodeMap::new();
        while let Some(n) = queue.pop_front() {
            if placer.place(n) {
                continue;
            }
            let Some(evicted) = placer.force_place(n, &mut floor) else {
                placer.counters.first_blocked = Some(n);
                return None;
            };
            placer.counters.ejections += evicted.len() as u64;
            let cost = evicted.len() as u64;
            if cost > budget {
                placer.counters.first_blocked = Some(n);
                return None;
            }
            budget -= cost;
            queue.extend(evicted);
        }
        placer.into_placement()
    }
}

/// Accumulated search telemetry, shared by every pass of one
/// `schedule_with_stats` call.
#[derive(Debug, Default)]
struct SearchCounters {
    /// Candidate `(cluster, cycle)` commit trials.
    attempts: u64,
    /// Ops evicted by the ejection passes.
    ejections: u64,
    /// IIs attempted.
    iis_tried: u32,
    /// Peak accepted per-cluster register pressure.
    max_pressure: u32,
    /// First unplaceable node of the most recent failed pass.
    first_blocked: Option<NodeId>,
}

/// Dense `(node, cluster) → copy start cycle` table: which clusters
/// already receive a copy of each producer's value, and when the transfer
/// starts.
struct CopyTable {
    n_clusters: usize,
    slots: Vec<Option<u32>>,
}

impl CopyTable {
    fn new(n_nodes: usize, n_clusters: usize) -> Self {
        CopyTable {
            n_clusters,
            slots: vec![None; n_nodes * n_clusters],
        }
    }

    fn get(&self, producer: NodeId, cluster: usize) -> Option<u32> {
        self.slots[producer.index() * self.n_clusters + cluster]
    }

    fn insert(&mut self, producer: NodeId, cluster: usize, start: u32) {
        self.slots[producer.index() * self.n_clusters + cluster] = Some(start);
    }

    fn remove(&mut self, producer: NodeId, cluster: usize) {
        self.slots[producer.index() * self.n_clusters + cluster] = None;
    }
}

/// A planned (not yet accepted) inter-cluster copy of one commit attempt.
struct PlannedCopy {
    producer: NodeId,
    from: usize,
    to: usize,
    start: u32,
}

/// Sentinel for an absent live range in the placer's flat
/// `(node × cluster)` range table (costs zero registers).
const NO_RANGE: (i64, i64) = (i64::MAX, i64::MIN);

/// The mutable state of one placement attempt at a fixed II.
struct Placer<'a> {
    machine: &'a MachineConfig,
    ctx: SchedCtx<'a>,
    load_lat: &'a NodeMap<u32>,
    ii: u32,
    bus_lat: u32,
    mrt: Mrt,
    placed: NodeMap<(usize, u32)>,
    copies: Vec<CopyOp>,
    copy_map: CopyTable,
    group_cluster: BTreeMap<u32, usize>,
    /// Reused across commit attempts (cleared each time).
    planned: Vec<PlannedCopy>,
    /// Live range of each value per cluster (`node × n_clusters +
    /// cluster`, [`NO_RANGE`] when absent) — the incremental state of
    /// the stage-aware pressure model.
    ranges: Vec<(i64, i64)>,
    /// Per-cluster stage-crossing register demand
    /// (`Σ range_cost(ranges)` — see `crate::pressure`).
    stage_regs: Vec<u64>,
    /// Search telemetry, shared with the surrounding II search.
    counters: &'a mut SearchCounters,
}

impl Placer<'_> {
    /// Places `n` in the best feasible cluster/cycle, or reports failure.
    fn place(&mut self, n: NodeId) -> bool {
        let candidates = self.candidate_clusters(n);
        for c in candidates {
            let Some((est, lst)) = self.start_bounds(n, c) else {
                continue;
            };
            let hi = lst.min(est + i64::from(self.ii) - 1);
            let mut t = est;
            while t <= hi {
                let start = u32::try_from(t).expect("start bounded");
                if self.commit(n, c, start) {
                    if let Some(&g) = self.ctx.constraints.colocate.get(&n) {
                        self.group_cluster.entry(g).or_insert(c);
                    }
                    return true;
                }
                t += 1;
            }
        }
        false
    }

    /// Candidate clusters for `n`, best first.
    fn candidate_clusters(&self, n: NodeId) -> Vec<usize> {
        let constraints = self.ctx.constraints;
        if let Some(&pin) = constraints.pinned.get(&n) {
            return vec![pin];
        }
        if let Some(g) = constraints.colocate.get(&n) {
            if let Some(&c) = self.group_cluster.get(g) {
                return vec![c];
            }
        }
        let op = self.ctx.ddg.node(n);
        if self.ctx.heuristic == Heuristic::PrefClus && op.is_memory() {
            if let Some(info) = op.mem_id().and_then(|m| self.ctx.prefs.get(&m)) {
                // Preferred cluster first, then the rest by profile count.
                let mut order: Vec<usize> = (0..self.machine.n_clusters).collect();
                order.sort_by_key(|&c| (std::cmp::Reverse(info.counts()[c]), c));
                return order;
            }
        }
        // MinComs cost: copies needed if placed in c, then current load.
        let mut rf_neighbors: Vec<usize> = Vec::new();
        for d in self.ctx.dense.in_deps(n) {
            if d.kind == DepKind::RegFlow {
                if let Some(&(pc, _)) = self.placed.get(d.src) {
                    rf_neighbors.push(pc);
                }
            }
        }
        for d in self.ctx.dense.out_deps(n) {
            if d.kind == DepKind::RegFlow {
                if let Some(&(sc, _)) = self.placed.get(d.dst) {
                    rf_neighbors.push(sc);
                }
            }
        }
        let mut order: Vec<usize> = (0..self.machine.n_clusters).collect();
        order.sort_by_key(|&c| {
            let comms = rf_neighbors.iter().filter(|&&x| x != c).count();
            (comms, self.mrt.cluster_load(c), c)
        });
        order
    }

    /// Earliest start for `n` in cluster `c` from placed predecessors
    /// only (clamped ≥ 0). Shared by the bounded normal placement and
    /// the forced placement of the ejection pass, which ignores
    /// successors and evicts the ones it violates instead.
    fn pred_est(&self, n: NodeId, c: usize) -> i64 {
        let bus_lat = i64::from(self.bus_lat);
        let ii = i64::from(self.ii);
        let mut est = 0i64;
        for d in self.ctx.dense.in_deps(n) {
            if d.src == n {
                continue; // self edges are covered by RecMII
            }
            let Some(&(pc, ps)) = self.placed.get(d.src) else {
                continue;
            };
            let lat = i64::from(d.latency(self.load_lat));
            let dist = i64::from(d.distance);
            let bound = if d.kind == DepKind::RegFlow && pc != c {
                match self.copy_map.get(d.src, c) {
                    Some(s0) => i64::from(s0) + bus_lat - ii * dist,
                    None => i64::from(ps) + lat + bus_lat - ii * dist,
                }
            } else {
                i64::from(ps) + lat - ii * dist
            };
            est = est.max(bound);
        }
        est
    }

    /// Earliest/latest start for `n` in cluster `c` given current
    /// placements (as i64: latest may be unbounded, earliest clamped ≥ 0).
    fn start_bounds(&self, n: NodeId, c: usize) -> Option<(i64, i64)> {
        let bus_lat = i64::from(self.bus_lat);
        let ii = i64::from(self.ii);
        let est = self.pred_est(n, c);
        let mut lst = i64::from(u32::MAX / 2);
        for d in self.ctx.dense.out_deps(n) {
            if d.dst == n {
                continue;
            }
            let Some(&(sc, ss)) = self.placed.get(d.dst) else {
                continue;
            };
            let lat = i64::from(d.latency(self.load_lat));
            let dist = i64::from(d.distance);
            let bound = if d.kind == DepKind::RegFlow && sc != c {
                i64::from(ss) - lat - bus_lat + ii * dist
            } else {
                i64::from(ss) - lat + ii * dist
            };
            lst = lst.min(bound);
        }
        if lst < est {
            None
        } else {
            Some((est, lst))
        }
    }

    /// Attempts to commit `n` at `(c, start)`: checks the functional unit
    /// and plans every required inter-cluster copy, reserving buses
    /// directly in the reservation table. On failure the journal rolls
    /// every touched cell back — nothing is cloned either way.
    fn commit(&mut self, n: NodeId, c: usize, start: u32) -> bool {
        // Both are `Copy` references outliving `self`: iterating the graph
        // below holds no borrow of `self`, so the reservation table and
        // side tables stay freely mutable inside the loops.
        let ddg = self.ctx.ddg;
        let dense = self.ctx.dense;
        let load_lat = self.load_lat;
        self.counters.attempts += 1;
        let class = ddg.node(n).kind.fu_class();
        if let Some(class) = class {
            if !self.mrt.fu_free(c, class, start) {
                return false;
            }
        }

        // Plan copies for cross-cluster register flow, in both directions.
        // Copies move the producer's same-iteration value; consumers at
        // distance d read the copy's value d iterations later.
        let mark = self.mrt.checkpoint();
        self.planned.clear();
        let ii_i = i64::from(self.ii);
        let bus_lat_i = i64::from(self.bus_lat);
        for d in dense.in_deps(n) {
            if d.kind != DepKind::RegFlow || d.src == n {
                continue;
            }
            let Some(&(pc, ps)) = self.placed.get(d.src) else {
                continue;
            };
            if pc == c || self.copy_map.get(d.src, c).is_some() {
                continue;
            }
            if self
                .planned
                .iter()
                .any(|p| p.producer == d.src && p.to == c)
            {
                continue;
            }
            let ready = i64::from(ps) + i64::from(d.latency(load_lat));
            let deadline = i64::from(start) - bus_lat_i + ii_i * i64::from(d.distance);
            if deadline < ready || ready < 0 {
                self.mrt.rollback(mark);
                return false;
            }
            let Some(slot) = self
                .mrt
                .find_bus_slot(ready as u32, deadline.min(ready + ii_i) as u32)
            else {
                self.mrt.rollback(mark);
                return false;
            };
            self.mrt.reserve_bus(slot);
            self.planned.push(PlannedCopy {
                producer: d.src,
                from: pc,
                to: c,
                start: slot,
            });
        }
        let n_lat = self.out_latency(n);
        for d in dense.out_deps(n) {
            if d.kind != DepKind::RegFlow || d.dst == n {
                continue;
            }
            let Some(&(sc, ss)) = self.placed.get(d.dst) else {
                continue;
            };
            if sc == c || self.copy_map.get(n, sc).is_some() {
                continue;
            }
            if self.planned.iter().any(|p| p.producer == n && p.to == sc) {
                continue;
            }
            let ready = i64::from(start) + n_lat;
            let deadline = i64::from(ss) - bus_lat_i + ii_i * i64::from(d.distance);
            if deadline < ready || ready < 0 {
                self.mrt.rollback(mark);
                return false;
            }
            let Some(slot) = self
                .mrt
                .find_bus_slot(ready as u32, deadline.min(ready + ii_i) as u32)
            else {
                self.mrt.rollback(mark);
                return false;
            };
            self.mrt.reserve_bus(slot);
            self.planned.push(PlannedCopy {
                producer: n,
                from: c,
                to: sc,
                start: slot,
            });
        }

        // Stage-aware register pressure gate: the placement and its
        // planned copies must not push any cluster's stage-crossing
        // register demand past the budget. Checking here — instead of
        // letting the overflow fester until it shows up as inexplicable
        // bus-slot failures — is what makes pressure a first-class
        // placement constraint. The demand is maintained incrementally
        // (journaled live-range extensions); a rejected placement undoes
        // its extensions exactly. The placement entry inserted here is
        // the one that persists on acceptance — only the pressure-reject
        // path removes it.
        self.placed.insert(n, (c, start));
        let mut rlog: Vec<(usize, (i64, i64))> = Vec::new();
        self.apply_pressure(n, c, start, &mut rlog);
        let cap = u64::from(self.machine.regs_per_cluster as u32);
        let peak = self.stage_regs.iter().copied().max().unwrap_or(0);
        if peak > cap {
            self.undo_ranges(&mut rlog);
            self.placed.remove(n);
            self.mrt.rollback(mark);
            return false;
        }
        self.counters.max_pressure = self
            .counters
            .max_pressure
            .max(u32::try_from(peak).unwrap_or(u32::MAX));

        // All feasible: accept the journaled bus reservations.
        self.mrt.commit(mark);
        if let Some(class) = class {
            self.mrt.reserve_fu(c, class, start);
        }
        for p in self.planned.drain(..) {
            self.copy_map.insert(p.producer, p.to, p.start);
            self.copies.push(CopyOp {
                producer: p.producer,
                from_cluster: p.from,
                to_cluster: p.to,
                start: p.start,
            });
        }
        true
    }

    /// Cycles after issue at which `n`'s result register is written —
    /// the producer latency commit charges on outgoing register flow.
    fn out_latency(&self, n: NodeId) -> i64 {
        let ddg = self.ctx.ddg;
        i64::from(if ddg.node(n).is_load() {
            self.load_lat.get(n).copied().unwrap_or(1)
        } else {
            ddg.node(n).kind.base_latency()
        })
    }

    /// The model context for the from-scratch pressure mirror in
    /// `crate::pressure` (debug assertions and eviction recomputes).
    fn pressure_ctx(&self) -> PressureCtx<'_> {
        PressureCtx {
            ddg: self.ctx.ddg,
            dense: self.ctx.dense,
            load_lat: self.load_lat,
            bus_lat: self.bus_lat,
            ii: self.ii,
            n_clusters: self.machine.n_clusters,
        }
    }

    /// Copy lookup covering both accepted copies and the ones planned by
    /// the in-flight commit.
    fn copy_lookup(&self, p: NodeId, k: usize) -> Option<u32> {
        self.copy_map.get(p, k).or_else(|| {
            self.planned
                .iter()
                .find(|pc| pc.producer == p && pc.to == k)
                .map(|pc| pc.start)
        })
    }

    /// Writes one live-range cell, keeping the per-cluster demand sums
    /// in step and journaling the previous value into `log`.
    fn set_range(
        &mut self,
        node: NodeId,
        cluster: usize,
        new: (i64, i64),
        log: &mut Vec<(usize, (i64, i64))>,
    ) {
        let idx = node.index() * self.machine.n_clusters + cluster;
        let old = self.ranges[idx];
        if old == new {
            return;
        }
        log.push((idx, old));
        let sums = &mut self.stage_regs[cluster];
        *sums -= range_cost(old.0, old.1, self.ii);
        *sums += range_cost(new.0, new.1, self.ii);
        self.ranges[idx] = new;
    }

    /// Extends (or creates) the live range of `node`'s value in
    /// `cluster` to cover `[def, last]`.
    fn extend_range(
        &mut self,
        node: NodeId,
        cluster: usize,
        def: i64,
        last: i64,
        log: &mut Vec<(usize, (i64, i64))>,
    ) {
        let idx = node.index() * self.machine.n_clusters + cluster;
        let (d0, l0) = self.ranges[idx];
        let new = if (d0, l0) == NO_RANGE {
            (def, last.max(def))
        } else {
            (d0.min(def), l0.max(last))
        };
        self.set_range(node, cluster, new, log);
    }

    /// Applies the live-range updates of committing `n` at `(c, start)`
    /// (planned copies included) to the incremental pressure state.
    fn apply_pressure(
        &mut self,
        n: NodeId,
        c: usize,
        start: u32,
        log: &mut Vec<(usize, (i64, i64))>,
    ) {
        let dense = self.ctx.dense;
        let ii = i64::from(self.ii);
        let bus_lat = i64::from(self.bus_lat);
        // n's own value: home range plus ranges in every cluster its
        // placed consumers read it from.
        if dense.out_deps(n).iter().any(|d| d.kind == DepKind::RegFlow) {
            let def = i64::from(start) + self.out_latency(n);
            self.extend_range(n, c, def, def, log);
            for d in dense.out_deps(n) {
                if d.kind != DepKind::RegFlow {
                    continue;
                }
                let Some(&(qc, qs)) = self.placed.get(d.dst) else {
                    continue;
                };
                let use_at = i64::from(qs) + ii * i64::from(d.distance);
                if qc == c {
                    self.extend_range(n, c, def, use_at, log);
                } else if let Some(s0) = self.copy_lookup(n, qc) {
                    self.extend_range(n, c, def, i64::from(s0), log);
                    self.extend_range(n, qc, i64::from(s0) + bus_lat, use_at, log);
                }
            }
        }
        // Values n reads: extend their ranges to this read (and, for a
        // copy planned by this commit, the home range to the launch).
        for d in dense.in_deps(n) {
            if d.kind != DepKind::RegFlow || d.src == n {
                continue;
            }
            let p = d.src;
            let Some(&(pc, ps)) = self.placed.get(p) else {
                continue;
            };
            let use_at = i64::from(start) + ii * i64::from(d.distance);
            let home_def = i64::from(ps) + self.out_latency(p);
            if pc == c {
                self.extend_range(p, c, home_def, use_at, log);
            } else if let Some(s0) = self.copy_lookup(p, c) {
                self.extend_range(p, pc, home_def, i64::from(s0), log);
                self.extend_range(p, c, i64::from(s0) + bus_lat, use_at, log);
            }
        }
    }

    /// Recomputes the live range of `p`'s value in `cluster` from
    /// scratch (after an eviction shrank or removed contributions),
    /// journaling the overwritten cell.
    fn recompute_value_range(
        &mut self,
        p: NodeId,
        cluster: usize,
        log: &mut Vec<(usize, (i64, i64))>,
    ) {
        let ctx = self.pressure_ctx();
        let lookup = |q: NodeId, k: usize| self.copy_map.get(q, k);
        let new = crate::pressure::value_range(&ctx, &self.placed, &lookup, p, cluster)
            .unwrap_or(NO_RANGE);
        self.set_range(p, cluster, new, log);
    }

    /// Undoes journaled live-range writes, newest first.
    fn undo_ranges(&mut self, log: &mut Vec<(usize, (i64, i64))>) {
        while let Some((idx, old)) = log.pop() {
            let cluster = idx % self.machine.n_clusters;
            let cur = self.ranges[idx];
            let sums = &mut self.stage_regs[cluster];
            *sums -= range_cost(cur.0, cur.1, self.ii);
            *sums += range_cost(old.0, old.1, self.ii);
            self.ranges[idx] = old;
        }
    }

    /// Forced placement of `n` (the ejection path): pick a start bounded
    /// by placed predecessors only, evict whatever blocks it — the
    /// same-slot functional-unit occupant and every placed successor
    /// whose separation the start would violate — and commit. Returns
    /// the evicted nodes for re-enqueueing, or `None` when no cluster
    /// admits `n` even with evictions (e.g. the register buses or the
    /// pressure budget stay exhausted).
    fn force_place(&mut self, n: NodeId, floor: &mut NodeMap<u32>) -> Option<Vec<NodeId>> {
        for c in self.candidate_clusters(n) {
            // One forced shot per cluster, at the earliest
            // predecessor-legal slot (Rau's rule): the monotone floor —
            // "previous start + 1" whenever `n` is forced again at this
            // II — provides the progress a slot scan would, at a
            // fraction of the cost on hopeless IIs. A wider scan here
            // multiplies into every failed II of every latency trial.
            let est = self.pred_est(n, c).max(0);
            let base = est.max(i64::from(floor.get(n).copied().unwrap_or(0)));
            let Ok(start) = u32::try_from(base) else {
                continue;
            };
            let mark = self.mrt.checkpoint();
            let mut rec = EvictionRecord::default();
            self.evict_conflicts(n, c, start, &mut rec);
            if self.commit(n, c, start) {
                if let Some(&g) = self.ctx.constraints.colocate.get(&n) {
                    self.group_cluster.entry(g).or_insert(c);
                }
                floor.insert(n, start + 1);
                return Some(rec.evicted().collect());
            }
            self.unevict(rec, mark);
        }
        None
    }

    /// Evicts everything that blocks placing `n` at `(c, start)`: enough
    /// same-class ops in the target modulo slot to free a unit, and
    /// every placed successor whose dependence the start would violate.
    /// Predecessor constraints never need evictions — the forced start
    /// is at or after `pred_est`.
    fn evict_conflicts(&mut self, n: NodeId, c: usize, start: u32, rec: &mut EvictionRecord) {
        if let Some(class) = self.ctx.ddg.node(n).kind.fu_class() {
            while !self.mrt.fu_free(c, class, start) {
                let slot = start % self.ii;
                let victim = self
                    .placed
                    .iter()
                    .find(|&(m, &(mc, ms))| {
                        mc == c
                            && ms % self.ii == slot
                            && self.ctx.ddg.node(m).kind.fu_class() == Some(class)
                    })
                    .map(|(m, _)| m);
                match victim {
                    Some(m) => self.evict(m, rec),
                    // Unreachable (every FU reservation belongs to a
                    // placed op), but never loop on it.
                    None => break,
                }
            }
        }
        let ii = i64::from(self.ii);
        let bus_lat = i64::from(self.bus_lat);
        let n_lat = self.out_latency(n);
        let mut victims: Vec<NodeId> = Vec::new();
        for d in self.ctx.dense.out_deps(n) {
            if d.dst == n {
                continue;
            }
            let Some(&(sc, ss)) = self.placed.get(d.dst) else {
                continue;
            };
            let dist = i64::from(d.distance);
            let violated = if d.kind == DepKind::RegFlow && sc != c {
                // Mirror of commit's copy deadline: the transfer must
                // fit between the value being ready and the consumer
                // reading it.
                i64::from(ss) - bus_lat + ii * dist < i64::from(start) + n_lat
            } else {
                let lat = i64::from(d.latency(self.load_lat));
                i64::from(ss) + ii * dist < i64::from(start) + lat
            };
            if violated && !victims.contains(&d.dst) {
                victims.push(d.dst);
            }
        }
        for m in victims {
            if self.placed.contains_key(m) {
                self.evict(m, rec);
            }
        }
    }

    /// Removes `m` from the schedule: releases its functional unit,
    /// drops the copies that moved its value, drops copies *to* it that
    /// no other consumer in its cluster still needs, and clears its
    /// colocation-group binding when it was the group's last placed
    /// member (so a re-placed chain may pick a fresh cluster). Every
    /// release is journaled; `unevict` plus a rollback restores the
    /// exact prior state.
    fn evict(&mut self, m: NodeId, rec: &mut EvictionRecord) {
        let (mc, ms) = self.placed.remove(m).expect("evicting a placed op");
        if let Some(class) = self.ctx.ddg.node(m).kind.fu_class() {
            self.mrt.release_fu(mc, class, ms);
        }
        // Copies of m's value (m is the producer).
        let mut removed: Vec<CopyOp> = Vec::new();
        self.copies.retain(|cp| {
            if cp.producer == m {
                removed.push(*cp);
                false
            } else {
                true
            }
        });
        // Copies into m's cluster that only m consumed.
        for d in self.ctx.dense.in_deps(m) {
            if d.kind != DepKind::RegFlow || d.src == m {
                continue;
            }
            let p = d.src;
            let Some(&(pc, _)) = self.placed.get(p) else {
                continue;
            };
            if pc == mc || self.copy_map.get(p, mc).is_none() {
                continue;
            }
            let needed = self.ctx.dense.out_deps(p).iter().any(|e| {
                e.kind == DepKind::RegFlow
                    && e.dst != m
                    && self.placed.get(e.dst).is_some_and(|&(qc, _)| qc == mc)
            });
            if !needed {
                if let Some(pos) = self
                    .copies
                    .iter()
                    .position(|cp| cp.producer == p && cp.to_cluster == mc)
                {
                    removed.push(self.copies.remove(pos));
                }
            }
        }
        for cp in &removed {
            self.mrt.release_bus(cp.start);
            self.copy_map.remove(cp.producer, cp.to_cluster);
        }
        // Live-range bookkeeping: m's value disappears everywhere, the
        // values m read shrink by this use, and producers whose copy was
        // dropped lose the launch from their home range.
        for k in 0..self.machine.n_clusters {
            self.set_range(m, k, NO_RANGE, &mut rec.ranges);
        }
        let dense = self.ctx.dense;
        for &d in dense.in_deps(m) {
            if d.kind != DepKind::RegFlow || d.src == m {
                continue;
            }
            if self.placed.contains_key(d.src) {
                self.recompute_value_range(d.src, mc, &mut rec.ranges);
            }
        }
        for cp in &removed {
            if cp.producer != m && self.placed.contains_key(cp.producer) {
                self.recompute_value_range(cp.producer, cp.from_cluster, &mut rec.ranges);
            }
        }
        if let Some(&g) = self.ctx.constraints.colocate.get(&m) {
            if !self.ctx.constraints.group_target.contains_key(&g) {
                let still_placed = self
                    .ctx
                    .constraints
                    .colocate
                    .iter()
                    .any(|(&q, &qg)| qg == g && q != m && self.placed.contains_key(q));
                if !still_placed {
                    if let Some(cl) = self.group_cluster.remove(&g) {
                        rec.groups.push((g, cl));
                    }
                }
            }
        }
        rec.copies.append(&mut removed);
        rec.nodes.push((m, mc, ms));
    }

    /// Restores everything a rejected ejection chain evicted: the
    /// reservation table rolls back through its journal (releases
    /// included), the side tables restore from the record.
    fn unevict(&mut self, mut rec: EvictionRecord, mark: crate::mrt::Checkpoint) {
        self.mrt.rollback(mark);
        self.undo_ranges(&mut rec.ranges);
        for cp in rec.copies {
            self.copy_map.insert(cp.producer, cp.to_cluster, cp.start);
            self.copies.push(cp);
        }
        for (g, cl) in rec.groups {
            self.group_cluster.insert(g, cl);
        }
        for (m, mc, ms) in rec.nodes {
            self.placed.insert(m, (mc, ms));
        }
    }

    /// Finalizes a fully placed attempt.
    fn into_placement(self) -> Option<Placement> {
        #[cfg(debug_assertions)]
        {
            // The incremental pressure accounting must agree with the
            // from-scratch model on every completed pass.
            let ctx = self.pressure_ctx();
            let lookup = |q: NodeId, k: usize| self.copy_map.get(q, k);
            for c in 0..self.machine.n_clusters {
                debug_assert_eq!(
                    crate::pressure::cluster_pressure(&ctx, &self.placed, &lookup, c),
                    self.stage_regs[c],
                    "incremental pressure accounting diverged in cluster {c}"
                );
            }
        }
        let span = self
            .placed
            .values()
            .map(|&(_, s)| s + 1)
            .chain(self.copies.iter().map(|c| c.start + self.bus_lat))
            .max()
            .unwrap_or(1)
            .max(self.ii);
        Some(Placement {
            placed: self.placed,
            copies: self.copies,
            span,
        })
    }
}

/// Internal placement result.
#[derive(Debug)]
struct Placement {
    placed: NodeMap<(usize, u32)>,
    copies: Vec<CopyOp>,
    span: u32,
}

/// Topological order over zero-distance edges, prioritizing nodes with the
/// longest latency path to a sink (critical path first).
///
/// The ready set is a max-heap keyed by `(height, Reverse(node))` — the
/// same node the previous sort-then-pop implementation selected (highest
/// height, lowest id on ties), at O(log n) per step instead of a re-sort.
fn priority_order(ddg: &Ddg, dense: &DenseDeps, load_lat: &NodeMap<u32>) -> Vec<NodeId> {
    let n = ddg.node_count();
    // Heights by reverse topological DP over zero-distance edges.
    let mut indeg = vec![0u32; n];
    let mut outdeg = vec![0u32; n];
    for i in 0..n {
        for d in dense.out_deps(NodeId(i as u32)) {
            if d.distance == 0 && d.src != d.dst {
                indeg[d.dst.index()] += 1;
                outdeg[d.src.index()] += 1;
            }
        }
    }
    // Reverse topo: heights.
    let mut height = vec![0i64; n];
    let mut stack: Vec<usize> = (0..n).filter(|&i| outdeg[i] == 0).collect();
    let mut rem_out = outdeg.clone();
    while let Some(i) = stack.pop() {
        for d in dense.in_deps(NodeId(i as u32)) {
            if d.distance != 0 || d.src == d.dst {
                continue;
            }
            let j = d.src.index();
            let h = height[i] + i64::from(d.latency(load_lat));
            height[j] = height[j].max(h);
            rem_out[j] -= 1;
            if rem_out[j] == 0 {
                stack.push(j);
            }
        }
    }
    // Forward topo with max-height priority.
    let mut ready: std::collections::BinaryHeap<(i64, std::cmp::Reverse<usize>)> = (0..n)
        .filter(|&i| indeg[i] == 0)
        .map(|i| (height[i], std::cmp::Reverse(i)))
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut rem_in = indeg;
    while let Some((_, std::cmp::Reverse(i))) = ready.pop() {
        order.push(NodeId(i as u32));
        for d in dense.out_deps(NodeId(i as u32)) {
            if d.distance != 0 || d.src == d.dst {
                continue;
            }
            let j = d.dst.index();
            rem_in[j] -= 1;
            if rem_in[j] == 0 {
                ready.push((height[j], std::cmp::Reverse(j)));
            }
        }
    }
    debug_assert_eq!(
        order.len(),
        n,
        "graph must be acyclic over zero-distance edges"
    );
    order
}

/// The MinComs post-pass: choose the virtual→physical cluster permutation
/// that maximizes profiled local accesses (paper Section 2.2).
///
/// Up to 8 clusters this enumerates all permutations in Heap's-algorithm
/// order — the original behaviour, pinned byte-identical by the golden
/// snapshots. Beyond 8 the factorial blows up (16! ≈ 2×10¹³), so larger
/// sweep machines solve the same problem exactly with the O(n³)
/// Hungarian assignment instead.
fn best_physical_mapping(
    ddg: &Ddg,
    schedule: &Schedule,
    prefs: &PrefMap,
    n_clusters: usize,
) -> Vec<usize> {
    // gain[v][p] = profiled accesses that become local if virtual cluster
    // v is mapped to physical cluster p.
    let mut gain = vec![vec![0u64; n_clusters]; n_clusters];
    for n in ddg.mem_nodes() {
        let Some(op) = schedule.ops.get(&n) else {
            continue;
        };
        let Some(info) = ddg.node(n).mem_id().and_then(|m| prefs.get(&m)) else {
            continue;
        };
        for (g, &count) in gain[op.cluster].iter_mut().zip(info.counts()) {
            *g += count;
        }
    }
    if n_clusters > 8 {
        return max_assignment(&gain);
    }
    let mut best: Vec<usize> = (0..n_clusters).collect();
    let mut best_score = 0u64;
    let mut perm: Vec<usize> = (0..n_clusters).collect();
    permute(&mut perm, 0, &mut |p| {
        let score: u64 = (0..n_clusters).map(|v| gain[v][p[v]]).sum();
        if score > best_score {
            best_score = score;
            best = p.to_vec();
        }
    });
    best
}

/// Exact maximum-weight assignment (the Hungarian algorithm with
/// potentials, O(n³)): returns `perm` with `perm[v] = p` maximizing
/// `Σ gain[v][perm[v]]`. Deterministic for a given matrix.
fn max_assignment(gain: &[Vec<u64>]) -> Vec<usize> {
    let n = gain.len();
    let inf = i64::MAX / 4;
    // Minimize the negated gains; u/v are row/column potentials, p[j] is
    // the row matched to column j (0 = unmatched), way[j] the previous
    // column on the augmenting path. Indices are 1-based so slot 0 can
    // serve as the virtual start column.
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = -(gain[i0 - 1][j - 1] as i64) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut perm = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            perm[p[j] - 1] = j - 1;
        }
    }
    perm
}

/// Heap's algorithm over `slice[k..]`.
fn permute(slice: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == slice.len() {
        visit(slice);
        return;
    }
    for i in k..slice.len() {
        slice.swap(k, i);
        permute(slice, k + 1, visit);
        slice.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_coherence::{find_chains, transform};
    use distvliw_ir::{DdgBuilder, OpKind, PrefInfo, Width};

    fn machine() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    /// Asserts every dependence of `ddg` holds in `s` (copy latency
    /// included for cross-cluster register flow).
    fn assert_valid(ddg: &Ddg, s: &Schedule, m: &MachineConfig) {
        for (_, d) in ddg.deps() {
            if d.src == d.dst {
                continue;
            }
            let a = s.op(d.src);
            let b = s.op(d.dst);
            let lat = match d.kind {
                DepKind::RegFlow => {
                    let base = if ddg.node(d.src).is_load() {
                        a.assumed_class.map_or(1, |c| m.latency_of(c))
                    } else {
                        ddg.node(d.src).kind.base_latency()
                    };
                    if a.cluster != b.cluster {
                        base + m.reg_buses.latency
                    } else {
                        base
                    }
                }
                k => k.min_separation(),
            };
            assert!(
                i64::from(b.start) + i64::from(s.ii) * i64::from(d.distance)
                    >= i64::from(a.start) + i64::from(lat),
                "violated {d:?}: {a:?} -> {b:?} at II {}",
                s.ii
            );
        }
        // FU capacity: at most one op per class per cluster per II slot.
        let mut usage: BTreeMap<(usize, usize, u32), u32> = BTreeMap::new();
        for op in s.ops.values() {
            let Some(class) = ddg.node(op.node).kind.fu_class() else {
                continue;
            };
            *usage
                .entry((op.cluster, class.index(), op.start % s.ii))
                .or_default() += 1;
        }
        for ((c, class, slot), count) in usage {
            assert!(
                count <= 1,
                "cluster {c} class {class} slot {slot} oversubscribed"
            );
        }
    }

    fn simple_graph() -> Ddg {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let a = b.op(OpKind::IntAlu, &[l]);
        let _s = b.store(Width::W4, &[a]);
        b.finish()
    }

    #[test]
    fn schedules_simple_chain() {
        let g = simple_graph();
        let s = ModuloScheduler::new(&machine())
            .schedule(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        assert_eq!(s.ii, 1);
        assert_eq!(s.ops.len(), 3);
        assert_valid(&g, &s, &machine());
    }

    #[test]
    fn latency_relaxation_spreads_consumers() {
        // With relaxation, an isolated load-use pair gets the largest
        // latency class because nothing else constrains the span... unless
        // span would grow; here span grows, so the class stays small but
        // the schedule remains valid. Just check both modes are valid.
        let g = simple_graph();
        for relax in [false, true] {
            let s = ModuloScheduler::new(&machine())
                .with_latency_relaxation(relax)
                .schedule(
                    &g,
                    &SchedConstraints::none(),
                    &PrefMap::new(),
                    Heuristic::MinComs,
                )
                .unwrap();
            assert_valid(&g, &s, &machine());
        }
    }

    #[test]
    fn mem_pressure_raises_ii() {
        let mut b = DdgBuilder::new();
        for _ in 0..9 {
            b.load(Width::W4);
        }
        let g = b.finish();
        let s = ModuloScheduler::new(&machine())
            .schedule(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        assert!(s.ii >= 3, "9 loads / 4 mem FUs needs II >= 3, got {}", s.ii);
        assert_valid(&g, &s, &machine());
    }

    #[test]
    fn mdc_chain_shares_cluster() {
        let mut b = DdgBuilder::new();
        let l1 = b.load(Width::W4);
        let l2 = b.load(Width::W4);
        let st = b.store(Width::W4, &[l1, l2]);
        b.dep(l1, st, DepKind::MemAnti, 0);
        b.dep(l2, st, DepKind::MemAnti, 0);
        let g = b.finish();
        let chains = find_chains(&g);
        let constraints = SchedConstraints::for_mdc(&chains, &g, None, 4);
        let s = ModuloScheduler::new(&machine())
            .schedule(&g, &constraints, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        let c = s.op(l1).cluster;
        assert_eq!(s.op(l2).cluster, c);
        assert_eq!(s.op(st).cluster, c);
        // 3 memory ops serialized on one memory FU → II at least 3.
        assert!(s.ii >= 3);
        assert_valid(&g, &s, &machine());
    }

    #[test]
    fn prefclus_sends_memory_to_preferred_cluster() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let _a = b.op(OpKind::IntAlu, &[l]);
        let g = b.finish();
        let mut prefs = PrefMap::new();
        prefs.insert(
            g.node(l).mem_id().unwrap(),
            PrefInfo::from_counts(vec![0, 0, 90, 10]),
        );
        let s = ModuloScheduler::new(&machine())
            .schedule(&g, &SchedConstraints::none(), &prefs, Heuristic::PrefClus)
            .unwrap();
        assert_eq!(s.op(l).cluster, 2);
        assert_valid(&g, &s, &machine());
    }

    #[test]
    fn mdc_prefclus_uses_chain_average() {
        let mut b = DdgBuilder::new();
        let l1 = b.load(Width::W4);
        let l2 = b.load(Width::W4);
        b.dep(l1, l2, DepKind::MemAnti, 0); // artificial chain of two loads
        let g = b.finish();
        let mut prefs = PrefMap::new();
        prefs.insert(
            g.node(l1).mem_id().unwrap(),
            PrefInfo::from_counts(vec![60, 0, 40, 0]),
        );
        prefs.insert(
            g.node(l2).mem_id().unwrap(),
            PrefInfo::from_counts(vec![0, 0, 70, 30]),
        );
        let chains = find_chains(&g);
        let constraints = SchedConstraints::for_mdc(&chains, &g, Some(&prefs), 4);
        let s = ModuloScheduler::new(&machine())
            .schedule(&g, &constraints, &prefs, Heuristic::PrefClus)
            .unwrap();
        // Merged counts {60, 0, 110, 30} → cluster 2 for both.
        assert_eq!(s.op(l1).cluster, 2);
        assert_eq!(s.op(l2).cluster, 2);
        assert_valid(&g, &s, &machine());
    }

    #[test]
    fn ddgt_instances_cover_all_clusters() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let a = b.op(OpKind::IntAlu, &[l]);
        let st = b.store_to(g_mem(0), Width::W4, &[a]);
        b.dep(st, l, DepKind::MemFlow, 1);
        let mut g = b.finish();
        let report = transform(&mut g, 4);
        let constraints = SchedConstraints::for_ddgt(&report);
        let s = ModuloScheduler::new(&machine())
            .schedule(&g, &constraints, &PrefMap::new(), Heuristic::PrefClus)
            .unwrap();
        let group = &report.replica_groups[0];
        let mut clusters: Vec<usize> = group.instances.iter().map(|&i| s.op(i).cluster).collect();
        clusters.sort_unstable();
        assert_eq!(clusters, vec![0, 1, 2, 3]);
        // The producer value is broadcast: at least 3 copies.
        assert!(s.comm_ops() >= 3, "copies: {}", s.comm_ops());
        assert_valid(&g, &s, &machine());
    }

    fn g_mem(id: u32) -> distvliw_ir::MemId {
        distvliw_ir::MemId(id)
    }

    #[test]
    fn cross_cluster_flow_materializes_copies() {
        // Two chained memory ops pinned to different clusters.
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let s = b.store(Width::W4, &[l]);
        let g = b.finish();
        let mut constraints = SchedConstraints::none();
        constraints.pinned.insert(l, 0);
        constraints.pinned.insert(s, 3);
        let sched = ModuloScheduler::new(&machine())
            .schedule(&g, &constraints, &PrefMap::new(), Heuristic::PrefClus)
            .unwrap();
        assert_eq!(sched.op(l).cluster, 0);
        assert_eq!(sched.op(s).cluster, 3);
        assert_eq!(sched.comm_ops(), 1);
        let copy = sched.copies[0];
        assert_eq!((copy.from_cluster, copy.to_cluster), (0, 3));
        // Store issues only after the copy arrives.
        assert!(sched.op(s).start >= copy.start + machine().reg_buses.latency);
        assert_valid(&g, &sched, &machine());
    }

    #[test]
    fn copies_are_deduplicated_per_destination_cluster() {
        // One producer, two consumers in the same remote cluster → 1 copy.
        let mut b = DdgBuilder::new();
        let p = b.op(OpKind::IntAlu, &[]);
        let c1 = b.op(OpKind::IntAlu, &[p]);
        let c2 = b.op(OpKind::IntAlu, &[p]);
        let g = b.finish();
        let mut constraints = SchedConstraints::none();
        constraints.pinned.insert(p, 0);
        constraints.pinned.insert(c1, 1);
        constraints.pinned.insert(c2, 1);
        let s = ModuloScheduler::new(&machine())
            .schedule(&g, &constraints, &PrefMap::new(), Heuristic::PrefClus)
            .unwrap();
        assert_eq!(s.comm_ops(), 1);
        assert_valid(&g, &s, &machine());
    }

    #[test]
    fn recurrence_limits_ii() {
        let mut b = DdgBuilder::new();
        let acc = b.op(OpKind::FpMul, &[]); // 4-cycle producer
        b.recurrence(acc, acc, 1);
        let g = b.finish();
        let s = ModuloScheduler::new(&machine())
            .schedule(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        assert_eq!(s.ii, 4);
    }

    #[test]
    fn empty_graph_schedules_trivially() {
        let g = Ddg::new();
        let s = ModuloScheduler::new(&machine())
            .schedule(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        assert_eq!(s.ops.len(), 0);
        assert_eq!(s.ii, 1);
    }

    #[test]
    fn empty_graph_honors_constraint_minimum_ii() {
        // Regression: the empty-graph early return used to hardcode
        // ii = 1 without consulting the constraints.
        let g = Ddg::new();
        let constraints = SchedConstraints::none().with_min_ii(7);
        let s = ModuloScheduler::new(&machine())
            .schedule(&g, &constraints, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        assert_eq!(s.ii, 7);
        assert!(s.span >= s.ii);
        // And a non-empty graph may not undercut it either.
        let g = simple_graph();
        let s = ModuloScheduler::new(&machine())
            .schedule(&g, &constraints, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        assert!(s.ii >= 7);
        assert_valid(&g, &s, &machine());
    }

    #[test]
    fn register_pressure_cap_is_enforced_during_placement() {
        // A producer feeding a consumer across a long recurrence-forced
        // II stretch: with a generous register file the value simply
        // stays live across stages; with a 1-register cluster budget
        // the stage-crossing range is rejected during placement and the
        // schedule must adapt (or the II grow) — never silently
        // overflow.
        let mut b = DdgBuilder::new();
        // A latency-4 self-recurrence at distance 1 forces II ≥ 4.
        let acc = b.op(OpKind::FpMul, &[]);
        b.recurrence(acc, acc, 1);
        // A value consumed far later: producer → long dependent chain.
        let p = b.op(OpKind::IntAlu, &[]);
        let mut chain = p;
        for _ in 0..12 {
            chain = b.op(OpKind::IntMul, &[chain]);
        }
        let _sink = b.op(OpKind::IntAlu, &[p, chain]);
        let g = b.finish();

        let roomy = machine();
        let s = ModuloScheduler::new(&roomy)
            .schedule(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        assert_valid(&g, &s, &roomy);
        let (_, roomy_stats) = ModuloScheduler::new(&roomy)
            .schedule_with_stats(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        assert!(
            roomy_stats.max_reg_pressure >= 1,
            "the long-lived value must register as stage-crossing pressure"
        );

        let tight = machine().with_regs_per_cluster(1);
        let (ts, tight_stats) = ModuloScheduler::new(&tight)
            .schedule_with_stats(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        assert_valid(&g, &ts, &tight);
        assert!(
            tight_stats.max_reg_pressure <= 1,
            "no accepted placement may exceed the register budget: {}",
            tight_stats.max_reg_pressure
        );
    }

    #[test]
    fn disabling_ejection_matches_on_easy_graphs() {
        // Where the plain pass succeeds at the first II, the ejection
        // scheduler must be byte-identical to the restart-only search.
        let g = simple_graph();
        let on = ModuloScheduler::new(&machine())
            .schedule(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        let off = ModuloScheduler::new(&machine())
            .with_ejection(false)
            .schedule(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        assert_eq!(on, off);
    }

    #[test]
    fn stats_report_the_search_effort() {
        let g = simple_graph();
        let (s, stats) = ModuloScheduler::new(&machine())
            .schedule_with_stats(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        assert_eq!(stats.ii, s.ii);
        assert_eq!(stats.mii, 1);
        assert!(stats.iis_tried >= 1);
        assert!(stats.placement_attempts >= s.ops.len() as u64);
        assert_eq!(stats.ejections, 0);
        assert_eq!(stats.seeded_at, None);
    }

    #[test]
    fn seeding_skips_the_low_ii_scan() {
        // An accurate seed must reproduce the cold result exactly, and
        // a seed at or below the MII is ignored (the bound stays
        // sound).
        let mut b = DdgBuilder::new();
        for _ in 0..9 {
            b.load(Width::W4);
        }
        let g = b.finish();
        let cold = ModuloScheduler::new(&machine())
            .schedule(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        let (warm, stats) = ModuloScheduler::new(&machine())
            .with_ii_seed(Some(cold.ii))
            .schedule_with_stats(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        assert_eq!(warm, cold);
        assert_eq!(stats.seeded_at, None, "seed − slack is clamped to the MII");
        let (low, stats) = ModuloScheduler::new(&machine())
            .with_ii_seed(Some(1))
            .schedule_with_stats(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        assert_eq!(low, cold);
        assert_eq!(stats.seeded_at, None);
    }

    #[test]
    fn mincoms_postpass_maximizes_local_accesses() {
        // A single memory op whose profile prefers cluster 3; MinComs
        // places it anywhere, the post-pass must relabel its cluster to 3.
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let _ = b.op(OpKind::IntAlu, &[l]);
        let g = b.finish();
        let mut prefs = PrefMap::new();
        prefs.insert(
            g.node(l).mem_id().unwrap(),
            PrefInfo::from_counts(vec![0, 0, 0, 100]),
        );
        let s = ModuloScheduler::new(&machine())
            .schedule(&g, &SchedConstraints::none(), &prefs, Heuristic::MinComs)
            .unwrap();
        assert_eq!(s.op(l).cluster, 3);
        assert_valid(&g, &s, &machine());
    }

    #[test]
    fn sync_edges_are_honored() {
        let mut b = DdgBuilder::new();
        let cons = b.op(OpKind::IntAlu, &[]);
        let st = b.store(Width::W4, &[]);
        b.dep(cons, st, DepKind::Sync, 0);
        let g = b.finish();
        let s = ModuloScheduler::new(&machine())
            .schedule(
                &g,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        assert!(s.op(st).start >= s.op(cons).start);
        assert_valid(&g, &s, &machine());
    }

    #[test]
    fn figure3_after_ddgt_schedules_on_four_clusters() {
        // End-to-end: the paper's Figure 3 graph through DDGT, then
        // scheduled; all dependences and pins must hold.
        let mut b = DdgBuilder::new();
        let n1 = b.load(Width::W4);
        let n2 = b.load(Width::W4);
        let n3 = b.store(Width::W4, &[]);
        let n4 = b.store(Width::W4, &[n1]);
        let _n5 = b.op(OpKind::IntAlu, &[n2]);
        b.dep(n1, n3, DepKind::MemAnti, 0);
        b.dep(n1, n4, DepKind::MemAnti, 0);
        b.dep(n2, n3, DepKind::MemAnti, 0);
        b.dep(n2, n4, DepKind::MemAnti, 0);
        b.dep(n3, n4, DepKind::MemOut, 0);
        b.dep(n4, n3, DepKind::MemOut, 1);
        b.dep(n3, n1, DepKind::MemFlow, 1);
        b.dep(n4, n2, DepKind::MemFlow, 1);
        let mut g = b.finish();
        let report = transform(&mut g, 4);
        let constraints = SchedConstraints::for_ddgt(&report);
        let s = ModuloScheduler::new(&machine())
            .schedule(&g, &constraints, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        assert_valid(&g, &s, &machine());
        // Loads stayed free (not replicated), stores cover all clusters.
        for group in &report.replica_groups {
            let mut cl: Vec<usize> = group.instances.iter().map(|&i| s.op(i).cluster).collect();
            cl.sort_unstable();
            assert_eq!(cl, vec![0, 1, 2, 3]);
        }
    }

    /// Deterministic pseudo-random gain matrices for the assignment
    /// tests (SplitMix64).
    fn gain_matrix(n: usize, seed: u64) -> Vec<Vec<u64>> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|_| (0..n).map(|_| next() % 1000).collect())
            .collect()
    }

    #[test]
    fn hungarian_assignment_matches_brute_force_optimum() {
        for n in 2..=7 {
            for seed in 0..4 {
                let gain = gain_matrix(n, seed * 31 + n as u64);
                let perm = max_assignment(&gain);
                // A valid permutation.
                let mut seen = vec![false; n];
                for &p in &perm {
                    assert!(!seen[p], "column {p} assigned twice");
                    seen[p] = true;
                }
                let score: u64 = (0..n).map(|v| gain[v][perm[v]]).sum();
                // Brute force over all permutations finds the optimum.
                let mut best = 0u64;
                let mut ids: Vec<usize> = (0..n).collect();
                permute(&mut ids, 0, &mut |p| {
                    best = best.max((0..n).map(|v| gain[v][p[v]]).sum());
                });
                assert_eq!(score, best, "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn large_machine_assignment_is_fast_and_valid() {
        // 16! permutations are unenumerable; the Hungarian path must
        // solve a 16-cluster matrix instantly and optimally (checked
        // against the trivial diagonal-dominant construction).
        let n = 16;
        let mut gain = gain_matrix(n, 7);
        for (v, row) in gain.iter_mut().enumerate() {
            row[(v + 3) % n] += 1_000_000; // planted optimum: shift by 3
        }
        let perm = max_assignment(&gain);
        for (v, &p) in perm.iter().enumerate() {
            assert_eq!(p, (v + 3) % n, "virtual cluster {v}");
        }
    }
}
