//! Stage-aware register pressure (tentpole of the ejection-scheduler
//! change).
//!
//! A modulo schedule overlaps `span / ii` iterations, so a value whose
//! live range crosses stage boundaries is simultaneously live in several
//! in-flight iterations: a range spanning `s` cycles consumes `s / ii`
//! *extra* registers beyond the baseline one the cluster's bypass/port
//! structure covers. The placement loop charges every value against each
//! cluster that holds it — where it is produced, and every cluster it is
//! copied into — and rejects placements that would push a cluster's
//! stage-crossing demand past `MachineConfig::regs_per_cluster`. Before
//! this model existed the overflow was never represented at all:
//! pressure built up silently and surfaced only indirectly, as the
//! bus-slot failures of the copy storm a real register allocator would
//! have spilled into.
//!
//! The placer maintains the demand *incrementally* (`Placer::extend` /
//! `recompute_value_range` in `scheduler.rs`, journaled for rollback);
//! this module holds the model definition as a from-scratch recompute,
//! used by the placer's debug assertion and the unit tests.

use distvliw_ir::{Ddg, DepKind, NodeId, NodeMap};

use crate::dense::DenseDeps;

/// Read-only inputs of one pressure query.
pub(crate) struct PressureCtx<'a> {
    /// The graph being scheduled.
    pub ddg: &'a Ddg,
    /// Dense edge snapshot (register-flow edges drive live ranges).
    pub dense: &'a DenseDeps,
    /// Load latency assignment of the current trial.
    pub load_lat: &'a NodeMap<u32>,
    /// Register-bus transfer latency.
    pub bus_lat: u32,
    /// The initiation interval of the current trial.
    pub ii: u32,
    /// Number of clusters.
    pub n_clusters: usize,
}

impl PressureCtx<'_> {
    /// Cycles after issue at which `p`'s result register is written
    /// (mirrors the placer's `out_latency`).
    pub(crate) fn def_latency(&self, p: NodeId) -> i64 {
        let op = self.ddg.node(p);
        i64::from(if op.is_load() {
            self.load_lat.get(p).copied().unwrap_or(1)
        } else {
            op.kind.base_latency()
        })
    }
}

/// The stage-crossing register cost of one live range `[def, last]`:
/// `span / ii` registers, zero for a range contained in one stage.
pub(crate) fn range_cost(def: i64, last: i64, ii: u32) -> u64 {
    if last <= def {
        return 0; // empty or absent (sentinel) range
    }
    let span = last.saturating_sub(def) as u64;
    span / u64::from(ii.max(1))
}

/// The live range of `p`'s value in `cluster` under `placed`, or `None`
/// when the value never lives there.
///
/// In the producer's cluster the value is live from definition to its
/// last local read or outgoing copy launch; in a copied-to cluster from
/// copy arrival to the last read there. `copy_start` resolves the copy
/// table.
pub(crate) fn value_range(
    ctx: &PressureCtx<'_>,
    placed: &NodeMap<(usize, u32)>,
    copy_start: &dyn Fn(NodeId, usize) -> Option<u32>,
    p: NodeId,
    cluster: usize,
) -> Option<(i64, i64)> {
    let &(pc, ps) = placed.get(p)?;
    let out = ctx.dense.out_deps(p);
    if !out.iter().any(|d| d.kind == DepKind::RegFlow) {
        return None; // produces no register value (e.g. a store)
    }
    let ii = i64::from(ctx.ii.max(1));
    let def = if pc == cluster {
        i64::from(ps) + ctx.def_latency(p)
    } else {
        i64::from(copy_start(p, cluster)?) + i64::from(ctx.bus_lat)
    };
    let mut last = def;
    for d in out {
        if d.kind != DepKind::RegFlow {
            continue;
        }
        let Some(&(qc, qs)) = placed.get(d.dst) else {
            continue;
        };
        if qc == cluster {
            last = last.max(i64::from(qs) + ii * i64::from(d.distance));
        }
    }
    if pc == cluster {
        for k in 0..ctx.n_clusters {
            if k != cluster {
                if let Some(s) = copy_start(p, k) {
                    last = last.max(i64::from(s));
                }
            }
        }
    }
    Some((def, last))
}

/// Stage-crossing register demand of `cluster` under `placed`:
/// `Σ range_cost` over every value live in the cluster. The from-scratch
/// mirror of the placer's incremental accounting.
#[cfg_attr(not(debug_assertions), allow(dead_code))] // debug-assert + test mirror
pub(crate) fn cluster_pressure(
    ctx: &PressureCtx<'_>,
    placed: &NodeMap<(usize, u32)>,
    copy_start: &dyn Fn(NodeId, usize) -> Option<u32>,
    cluster: usize,
) -> u64 {
    let mut regs = 0u64;
    for (p, _) in placed.iter() {
        if let Some((def, last)) = value_range(ctx, placed, copy_start, p, cluster) {
            regs += range_cost(def, last, ctx.ii);
        }
    }
    regs
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_ir::{DdgBuilder, OpKind, Width};

    fn ctx<'a>(
        ddg: &'a Ddg,
        dense: &'a DenseDeps,
        lat: &'a NodeMap<u32>,
        ii: u32,
    ) -> PressureCtx<'a> {
        PressureCtx {
            ddg,
            dense,
            load_lat: lat,
            bus_lat: 2,
            ii,
            n_clusters: 4,
        }
    }

    #[test]
    fn same_stage_values_are_free() {
        let mut b = DdgBuilder::new();
        let p = b.op(OpKind::IntAlu, &[]);
        let q = b.op(OpKind::IntAlu, &[p]);
        let g = b.finish();
        let dense = DenseDeps::new(&g);
        let lat = NodeMap::new();
        let mut placed = NodeMap::new();
        placed.insert(p, (0usize, 0u32));
        placed.insert(q, (0usize, 1u32));
        let none = |_: NodeId, _: usize| None;
        let c = ctx(&g, &dense, &lat, 4);
        assert_eq!(cluster_pressure(&c, &placed, &none, 0), 0);
        assert_eq!(cluster_pressure(&c, &placed, &none, 1), 0);
    }

    #[test]
    fn stage_crossing_ranges_cost_span_over_ii() {
        // Producer defines at cycle 1 (1-cycle ALU), consumer reads at
        // cycle 9, II 4: the span of 8 cycles crosses two stage
        // boundaries → 2 registers.
        let mut b = DdgBuilder::new();
        let p = b.op(OpKind::IntAlu, &[]);
        let q = b.op(OpKind::IntAlu, &[p]);
        let g = b.finish();
        let dense = DenseDeps::new(&g);
        let lat = NodeMap::new();
        let mut placed = NodeMap::new();
        placed.insert(p, (0usize, 0u32));
        placed.insert(q, (0usize, 9u32));
        let none = |_: NodeId, _: usize| None;
        let c = ctx(&g, &dense, &lat, 4);
        assert_eq!(cluster_pressure(&c, &placed, &none, 0), 2);
    }

    #[test]
    fn copies_charge_the_destination_cluster() {
        // Producer in cluster 0, consumer in cluster 1 fed by a copy
        // launched at cycle 2 (arrives 4) and read at cycle 7, II 2:
        // home range [1, 2] is free, remote range [4, 7] crosses one
        // boundary.
        let mut b = DdgBuilder::new();
        let p = b.op(OpKind::IntAlu, &[]);
        let q = b.op(OpKind::IntAlu, &[p]);
        let g = b.finish();
        let dense = DenseDeps::new(&g);
        let lat = NodeMap::new();
        let mut placed = NodeMap::new();
        placed.insert(p, (0usize, 0u32));
        placed.insert(q, (1usize, 7u32));
        let copies = move |n: NodeId, c: usize| (n == p && c == 1).then_some(2u32);
        let c = ctx(&g, &dense, &lat, 2);
        assert_eq!(cluster_pressure(&c, &placed, &copies, 0), 0);
        assert_eq!(cluster_pressure(&c, &placed, &copies, 1), 1);
        assert_eq!(
            value_range(&c, &placed, &copies, p, 1),
            Some((4, 7)),
            "remote range runs from copy arrival to the read"
        );
    }

    #[test]
    fn loads_use_their_assigned_latency() {
        // A remote-miss load defines its value 15 cycles after issue; a
        // consumer at cycle 25 under II 5 leaves a 10-cycle span → 2.
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let q = b.op(OpKind::IntAlu, &[l]);
        let g = b.finish();
        let dense = DenseDeps::new(&g);
        let mut lat = NodeMap::new();
        lat.insert(l, 15);
        let mut placed = NodeMap::new();
        placed.insert(l, (2usize, 0u32));
        placed.insert(q, (2usize, 25u32));
        let none = |_: NodeId, _: usize| None;
        let c = ctx(&g, &dense, &lat, 5);
        assert_eq!(cluster_pressure(&c, &placed, &none, 2), 2);
    }

    #[test]
    fn self_recurrence_holds_a_register_across_the_stage() {
        // acc = acc + x at distance 1: the value written at cycle 2 is
        // read at cycle 0 of the next iteration (= cycle ii), so the
        // span is ii − 2... with II 1 the span crosses boundaries.
        let mut b = DdgBuilder::new();
        let acc = b.op(OpKind::IntAlu, &[]);
        b.recurrence(acc, acc, 3);
        let g = b.finish();
        let dense = DenseDeps::new(&g);
        let lat = NodeMap::new();
        let mut placed = NodeMap::new();
        placed.insert(acc, (0usize, 0u32));
        let none = |_: NodeId, _: usize| None;
        let c = ctx(&g, &dense, &lat, 2);
        // def 1, self use at 0 + 2×3 = 6 → span 5 → 2 registers.
        assert_eq!(cluster_pressure(&c, &placed, &none, 0), 2);
    }
}
