//! Schedule output types.

use std::collections::BTreeMap;
use std::fmt;

use distvliw_arch::LatencyClass;
use distvliw_ir::NodeId;

/// Where and when one operation was placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledOp {
    /// The DDG node.
    pub node: NodeId,
    /// The physical cluster executing the operation.
    pub cluster: usize,
    /// Absolute start cycle within the flat schedule (iteration 0 frame).
    pub start: u32,
    /// For loads: the latency class the scheduler assumed (paper
    /// Section 2.2: "the largest possible latency that does not have an
    /// impact on compute time").
    pub assumed_class: Option<LatencyClass>,
}

/// An inter-cluster register copy materialized by the scheduler for a
/// register-flow edge crossing clusters. Copies occupy a
/// register-to-register bus for the bus latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyOp {
    /// The producer whose value is transferred.
    pub producer: NodeId,
    /// Source cluster.
    pub from_cluster: usize,
    /// Destination cluster.
    pub to_cluster: usize,
    /// Absolute start cycle of the bus transfer (same-iteration frame as
    /// the producer).
    pub start: u32,
}

/// A complete modulo schedule for one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// The initiation interval: a new iteration starts every `ii` cycles.
    pub ii: u32,
    /// Placement of every DDG node.
    pub ops: BTreeMap<NodeId, ScheduledOp>,
    /// Inter-cluster copies (the paper's "communication operations").
    pub copies: Vec<CopyOp>,
    /// Flat schedule length: `max(start) + 1` over all ops and copies.
    pub span: u32,
    /// Number of clusters the schedule targets.
    pub n_clusters: usize,
}

impl Schedule {
    /// Number of software-pipeline stages (`ceil(span / ii)`).
    #[must_use]
    pub fn stage_count(&self) -> u32 {
        self.span.div_ceil(self.ii.max(1)).max(1)
    }

    /// The placement of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not scheduled.
    #[must_use]
    pub fn op(&self, node: NodeId) -> ScheduledOp {
        self.ops[&node]
    }

    /// Number of communication operations executed per iteration.
    #[must_use]
    pub fn comm_ops(&self) -> usize {
        self.copies.len()
    }

    /// The copy that moves `producer`'s value into `cluster`, if one was
    /// materialized. The scheduler plans at most one copy per
    /// `(producer, destination cluster)` pair — every consumer in that
    /// cluster reads the same transfer — so the first match is the only
    /// one. A read accessor for external verifiers; the scheduler itself
    /// resolves copies through its `CopyTable`.
    #[must_use]
    pub fn copy_to(&self, producer: NodeId, cluster: usize) -> Option<&CopyOp> {
        self.copies
            .iter()
            .find(|cp| cp.producer == producer && cp.to_cluster == cluster)
    }

    /// Steady-state compute cycles for `iterations` iterations of the
    /// loop: the pipeline fills for `span` cycles and then completes one
    /// iteration every `ii` cycles.
    #[must_use]
    pub fn compute_cycles(&self, iterations: u64) -> u64 {
        if iterations == 0 {
            return 0;
        }
        u64::from(self.span) + (iterations - 1) * u64::from(self.ii)
    }

    /// Applies a cluster permutation (the MinComs post-pass): operation
    /// and copy clusters are relabeled through `perm` (`perm[v]` is the
    /// physical cluster for virtual cluster `v`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n_clusters`.
    pub fn permute_clusters(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.n_clusters, "permutation size mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "not a permutation");
            seen[p] = true;
        }
        for op in self.ops.values_mut() {
            op.cluster = perm[op.cluster];
        }
        for c in &mut self.copies {
            c.from_cluster = perm[c.from_cluster];
            c.to_cluster = perm[c.to_cluster];
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule: II={} span={} stages={} copies={}",
            self.ii,
            self.span,
            self.stage_count(),
            self.copies.len()
        )?;
        for (n, op) in &self.ops {
            writeln!(
                f,
                "  {n}: cluster {} cycle {}{}",
                op.cluster,
                op.start,
                op.assumed_class
                    .map(|c| format!(" ({c})"))
                    .unwrap_or_default()
            )?;
        }
        Ok(())
    }
}

/// Which latency model the II search was running under when it gave up
/// (paper Section 2.2: the search first places with optimistic local-hit
/// load latencies, then relaxes them cache-sensitively).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchPhase {
    /// Every load assumed a local hit.
    Optimistic,
    /// Cache-sensitive (raised) load latencies. With the current
    /// two-phase search a [`ScheduleError::NoFeasibleIi`] always
    /// reports [`SearchPhase::Optimistic`] — phase 2 falls back to the
    /// phase-1 placement rather than failing — but consumers matching
    /// on the phase stay total if a future search shape can fail under
    /// relaxed latencies.
    Relaxed,
}

impl fmt::Display for SearchPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchPhase::Optimistic => f.write_str("optimistic latencies"),
            SearchPhase::Relaxed => f.write_str("relaxed latencies"),
        }
    }
}

/// Search telemetry of one `schedule_with_stats` call: how hard the II
/// search had to work, and what the ejection scheduler did. The pipeline
/// aggregates these per (suite, solution, heuristic) cell and feeds the
/// achieved II back as the next search's seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// The achieved initiation interval.
    pub ii: u32,
    /// The lower bound the search opened at (max of ResMII, RecMII, the
    /// constraint-aware per-cluster bound and any mandated minimum).
    pub mii: u32,
    /// Initiation intervals attempted (including the successful one).
    pub iis_tried: u32,
    /// Placement attempts: every candidate `(cluster, cycle)` commit
    /// trial across the whole search, both phases.
    pub placement_attempts: u64,
    /// Operations evicted by the ejection scheduler across the search.
    pub ejections: u64,
    /// The II the search was seeded at, when a profile seed applied
    /// (strictly above the computed MII).
    pub seeded_at: Option<u32>,
    /// Peak stage-aware register pressure any accepted placement put on
    /// a single cluster.
    pub max_reg_pressure: u32,
}

/// Errors from the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// No feasible schedule was found up to the II search limit.
    NoFeasibleIi {
        /// Lower bound that was computed.
        mii: u32,
        /// Highest II tried.
        max_tried: u32,
        /// Latency model the search was under when it gave up.
        phase: SearchPhase,
        /// Total placement attempts spent before giving up.
        attempts: u64,
        /// The first node that could not be placed at the last II tried
        /// — the place to start debugging, without a rerun.
        first_blocked: Option<distvliw_ir::NodeId>,
    },
    /// The graph has a zero-distance cycle (invalid input).
    InvalidGraph,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoFeasibleIi {
                mii,
                max_tried,
                phase,
                attempts,
                first_blocked,
            } => {
                write!(
                    f,
                    "no feasible II in [{mii}, {max_tried}] ({phase}, {attempts} placement attempts"
                )?;
                match first_blocked {
                    Some(n) => write!(f, ", first blocked on {n})"),
                    None => write!(f, ")"),
                }
            }
            ScheduleError::InvalidGraph => write!(f, "input graph has a zero-distance cycle"),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        let mut ops = BTreeMap::new();
        ops.insert(
            NodeId(0),
            ScheduledOp {
                node: NodeId(0),
                cluster: 0,
                start: 0,
                assumed_class: None,
            },
        );
        ops.insert(
            NodeId(1),
            ScheduledOp {
                node: NodeId(1),
                cluster: 2,
                start: 5,
                assumed_class: Some(LatencyClass::LocalHit),
            },
        );
        Schedule {
            ii: 2,
            ops,
            copies: vec![CopyOp {
                producer: NodeId(0),
                from_cluster: 0,
                to_cluster: 2,
                start: 1,
            }],
            span: 6,
            n_clusters: 4,
        }
    }

    #[test]
    fn stage_count_rounds_up() {
        let s = sample();
        assert_eq!(s.stage_count(), 3);
    }

    #[test]
    fn compute_cycles_formula() {
        let s = sample();
        assert_eq!(s.compute_cycles(0), 0);
        assert_eq!(s.compute_cycles(1), 6);
        assert_eq!(s.compute_cycles(10), 6 + 9 * 2);
    }

    #[test]
    fn permutation_relabels() {
        let mut s = sample();
        s.permute_clusters(&[3, 2, 1, 0]);
        assert_eq!(s.op(NodeId(0)).cluster, 3);
        assert_eq!(s.op(NodeId(1)).cluster, 1);
        assert_eq!(s.copies[0].from_cluster, 3);
        assert_eq!(s.copies[0].to_cluster, 1);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permutation_validation() {
        let mut s = sample();
        s.permute_clusters(&[0, 0, 1, 2]);
    }

    #[test]
    fn no_feasible_ii_error_is_diagnosable() {
        let e = ScheduleError::NoFeasibleIi {
            mii: 3,
            max_tried: 40,
            phase: SearchPhase::Optimistic,
            attempts: 1234,
            first_blocked: Some(NodeId(7)),
        };
        let text = e.to_string();
        assert!(text.contains("[3, 40]"), "{text}");
        assert!(text.contains("optimistic latencies"), "{text}");
        assert!(text.contains("1234 placement attempts"), "{text}");
        assert!(text.contains("n7"), "{text}");
    }

    #[test]
    fn display_contains_ii() {
        let s = sample();
        let text = s.to_string();
        assert!(text.contains("II=2"));
        assert!(text.contains("n1"));
    }
}
