//! Dense (CSR) snapshot of a [`Ddg`]'s live dependence edges for the
//! scheduling hot path.
//!
//! The `Ddg` adjacency is built for mutation: per-node edge-id lists
//! indirecting through a tombstoned edge table. The scheduler walks every
//! in/out edge of a node once per candidate `(cluster, cycle)` trial, so
//! it snapshots the live edges into two flat, cache-friendly arrays (one
//! grouped by destination, one by source) with the latency resolution of
//! [`crate::mii::dep_latency`] pre-split into a fixed part and a
//! load-lookup part. Per-node edge order is exactly the `Ddg` iteration
//! order, which keeps copy planning — and therefore the produced
//! schedules — byte-identical to walking the graph directly.

use distvliw_ir::{Ddg, DepKind, NodeId, NodeMap};

/// How a dependence edge's latency is resolved.
#[derive(Debug, Clone, Copy)]
enum LatKind {
    /// Register flow from a load: look the producer up in the latency
    /// assignment, falling back to the fixed base latency.
    Load(NodeId, u32),
    /// Every other edge: a fixed latency.
    Fixed(u32),
}

/// One live dependence edge with pre-resolved latency metadata.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DepRec {
    pub src: NodeId,
    pub dst: NodeId,
    pub kind: DepKind,
    pub distance: u32,
    lat: LatKind,
}

impl DepRec {
    /// The latency this edge imposes under `load_lat` (same contract as
    /// [`crate::mii::dep_latency`]).
    #[inline]
    pub fn latency(&self, load_lat: &NodeMap<u32>) -> u32 {
        match self.lat {
            LatKind::Load(l, base) => load_lat.get(l).copied().unwrap_or(base),
            LatKind::Fixed(f) => f,
        }
    }
}

/// CSR in/out adjacency over the live edges of one graph.
#[derive(Debug, Clone)]
pub(crate) struct DenseDeps {
    in_start: Vec<u32>,
    in_list: Vec<DepRec>,
    out_start: Vec<u32>,
    out_list: Vec<DepRec>,
}

impl DenseDeps {
    pub fn new(ddg: &Ddg) -> Self {
        let n = ddg.node_count();
        let mut in_start = Vec::with_capacity(n + 1);
        let mut in_list = Vec::new();
        let mut out_start = Vec::with_capacity(n + 1);
        let mut out_list = Vec::new();
        let record = |d: &distvliw_ir::Dep| {
            let lat = match d.kind {
                DepKind::RegFlow => {
                    let op = ddg.node(d.src);
                    if op.is_load() {
                        LatKind::Load(d.src, op.kind.base_latency())
                    } else {
                        LatKind::Fixed(op.kind.base_latency())
                    }
                }
                k => LatKind::Fixed(k.min_separation()),
            };
            DepRec {
                src: d.src,
                dst: d.dst,
                kind: d.kind,
                distance: d.distance,
                lat,
            }
        };
        for i in 0..n {
            in_start.push(in_list.len() as u32);
            for (_, d) in ddg.in_deps(NodeId(i as u32)) {
                in_list.push(record(&d));
            }
            out_start.push(out_list.len() as u32);
            for (_, d) in ddg.out_deps(NodeId(i as u32)) {
                out_list.push(record(&d));
            }
        }
        in_start.push(in_list.len() as u32);
        out_start.push(out_list.len() as u32);
        DenseDeps {
            in_start,
            in_list,
            out_start,
            out_list,
        }
    }

    /// Number of nodes the snapshot covers.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.in_start.len() - 1
    }

    /// Live incoming edges of `n`, in `Ddg` iteration order.
    #[inline]
    pub fn in_deps(&self, n: NodeId) -> &[DepRec] {
        &self.in_list[self.in_start[n.index()] as usize..self.in_start[n.index() + 1] as usize]
    }

    /// Live outgoing edges of `n`, in `Ddg` iteration order.
    #[inline]
    pub fn out_deps(&self, n: NodeId) -> &[DepRec] {
        &self.out_list[self.out_start[n.index()] as usize..self.out_start[n.index() + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_ir::{DdgBuilder, OpKind, Width};

    #[test]
    fn snapshot_matches_graph_iteration() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let a = b.op(OpKind::IntAlu, &[l]);
        let s = b.store(Width::W4, &[a]);
        b.dep(s, l, DepKind::MemFlow, 1);
        let g = b.finish();
        let dense = DenseDeps::new(&g);
        for n in g.node_ids() {
            let want: Vec<_> = g
                .in_deps(n)
                .map(|(_, d)| (d.src, d.dst, d.kind, d.distance))
                .collect();
            let got: Vec<_> = dense
                .in_deps(n)
                .iter()
                .map(|d| (d.src, d.dst, d.kind, d.distance))
                .collect();
            assert_eq!(got, want, "in_deps of {n}");
            let want: Vec<_> = g
                .out_deps(n)
                .map(|(_, d)| (d.src, d.dst, d.kind, d.distance))
                .collect();
            let got: Vec<_> = dense
                .out_deps(n)
                .iter()
                .map(|d| (d.src, d.dst, d.kind, d.distance))
                .collect();
            assert_eq!(got, want, "out_deps of {n}");
        }
    }

    #[test]
    fn latencies_match_dep_latency() {
        use crate::mii::dep_latency;
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let a = b.op(OpKind::FpMul, &[l]);
        let s = b.store(Width::W4, &[a]);
        b.dep(a, s, DepKind::Sync, 0);
        b.dep(s, l, DepKind::MemFlow, 1);
        let g = b.finish();
        let dense = DenseDeps::new(&g);
        let mut load_lat = NodeMap::new();
        for lat in [None, Some(15u32)] {
            if let Some(v) = lat {
                load_lat.insert(l, v);
            }
            for n in g.node_ids() {
                for ((_, d), rec) in g.out_deps(n).zip(dense.out_deps(n)) {
                    assert_eq!(
                        rec.latency(&load_lat),
                        dep_latency(&g, &d, &load_lat),
                        "{d:?} under {lat:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tombstoned_edges_are_skipped() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let s = b.store(Width::W4, &[l]);
        let e = b.dep(l, s, DepKind::MemAnti, 0);
        let mut g = b.finish();
        g.remove_dep(e);
        let dense = DenseDeps::new(&g);
        assert_eq!(dense.out_deps(l).len(), 1); // only the register flow
        assert_eq!(dense.in_deps(s).len(), 1);
    }
}
