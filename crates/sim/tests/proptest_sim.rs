//! Property tests for the memory-system building blocks: cache capacity
//! discipline, pool fairness, and memory-system timing monotonicity.

use distvliw_arch::MachineConfig;
use distvliw_sim::{MemorySystem, ResourcePool, SubblockCache};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_never_exceeds_capacity(
        sets in 1usize..16,
        assoc in 1usize..4,
        keys in proptest::collection::vec((0u64..64, 0usize..4), 1..200),
    ) {
        let mut c = SubblockCache::new(sets, assoc);
        for key in keys {
            c.insert(key);
            prop_assert!(c.len() <= sets * assoc);
            prop_assert!(c.contains(key), "freshly inserted key must reside");
        }
    }

    #[test]
    fn cache_flush_always_empties(
        keys in proptest::collection::vec((0u64..64, 0usize..4), 0..100),
    ) {
        let mut c = SubblockCache::new(8, 2);
        for key in keys {
            c.insert(key);
        }
        c.flush();
        prop_assert!(c.is_empty());
    }

    #[test]
    fn pool_grants_are_monotone_for_monotone_requests(
        requests in proptest::collection::vec(0u64..64, 1..64),
        count in 1usize..4,
        occupancy in 1u64..4,
    ) {
        let mut sorted = requests;
        sorted.sort_unstable();
        let mut pool = ResourcePool::new(count, occupancy);
        let mut last = 0;
        for now in sorted {
            let granted = pool.acquire(now);
            prop_assert!(granted >= now, "grants never travel back in time");
            prop_assert!(granted >= last, "grants are monotone");
            last = granted;
        }
    }

    #[test]
    fn pool_capacity_bounds_throughput(reqs in 1u64..64) {
        // `count` units of occupancy `occ` serve at most count/occ grants
        // per cycle: the last grant time is bounded below accordingly.
        let mut pool = ResourcePool::new(2, 3);
        let mut last = 0;
        for _ in 0..reqs {
            last = pool.acquire(0);
        }
        // reqs grants over 2 units of 3-cycle occupancy.
        let lower = (reqs.saturating_sub(2)) / 2 * 3;
        prop_assert!(last >= lower, "last grant {last} vs lower bound {lower}");
    }

    #[test]
    fn load_timing_is_monotone_in_issue_time(
        addr in 0u64..4096,
        cluster in 0usize..4,
        t0 in 0u64..100,
        dt in 0u64..100,
    ) {
        // Two fresh memory systems: issuing the same access later can
        // never make it complete earlier.
        let m = MachineConfig::paper_baseline();
        let mut a = MemorySystem::new(&m);
        let mut b = MemorySystem::new(&m);
        let ra = a.load(cluster, addr, t0);
        let rb = b.load(cluster, addr, t0 + dt);
        prop_assert!(rb.ready >= ra.ready);
        prop_assert_eq!(ra.class, rb.class);
    }

    #[test]
    fn repeated_loads_eventually_hit(addr in 0u64..4096, cluster in 0usize..4) {
        let m = MachineConfig::paper_baseline();
        let mut ms = MemorySystem::new(&m);
        let first = ms.load(cluster, addr, 0);
        let second = ms.load(cluster, addr, first.ready + 8);
        use distvliw_arch::AccessClass;
        let expected = if m.home_cluster(addr) == cluster {
            AccessClass::LocalHit
        } else {
            AccessClass::RemoteHit
        };
        prop_assert_eq!(second.class, expected);
        prop_assert!(second.ready > first.ready);
    }

    #[test]
    fn access_counts_match_operations(
        ops in proptest::collection::vec((0u64..2048, 0usize..4, any::<bool>()), 1..64),
    ) {
        let m = MachineConfig::paper_baseline();
        let mut ms = MemorySystem::new(&m);
        let mut now = 0;
        let mut executed = 0u64;
        for (addr, cluster, is_store) in ops {
            if is_store {
                ms.store(cluster, addr, now, true);
            } else {
                ms.load(cluster, addr, now);
            }
            executed += 1;
            now += 2;
        }
        prop_assert_eq!(ms.counts.total(), executed);
    }
}
