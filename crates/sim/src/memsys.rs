//! The distributed memory system: cache modules, attraction buffers,
//! shared buses, next-level ports and request combining.

use distvliw_arch::{AccessClass, MachineConfig, SubblockId};

use crate::fx::FxHashMap;
use crate::stats::AccessCounts;

/// A set-associative buffer of subblocks with LRU replacement. Used both
/// for the per-cluster cache modules (which hold their own cluster's
/// subblocks, keyed by block number) and for Attraction Buffers (which
/// hold *remote* subblocks, keyed by block and home).
///
/// Ways are stored flat (`set * assoc + way`) with a per-set occupancy
/// count, so a probe walks one contiguous slice instead of chasing a
/// per-set `Vec`; occupied ways keep insertion order and eviction
/// replaces in place, preserving the exact tie-breaking (first minimum)
/// of the nested-`Vec` layout.
#[derive(Debug, Clone)]
pub struct SubblockCache {
    ways: Vec<Entry>,
    used: Vec<u32>,
    /// `sets - 1` when the set count is a power of two (mask instead of
    /// modulo on the indexing path), `None` otherwise.
    set_mask: Option<u64>,
    n_sets: usize,
    assoc: usize,
    tick: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: (u64, usize),
    lru: u64,
}

impl SubblockCache {
    /// Creates a cache with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets > 0 && assoc > 0, "cache dimensions must be positive");
        SubblockCache {
            ways: vec![
                Entry {
                    key: (0, 0),
                    lru: 0
                };
                sets * assoc
            ],
            used: vec![0; sets],
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
            n_sets: sets,
            assoc,
            tick: 0,
        }
    }

    fn set_of(&self, key: (u64, usize)) -> usize {
        // Mix the home cluster into the index: Attraction Buffers hold
        // subblocks of the same block from several homes, which would
        // otherwise all collide in one set.
        let mixed = key
            .0
            .wrapping_add(key.1 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match self.set_mask {
            Some(mask) => (mixed & mask) as usize,
            None => (mixed % self.n_sets as u64) as usize,
        }
    }

    /// The occupied ways of `key`'s set, plus the set's base way index.
    #[inline]
    fn set_slice(&mut self, key: (u64, usize)) -> (usize, &mut [Entry]) {
        let set = self.set_of(key);
        let base = set * self.assoc;
        let used = self.used[set] as usize;
        (set, &mut self.ways[base..base + used])
    }

    /// Whether `key` is cached; refreshes LRU on hit.
    pub fn probe(&mut self, key: (u64, usize)) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let (_, ways) = self.set_slice(key);
        if let Some(e) = ways.iter_mut().find(|e| e.key == key) {
            e.lru = tick;
            return true;
        }
        false
    }

    /// Whether `key` is cached, without touching LRU state.
    #[must_use]
    pub fn contains(&self, key: (u64, usize)) -> bool {
        let set = self.set_of(key);
        let base = set * self.assoc;
        self.ways[base..base + self.used[set] as usize]
            .iter()
            .any(|e| e.key == key)
    }

    /// Inserts `key`, evicting the LRU way if the set is full. Returns the
    /// evicted key, if any.
    pub fn insert(&mut self, key: (u64, usize)) -> Option<(u64, usize)> {
        self.tick += 1;
        let tick = self.tick;
        let (set, ways) = self.set_slice(key);
        if let Some(e) = ways.iter_mut().find(|e| e.key == key) {
            e.lru = tick;
            return None;
        }
        let used = ways.len();
        if used < self.assoc {
            self.ways[set * self.assoc + used] = Entry { key, lru: tick };
            self.used[set] += 1;
            return None;
        }
        let victim = self.ways[set * self.assoc..set * self.assoc + used]
            .iter_mut()
            .min_by_key(|e| e.lru)
            .expect("set is full, so nonempty");
        let evicted = victim.key;
        *victim = Entry { key, lru: tick };
        Some(evicted)
    }

    /// Empties the cache (Attraction Buffer flush at loop boundaries).
    pub fn flush(&mut self) {
        self.used.fill(0);
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.used.iter().map(|&u| u as usize).sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A pool of identical resources (buses or next-level ports), each busy
/// for a fixed time per grant; grants pick the earliest-free unit.
#[derive(Debug, Clone)]
pub struct ResourcePool {
    free_at: Vec<u64>,
    occupancy: u64,
    grants: u64,
}

impl ResourcePool {
    /// `count` units, each busy `occupancy` cycles per grant.
    ///
    /// # Panics
    ///
    /// Panics if `count` or `occupancy` is zero.
    #[must_use]
    pub fn new(count: usize, occupancy: u64) -> Self {
        assert!(
            count > 0 && occupancy > 0,
            "pool dimensions must be positive"
        );
        ResourcePool {
            free_at: vec![0; count],
            occupancy,
            grants: 0,
        }
    }

    /// Grants a unit at the earliest time ≥ `now`; returns the grant time.
    pub fn acquire(&mut self, now: u64) -> u64 {
        let (idx, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("pool is nonempty");
        let start = now.max(free);
        self.free_at[idx] = start + self.occupancy;
        self.grants += 1;
        start
    }

    /// Number of grants issued so far.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total cycles units of this pool were held (grants × per-grant
    /// occupancy).
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.grants * self.occupancy
    }

    /// The cycle at which the last granted transfer completes (0 when
    /// nothing was granted). Every occupancy interval lies in
    /// `[0, drain_time())` with at most `count` concurrent holders, so
    /// `busy_cycles() ≤ drain_time() × count` always holds — the
    /// capacity invariant the property suite pins.
    #[must_use]
    pub fn drain_time(&self) -> u64 {
        self.free_at.iter().copied().max().unwrap_or(0)
    }
}

/// The full memory system of the simulated machine.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    machine: MachineConfig,
    /// Per-cluster cache module: holds this cluster's subblocks (keyed by
    /// block number; the home component of the key is the cluster itself).
    modules: Vec<SubblockCache>,
    /// Per-cluster attraction buffer, when configured.
    abs: Vec<Option<SubblockCache>>,
    mem_buses: ResourcePool,
    next_level: ResourcePool,
    /// In-flight module fills: subblock → ready time.
    pending_fill: FxHashMap<SubblockId, u64>,
    /// In-flight remote reads: (requesting cluster, subblock) → data-back
    /// time.
    pending_remote: FxHashMap<(usize, SubblockId), u64>,
    /// `(block shift, interleave shift, home mask)` when block size,
    /// interleave and cluster count are all powers of two: address →
    /// subblock translation by shift/mask instead of divide (bit-equal,
    /// since `x / 2^k == x >> k` and `x % 2^k == x & (2^k - 1)` for
    /// unsigned `x`).
    shift_map: Option<(u32, u32, u64)>,
    /// Scratch for batched address translation (reused across
    /// [`MemorySystem::run_batch`] calls).
    sb_scratch: Vec<SubblockId>,
    /// Scratch for batched access classification.
    lane_scratch: Vec<Lane>,
    /// Access classification counters.
    pub counts: AccessCounts,
    /// Dense per-requesting-cluster classification counters (same totals
    /// as [`MemorySystem::counts`], split by the cluster that issued the
    /// access).
    counts_by_cluster: Vec<AccessCounts>,
}

/// Outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// When the data is available to the requesting cluster (loads) or the
    /// home module is updated (stores).
    pub ready: u64,
    /// When the home module actually performed the read or write — the
    /// instant that matters for coherence ordering (see
    /// [`crate::ViolationDetector`]).
    pub observed: u64,
    /// Classification for the Figure 6 statistics.
    pub class: AccessClass,
}

/// The lane a batched access executes through, decided purely from the
/// request and its subblock's home — no memory-system state — so a whole
/// slice can be classified up front in one branch-free pass and the
/// stateful apply loop dispatches on the precomputed tag. The
/// state-dependent refinements (Attraction-Buffer hit, request combining,
/// module hit/miss) stay inside the remote/local lanes, exactly where the
/// sequential path resolves them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    /// Load whose home is the issuing cluster.
    LoadLocal = 0,
    /// Load served across the bus (or AB / combined on the way).
    LoadRemote = 1,
    /// Nullified DDGT store replica: refreshes an AB copy at most.
    StoreNull = 2,
    /// Architectural store into the issuing cluster's own module.
    StoreLocal = 3,
    /// Architectural store carried over the bus to a remote home.
    StoreRemote = 4,
}

impl Lane {
    /// Classifies one access. Straight-line arithmetic over the three
    /// predicates plus a table lookup, so the batch pass compiles
    /// branch-free.
    #[inline]
    fn of(store: bool, executes: bool, local: bool) -> Lane {
        const LANES: [Lane; 5] = [
            Lane::LoadLocal,
            Lane::LoadRemote,
            Lane::StoreNull,
            Lane::StoreLocal,
            Lane::StoreRemote,
        ];
        let s = usize::from(store);
        let e = usize::from(executes);
        let r = usize::from(!local);
        // loads: 0 + remote; stores: 2 + executes * (1 + remote).
        LANES[s * (2 + e * (1 + r)) + (1 - s) * r]
    }
}

/// One element of a batched cycle window: everything the memory system
/// needs to perform the access, gathered up front so
/// [`MemorySystem::run_batch`] can consume a contiguous slice instead of
/// being called once per lookup.
#[derive(Debug, Clone, Copy)]
pub struct BatchAccess {
    /// The cluster issuing the access.
    pub cluster: usize,
    /// The byte address accessed.
    pub addr: u64,
    /// Store (true) or load (false).
    pub store: bool,
    /// For stores: whether this is a real (architectural) store rather
    /// than a nullified DDGT remote instance. Ignored for loads.
    pub executes: bool,
}

impl MemorySystem {
    /// Creates a cold memory system for `machine`.
    ///
    /// # Panics
    ///
    /// Panics if the machine configuration is invalid.
    #[must_use]
    pub fn new(machine: &MachineConfig) -> Self {
        machine.validate().expect("valid machine configuration");
        let sets = machine.module_sets();
        let modules = (0..machine.n_clusters)
            .map(|_| SubblockCache::new(sets, machine.cache.assoc))
            .collect();
        let abs = (0..machine.n_clusters)
            .map(|_| {
                machine
                    .attraction_buffers
                    .map(|ab| SubblockCache::new((ab.entries / ab.assoc).max(1), ab.assoc))
            })
            .collect();
        MemorySystem {
            modules,
            abs,
            mem_buses: ResourcePool::new(
                machine.mem_buses.count,
                u64::from(machine.mem_buses.latency),
            ),
            next_level: ResourcePool::new(machine.next_level.ports, 1),
            pending_fill: FxHashMap::default(),
            pending_remote: FxHashMap::default(),
            shift_map: (machine.cache.block_bytes.is_power_of_two()
                && machine.interleave_bytes.is_power_of_two()
                && machine.n_clusters.is_power_of_two())
            .then(|| {
                (
                    machine.cache.block_bytes.trailing_zeros(),
                    machine.interleave_bytes.trailing_zeros(),
                    machine.n_clusters as u64 - 1,
                )
            }),
            sb_scratch: Vec::new(),
            lane_scratch: Vec::new(),
            counts: AccessCounts::new(),
            counts_by_cluster: vec![AccessCounts::new(); machine.n_clusters],
            machine: machine.clone(),
        }
    }

    /// The configured machine.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Classification counters for accesses issued by `cluster`.
    #[must_use]
    pub fn counts_of_cluster(&self, cluster: usize) -> AccessCounts {
        self.counts_by_cluster
            .get(cluster)
            .copied()
            .unwrap_or_default()
    }

    /// Total cycles the memory buses were held (grants × bus occupancy).
    #[must_use]
    pub fn bus_busy_cycles(&self) -> u64 {
        self.mem_buses.busy_cycles()
    }

    /// When the last memory-bus transfer completes
    /// ([`ResourcePool::drain_time`]). Stores are fire-and-forget, so
    /// this can extend past the schedule drain.
    #[must_use]
    pub fn bus_drain_cycles(&self) -> u64 {
        self.mem_buses.drain_time()
    }

    /// Memory-bus grants issued so far ([`ResourcePool::grants`]).
    #[must_use]
    pub fn mem_bus_grants(&self) -> u64 {
        self.mem_buses.grants()
    }

    /// Next-level port grants issued so far ([`ResourcePool::grants`]).
    #[must_use]
    pub fn next_level_grants(&self) -> u64 {
        self.next_level.grants()
    }

    /// Records one classified access issued by `cluster`.
    fn record(&mut self, cluster: usize, class: AccessClass) {
        self.counts.record(class);
        self.counts_by_cluster[cluster].record(class);
    }

    /// Address → subblock, via the shift/mask fast path when the machine
    /// geometry allows it (identical results to
    /// [`MachineConfig::subblock_of`]).
    #[inline]
    fn translate(&self, addr: u64) -> SubblockId {
        match self.shift_map {
            Some((block_shift, il_shift, home_mask)) => SubblockId {
                block: addr >> block_shift,
                home: ((addr >> il_shift) & home_mask) as usize,
            },
            None => self.machine.subblock_of(addr),
        }
    }

    /// Performs every access of one cycle window, in slice order, against
    /// the same issue time `now`. Address → subblock translation and lane
    /// classification each run branch-free over the whole slice, then the
    /// stateful apply loop consumes the pre-classified accesses in
    /// request order (bus arbitration and LRU state are order-sensitive,
    /// so the apply order must match the sequential path). Results land
    /// in `out` (cleared first), one per request; loads always produce
    /// `Some`, stores mirror [`MemorySystem::store`]. State updates and
    /// classifications are exactly those of the equivalent sequence of
    /// individual [`MemorySystem::load`] / [`MemorySystem::store`] calls.
    pub fn run_batch(
        &mut self,
        now: u64,
        batch: &[BatchAccess],
        out: &mut Vec<Option<AccessResult>>,
    ) {
        out.clear();
        out.reserve(batch.len());
        let mut sbs = std::mem::take(&mut self.sb_scratch);
        let mut lanes = std::mem::take(&mut self.lane_scratch);
        sbs.clear();
        lanes.clear();
        sbs.extend(batch.iter().map(|a| self.translate(a.addr)));
        lanes.extend(
            batch
                .iter()
                .zip(&sbs)
                .map(|(a, sb)| Lane::of(a.store, a.executes, sb.home == a.cluster)),
        );
        for ((a, &sb), &lane) in batch.iter().zip(&sbs).zip(&lanes) {
            out.push(self.apply(lane, a.cluster, sb, now));
        }
        self.sb_scratch = sbs;
        self.lane_scratch = lanes;
    }

    /// Executes one pre-classified access. Single source of truth for
    /// both the batched and the sequential entry points.
    fn apply(
        &mut self,
        lane: Lane,
        cluster: usize,
        sb: SubblockId,
        now: u64,
    ) -> Option<AccessResult> {
        match lane {
            Lane::LoadLocal => {
                let result = self.local_access(cluster, sb, now);
                self.record(cluster, result.class);
                Some(result)
            }
            Lane::LoadRemote => Some(self.load_remote(cluster, sb, now)),
            Lane::StoreNull => {
                // Nullified replica: update the local AB copy if present
                // so later local reads see fresh data (paper Section 5.3).
                self.refresh_ab(cluster, sb);
                None
            }
            Lane::StoreLocal => {
                let result = self.local_access(cluster, sb, now);
                // Keep a resident local AB copy coherent with the update.
                self.refresh_ab(cluster, sb);
                self.record(cluster, result.class);
                Some(result)
            }
            Lane::StoreRemote => {
                // Remote write: one bus transfer carrying address+data,
                // then the home module performs the (possibly allocating)
                // write.
                let depart = self.mem_buses.acquire(now);
                let at_home = depart + u64::from(self.machine.mem_buses.latency);
                let home = self.local_access(sb.home, sb, at_home);
                let class = match home.class {
                    AccessClass::LocalHit | AccessClass::Combined => AccessClass::RemoteHit,
                    _ => AccessClass::RemoteMiss,
                };
                let result = AccessResult {
                    ready: home.ready,
                    observed: home.observed,
                    class,
                };
                self.refresh_ab(cluster, sb);
                self.record(cluster, result.class);
                Some(result)
            }
        }
    }

    /// LRU-refreshes a resident Attraction-Buffer copy of `sb`, if any.
    fn refresh_ab(&mut self, cluster: usize, sb: SubblockId) {
        if let Some(ab) = self.abs[cluster].as_mut() {
            if ab.contains((sb.block, sb.home)) {
                ab.probe((sb.block, sb.home));
            }
        }
    }

    /// Performs a load from `cluster` at `addr` issued at `now`.
    /// Returns data-ready time and classification, updating all state.
    pub fn load(&mut self, cluster: usize, addr: u64, now: u64) -> AccessResult {
        let sb = self.translate(addr);
        let lane = Lane::of(false, true, sb.home == cluster);
        self.apply(lane, cluster, sb, now)
            .expect("loads always produce a result")
    }

    /// The remote-load lane: AB lookup, request combining, or the full
    /// bus round trip to the home module.
    fn load_remote(&mut self, cluster: usize, sb: SubblockId, now: u64) -> AccessResult {
        let cache_lat = u64::from(self.machine.cache.latency);
        // Attraction Buffer lookup: a resident remote subblock is served
        // locally (paper Section 5.1).
        if let Some(ab) = self.abs[cluster].as_mut() {
            if ab.probe((sb.block, sb.home)) {
                let result = AccessResult {
                    ready: now + cache_lat,
                    observed: now + cache_lat,
                    class: AccessClass::LocalHit,
                };
                self.record(cluster, result.class);
                return result;
            }
        }
        // Combine with an in-flight remote request to the same subblock.
        if let Some(&ready) = self.pending_remote.get(&(cluster, sb)) {
            if ready > now {
                let result = AccessResult {
                    ready,
                    observed: ready,
                    class: AccessClass::Combined,
                };
                self.record(cluster, result.class);
                return result;
            }
        }
        // Request bus → home module → response bus.
        let depart = self.mem_buses.acquire(now);
        let at_home = depart + u64::from(self.machine.mem_buses.latency);
        let home_result = self.local_access(sb.home, sb, at_home);
        let resp = self.mem_buses.acquire(home_result.ready);
        let ready = resp + u64::from(self.machine.mem_buses.latency);
        let class = match home_result.class {
            AccessClass::LocalHit | AccessClass::Combined => AccessClass::RemoteHit,
            _ => AccessClass::RemoteMiss,
        };
        self.pending_remote.insert((cluster, sb), ready);
        // The response carries the whole subblock: cache it in the AB.
        if let Some(ab) = self.abs[cluster].as_mut() {
            ab.insert((sb.block, sb.home));
        }
        let result = AccessResult {
            ready,
            observed: home_result.observed,
            class,
        };
        self.record(cluster, result.class);
        result
    }

    /// Performs a store from `cluster` at `addr` issued at `now`.
    ///
    /// `executes` distinguishes a real (architectural) store from a
    /// nullified DDGT remote instance: nullified instances only refresh a
    /// resident Attraction-Buffer copy and are not counted as accesses.
    pub fn store(
        &mut self,
        cluster: usize,
        addr: u64,
        now: u64,
        executes: bool,
    ) -> Option<AccessResult> {
        let sb = self.translate(addr);
        let lane = Lane::of(true, executes, sb.home == cluster);
        self.apply(lane, cluster, sb, now)
    }

    /// Access within the home module: hit, miss (with next-level fill and
    /// fill combining) or combined-on-pending-fill.
    fn local_access(&mut self, cluster: usize, sb: SubblockId, now: u64) -> AccessResult {
        let cache_lat = u64::from(self.machine.cache.latency);
        // A pending fill wins over a (freshly inserted) tag hit: the data
        // is only usable once the next level delivers it, and the second
        // request piggy-backs on the first (the paper's combined class).
        if let Some(&ready) = self.pending_fill.get(&sb) {
            if ready > now {
                self.modules[cluster].probe((sb.block, cluster));
                return AccessResult {
                    ready,
                    observed: ready,
                    class: AccessClass::Combined,
                };
            }
            // The fill has landed: drop the entry so the map holds only
            // in-flight fills (a stale entry is never observed — it
            // always falls through to the probe below — so removing it
            // only keeps lookups cheap).
            self.pending_fill.remove(&sb);
        }
        if self.modules[cluster].probe((sb.block, cluster)) {
            let t = now + cache_lat;
            return AccessResult {
                ready: t,
                observed: t,
                class: AccessClass::LocalHit,
            };
        }
        // Miss: one memory-bus transfer to the next level, the next-level
        // latency (which covers the return), then the module fill.
        let depart = self.mem_buses.acquire(now + cache_lat);
        let port = self.next_level.acquire(depart);
        let ready = port + u64::from(self.machine.next_level.latency);
        self.pending_fill.insert(sb, ready);
        self.modules[cluster].insert((sb.block, cluster));
        AccessResult {
            ready,
            observed: ready,
            class: AccessClass::LocalMiss,
        }
    }

    /// Flushes every Attraction Buffer (loop boundary, paper Sections
    /// 5.2–5.3). Home modules are always up to date in this model (stores
    /// write through to the home), so no write-back traffic is generated.
    pub fn flush_attraction_buffers(&mut self) {
        for ab in self.abs.iter_mut().flatten() {
            ab.flush();
        }
    }

    /// Number of subblocks currently resident in `cluster`'s AB.
    #[must_use]
    pub fn ab_len(&self, cluster: usize) -> usize {
        self.abs[cluster].as_ref().map_or(0, SubblockCache::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_arch::AttractionBufferConfig;

    fn machine() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = SubblockCache::new(1, 2);
        assert_eq!(c.insert((1, 0)), None);
        assert_eq!(c.insert((2, 0)), None);
        assert!(c.probe((1, 0))); // touch 1 → 2 becomes LRU
        assert_eq!(c.insert((3, 0)), Some((2, 0)));
        assert!(c.contains((1, 0)));
        assert!(c.contains((3, 0)));
        assert!(!c.contains((2, 0)));
    }

    #[test]
    fn cache_sets_partition_keys() {
        // A direct-mapped 2-set cache holds at most one key per set;
        // inserting a third key must evict exactly one earlier key.
        let mut c = SubblockCache::new(2, 1);
        assert_eq!(c.insert((0, 0)), None);
        let second = c.insert((1, 0));
        let third = c.insert((2, 0));
        let evictions = usize::from(second.is_some()) + usize::from(third.is_some());
        assert!(
            evictions >= 1,
            "three keys cannot all fit in two direct-mapped sets"
        );
        assert!(c.len() <= 2);
        assert!(c.contains((2, 0)));
    }

    #[test]
    fn ab_sets_spread_homes_of_one_block() {
        // The three remote subblocks of one block must not all collide in
        // a single 2-way set (the original motivation for home-mixing).
        let mut c = SubblockCache::new(8, 2);
        c.insert((0, 1));
        c.insert((0, 2));
        c.insert((0, 3));
        assert_eq!(c.len(), 3, "home-mixed indexing keeps all three resident");
    }

    #[test]
    fn flush_empties() {
        let mut c = SubblockCache::new(4, 2);
        c.insert((7, 1));
        assert!(!c.is_empty());
        c.flush();
        assert!(c.is_empty());
    }

    #[test]
    fn resource_pool_arbitrates() {
        let mut p = ResourcePool::new(2, 2);
        assert_eq!(p.acquire(0), 0); // bus 0: busy till 2
        assert_eq!(p.acquire(0), 0); // bus 1: busy till 2
        assert_eq!(p.acquire(0), 2); // queued
        assert_eq!(p.acquire(10), 10);
    }

    #[test]
    fn local_hit_after_fill() {
        let mut ms = MemorySystem::new(&machine());
        // Address 0 is home cluster 0. First access misses.
        let first = ms.load(0, 0, 0);
        assert_eq!(first.class, AccessClass::LocalMiss);
        assert!(first.ready >= 10);
        // Subsequent access long after is a hit.
        let second = ms.load(0, 0, first.ready + 1);
        assert_eq!(second.class, AccessClass::LocalHit);
        assert_eq!(second.ready, first.ready + 2);
    }

    #[test]
    fn combined_access_on_pending_fill() {
        let mut ms = MemorySystem::new(&machine());
        let first = ms.load(0, 0, 0);
        // A second access to the same subblock while the fill is pending
        // combines (address 16 shares subblock with 0: same block, home 0).
        let second = ms.load(0, 16, 1);
        assert_eq!(second.class, AccessClass::Combined);
        assert_eq!(second.ready, first.ready);
    }

    #[test]
    fn remote_hit_latency_includes_bus_round_trip() {
        let mut ms = MemorySystem::new(&machine());
        // Warm up cluster 1's module with block 0 (address 4 has home 1).
        let fill = ms.load(1, 4, 0);
        assert_eq!(fill.class, AccessClass::LocalMiss);
        let t0 = fill.ready + 1;
        let remote = ms.load(0, 4, t0);
        assert_eq!(remote.class, AccessClass::RemoteHit);
        // 2 (bus) + 1 (module) + 2 (bus) = 5.
        assert_eq!(remote.ready, t0 + 5);
    }

    #[test]
    fn remote_requests_combine() {
        let mut ms = MemorySystem::new(&machine());
        let fill = ms.load(1, 4, 0);
        let t0 = fill.ready + 1;
        let first = ms.load(0, 4, t0);
        let second = ms.load(0, 20, t0 + 1); // same subblock (block 0, home 1)
        assert_eq!(second.class, AccessClass::Combined);
        assert_eq!(second.ready, first.ready);
    }

    #[test]
    fn attraction_buffer_turns_remote_into_local() {
        let m = machine().with_attraction_buffers(AttractionBufferConfig::paper());
        let mut ms = MemorySystem::new(&m);
        let fill = ms.load(1, 4, 0);
        let first = ms.load(0, 4, fill.ready + 1);
        assert_eq!(first.class, AccessClass::RemoteHit);
        assert_eq!(ms.ab_len(0), 1);
        // The whole subblock was attracted: address 20 shares it.
        let second = ms.load(0, 20, first.ready + 1);
        assert_eq!(second.class, AccessClass::LocalHit);
        assert_eq!(second.ready, first.ready + 2);
    }

    #[test]
    fn ab_flush_restores_remote_accesses() {
        let m = machine().with_attraction_buffers(AttractionBufferConfig::paper());
        let mut ms = MemorySystem::new(&m);
        let fill = ms.load(1, 4, 0);
        let first = ms.load(0, 4, fill.ready + 1);
        ms.flush_attraction_buffers();
        assert_eq!(ms.ab_len(0), 0);
        let after = ms.load(0, 4, first.ready + 10);
        assert_eq!(after.class, AccessClass::RemoteHit);
    }

    #[test]
    fn stores_classify_like_loads() {
        let mut ms = MemorySystem::new(&machine());
        let s1 = ms.store(0, 0, 0, true).unwrap();
        assert_eq!(s1.class, AccessClass::LocalMiss);
        let s2 = ms.store(0, 0, s1.ready + 1, true).unwrap();
        assert_eq!(s2.class, AccessClass::LocalHit);
        let s3 = ms.store(2, 0, s2.ready + 1, true).unwrap();
        assert_eq!(s3.class, AccessClass::RemoteHit);
    }

    #[test]
    fn nullified_store_is_not_counted() {
        let mut ms = MemorySystem::new(&machine());
        assert_eq!(ms.store(3, 0, 0, false), None);
        assert_eq!(ms.counts.total(), 0);
    }

    #[test]
    fn bus_contention_delays_remote_accesses() {
        let mut ms = MemorySystem::new(&machine());
        // Warm cluster 1 with the subblocks of addr 4 and 36 (blocks 0, 1).
        let a = ms.load(1, 4, 0);
        let b = ms.load(1, 36, 1);
        let t0 = a.ready.max(b.ready) + 1;
        // Saturate the 4 buses with 4 simultaneous remote reads from
        // different clusters to different blocks: the 5th transfer waits.
        let mut ready_times = Vec::new();
        for (c, addr) in [(0usize, 4u64), (2, 4), (3, 4), (0, 36), (2, 36)] {
            ready_times.push(ms.load(c, addr, t0).ready);
        }
        let max = ready_times.iter().max().unwrap();
        let min = ready_times.iter().min().unwrap();
        assert!(max > min, "contention must spread completion times");
    }

    #[test]
    fn batch_matches_individual_calls() {
        let mut batched = MemorySystem::new(&machine());
        let mut serial = MemorySystem::new(&machine());
        let batch = [
            BatchAccess {
                cluster: 0,
                addr: 0,
                store: false,
                executes: true,
            },
            BatchAccess {
                cluster: 1,
                addr: 4,
                store: true,
                executes: true,
            },
            BatchAccess {
                cluster: 2,
                addr: 0,
                store: false,
                executes: true,
            },
            BatchAccess {
                cluster: 3,
                addr: 8,
                store: true,
                executes: false,
            },
        ];
        let mut out = Vec::new();
        batched.run_batch(5, &batch, &mut out);
        let want: Vec<Option<AccessResult>> = batch
            .iter()
            .map(|a| {
                if a.store {
                    serial.store(a.cluster, a.addr, 5, a.executes)
                } else {
                    Some(serial.load(a.cluster, a.addr, 5))
                }
            })
            .collect();
        assert_eq!(out, want);
        assert_eq!(batched.counts, serial.counts);
        assert_eq!(batched.bus_busy_cycles(), serial.bus_busy_cycles());
        for c in 0..4 {
            assert_eq!(batched.counts_of_cluster(c), serial.counts_of_cluster(c));
        }
    }

    #[test]
    fn per_cluster_counts_sum_to_total() {
        let mut ms = MemorySystem::new(&machine());
        ms.load(0, 0, 0);
        ms.load(1, 0, 0);
        ms.store(2, 4, 0, true);
        let sum: u64 = (0..4).map(|c| ms.counts_of_cluster(c).total()).sum();
        assert_eq!(sum, ms.counts.total());
        assert_eq!(ms.counts_of_cluster(0).total(), 1);
    }

    #[test]
    fn two_byte_interleave_homes() {
        let m = machine().with_interleave(2);
        let mut ms = MemorySystem::new(&m);
        // addr 2 lives in cluster 1 under 2-byte interleave.
        let r = ms.load(1, 2, 0);
        assert_eq!(r.class, AccessClass::LocalMiss);
    }
}
