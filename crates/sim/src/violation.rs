//! Coherence-violation detection.
//!
//! The paper's baseline schedules memory instructions freely and is
//! therefore "optimistic (not real)": aliased accesses can reach the home
//! cluster out of sequential program order (paper Section 2.3, Figure 2).
//! Like the paper's trace-driven simulator, this simulator always returns
//! architecturally-correct values — but it additionally *counts* the
//! ordering violations a real machine would have suffered, making the
//! baseline's unsoundness observable and letting tests assert that MDC
//! and DDGT eliminate every violation.
//!
//! Two hazards are tracked per address:
//!
//! * **flow violation** — a load's home-module read happened before the
//!   program-order-latest prior store's update arrived (stale read);
//! * **anti violation** — a sequentially *later* store's update reached
//!   the home module at or before an earlier load's read (the load
//!   observed a too-new value).
//!
//! Accesses issued from the *same* cluster are exempt: in-order issue and
//! FIFO buses deliver them to the home cluster in program order (the
//! paper's serialization facts 1–3, Section 3.2); only cross-cluster
//! pairs can race.
//!
//! Detection is byte-range exact at a 2-byte granule: every granule an
//! access touches is tracked, so partially overlapping accesses of
//! different widths and alignments are caught.

use crate::fx::FxHashMap;
use crate::stats::ClusterCounts;

/// Tracking granule in bytes (the smallest access width).
const GRANULE: u64 = 2;

/// The granules a `[addr, addr + width)` access touches.
fn granules(addr: u64, width: u64) -> impl Iterator<Item = u64> {
    (addr / GRANULE)..(addr + width.max(1)).div_ceil(GRANULE)
}

/// Sliding window of recent accesses remembered per address; loop kernels
/// have short dependence distances, so a small window is exact in
/// practice.
const WINDOW: usize = 16;

/// One recorded access: program order, home-module time, issuing cluster.
type Access = (u64, u64, usize);

/// A fixed-capacity window of recent accesses: stored inline (no
/// per-granule heap allocation) and evicted by smallest program order.
/// Program orders are unique per access, so the evicted entry — and with
/// it the retained *set* — is exactly what the old `Vec`-backed window
/// kept; queries are set-semantics (existential / argmax over unique
/// keys), so detection results are identical.
#[derive(Debug, Clone, Copy)]
struct Window {
    entries: [Access; WINDOW],
    len: usize,
}

impl Default for Window {
    fn default() -> Self {
        Window {
            entries: [(0, 0, 0); WINDOW],
            len: 0,
        }
    }
}

impl Window {
    fn as_slice(&self) -> &[Access] {
        &self.entries[..self.len]
    }

    /// Inserts `entry`, evicting the smallest program order when full
    /// (which may be the new entry itself).
    fn push(&mut self, entry: Access) {
        if self.len < WINDOW {
            self.entries[self.len] = entry;
            self.len += 1;
            return;
        }
        let (min_idx, &(min_po, _, _)) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(p, _, _))| p)
            .expect("window is full, so nonempty");
        if entry.0 > min_po {
            self.entries[min_idx] = entry;
        }
    }
}

/// One scheduled memory site summarized for [`hazard_possible`]: the
/// address interval it can touch across the simulated iterations and the
/// cluster it issues from (`None` when the issuing cluster depends on the
/// address, i.e. a DDGT home-gated store).
#[derive(Debug, Clone, Copy)]
pub struct SiteRange {
    /// Store (true) or load (false).
    pub is_store: bool,
    /// The issuing cluster, when statically known.
    pub cluster: Option<usize>,
    /// Smallest byte address the site can access.
    pub lo_addr: u64,
    /// Largest byte address the site can access.
    pub hi_addr: u64,
    /// Access width in bytes.
    pub width: u64,
}

impl SiteRange {
    /// The inclusive granule interval this site can touch.
    fn granule_range(&self) -> (u64, u64) {
        (
            self.lo_addr / GRANULE,
            self.hi_addr
                .saturating_add(self.width.max(1))
                .saturating_sub(1)
                / GRANULE,
        )
    }
}

/// Whether any (load, store) pair of `sites` could race: their granule
/// intervals overlap and they can issue from different clusters (a gated
/// store's cluster is address-dependent, so it conflicts with any load).
/// When this returns `false`, running the detector is provably a no-op —
/// same-cluster pairs are exempt and disjoint granules never meet in one
/// window — so the engine can skip recording entirely and still report
/// byte-identical (zero) violation counts.
#[must_use]
pub fn hazard_possible(sites: &[SiteRange]) -> bool {
    sites.iter().filter(|s| s.is_store).any(|store| {
        let (slo, shi) = store.granule_range();
        sites.iter().filter(|s| !s.is_store).any(|load| {
            let (llo, lhi) = load.granule_range();
            let overlap = slo <= lhi && llo <= shi;
            let cross_cluster = match (store.cluster, load.cluster) {
                (Some(s), Some(l)) => s != l,
                _ => true,
            };
            overlap && cross_cluster
        })
    })
}

/// The store and load windows of one granule, stored together so each
/// recorded access does a single hash lookup (check the opposite window,
/// push into its own) instead of one per map.
#[derive(Debug, Clone, Copy, Default)]
struct GranuleWindows {
    stores: Window,
    loads: Window,
}

/// Counts memory-ordering violations.
#[derive(Debug, Clone, Default)]
pub struct ViolationDetector {
    /// granule → recent stores and loads.
    windows: FxHashMap<u64, GranuleWindows>,
    violations: u64,
    /// Violations attributed to the issuing cluster of the access that
    /// detected them (dense, no map).
    by_cluster: ClusterCounts,
}

impl ViolationDetector {
    /// Creates an empty detector.
    #[must_use]
    pub fn new() -> Self {
        ViolationDetector::default()
    }

    /// Number of ordering violations observed so far.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Violations split by the cluster that issued the detecting access.
    #[must_use]
    pub fn violations_by_cluster(&self) -> &ClusterCounts {
        &self.by_cluster
    }

    /// Records a store to `addr` with sequential program order `po` whose
    /// home module performs the write at `write_time`; counts an anti
    /// violation for every earlier load whose read had not yet been
    /// performed when this write landed.
    pub fn record_store(
        &mut self,
        addr: u64,
        width: u64,
        po: u64,
        write_time: u64,
        cluster: usize,
    ) {
        let mut violated = false;
        for g in granules(addr, width) {
            let w = self.windows.entry(g).or_default();
            violated |= w
                .loads
                .as_slice()
                .iter()
                .any(|&(p, read, c)| c != cluster && p < po && read >= write_time);
            w.stores.push((po, write_time, cluster));
        }
        self.violations += u64::from(violated);
        if violated {
            self.by_cluster.add(cluster, 1);
        }
    }

    /// Records a load from `addr` with program order `po` whose home
    /// module performs the read at `read_time`; counts a flow violation
    /// if the program-order-latest prior store had not yet written, or an
    /// anti violation if a later store had already overwritten the value.
    pub fn record_load(&mut self, addr: u64, width: u64, po: u64, read_time: u64, cluster: usize) {
        let mut violated = false;
        for g in granules(addr, width) {
            let w = self.windows.entry(g).or_default();
            let window = w.stores.as_slice();
            let stale = window
                .iter()
                .filter(|&&(p, _, _)| p < po)
                .max_by_key(|&&(p, _, _)| p)
                .is_some_and(|&(_, write, c)| c != cluster && write > read_time);
            let overwritten = window
                .iter()
                .any(|&(p, write, c)| c != cluster && p > po && write <= read_time);
            violated |= stale || overwritten;
            w.loads.push((po, read_time, cluster));
        }
        self.violations += u64::from(violated);
        if violated {
            self.by_cluster.add(cluster, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_arrival_is_clean() {
        let mut d = ViolationDetector::new();
        d.record_store(100, 4, 1, 10, 3);
        d.record_load(100, 4, 2, 11, 0);
        assert_eq!(d.violations(), 0);
    }

    #[test]
    fn late_store_is_a_flow_violation() {
        let mut d = ViolationDetector::new();
        // Store reaches the home module at t=20, but the aliased load read
        // at t=12: stale value (the paper's Figure 2 scenario).
        d.record_store(100, 4, 1, 20, 3);
        d.record_load(100, 4, 2, 12, 0);
        assert_eq!(d.violations(), 1);
    }

    #[test]
    fn early_later_store_is_an_anti_violation_at_load() {
        let mut d = ViolationDetector::new();
        // The store is sequentially after the load but its update arrived
        // first: the load reads a too-new value.
        d.record_store(100, 4, 5, 1, 3);
        d.record_load(100, 4, 2, 3, 0);
        assert_eq!(d.violations(), 1);
    }

    #[test]
    fn anti_violation_detected_at_store_time() {
        let mut d = ViolationDetector::new();
        // Load (po 2) reads at t=6; a later store (po 5) writes at t=4 —
        // the load will observe the new value. The load is recorded
        // first (issue order), the store detects the hazard.
        d.record_load(100, 4, 2, 6, 0);
        d.record_store(100, 4, 5, 4, 3);
        assert_eq!(d.violations(), 1);
    }

    #[test]
    fn store_after_load_read_is_clean() {
        let mut d = ViolationDetector::new();
        d.record_load(100, 4, 2, 3, 0);
        d.record_store(100, 4, 5, 4, 3); // writes after the read: fine
        assert_eq!(d.violations(), 0);
    }

    #[test]
    fn loads_before_any_store_are_clean() {
        let mut d = ViolationDetector::new();
        d.record_load(100, 4, 0, 5, 0);
        d.record_store(100, 4, 1, 10, 3);
        assert_eq!(d.violations(), 0);
    }

    #[test]
    fn latest_prior_store_decides_flow() {
        let mut d = ViolationDetector::new();
        d.record_store(100, 4, 1, 5, 3); // early store, already arrived
        d.record_store(100, 4, 3, 50, 3); // the latest prior store is late
        d.record_load(100, 4, 4, 10, 0);
        assert_eq!(d.violations(), 1);
    }

    #[test]
    fn distinct_addresses_do_not_interact() {
        let mut d = ViolationDetector::new();
        d.record_store(100, 4, 1, 100, 3);
        d.record_load(104, 4, 2, 1, 0);
        assert_eq!(d.violations(), 0);
    }

    #[test]
    fn window_eviction_keeps_recent_program_order() {
        let mut d = ViolationDetector::new();
        for po in 0..50 {
            d.record_store(8, 4, po, po, 3);
        }
        // po=49 store wrote at t=49; load at read_time 48 sees it late.
        d.record_load(8, 4, 50, 48, 0);
        assert_eq!(d.violations(), 1);
    }

    #[test]
    fn partial_overlap_is_detected() {
        // A 4-byte store at 5 and a 2-byte load at 8 share byte 8.
        let mut d = ViolationDetector::new();
        d.record_store(5, 4, 1, 20, 3);
        d.record_load(8, 2, 2, 12, 0);
        assert_eq!(d.violations(), 1);
    }

    #[test]
    fn disjoint_ranges_do_not_collide() {
        let mut d = ViolationDetector::new();
        d.record_store(0, 4, 1, 20, 3);
        d.record_load(4, 4, 2, 12, 0);
        assert_eq!(d.violations(), 0);
    }

    #[test]
    fn same_cluster_pairs_are_exempt() {
        // In-order issue serializes same-cluster accesses regardless of
        // modelled timing (paper Section 3.2, fact 1).
        let mut d = ViolationDetector::new();
        d.record_store(100, 4, 1, 20, 2);
        d.record_load(100, 4, 2, 12, 2);
        assert_eq!(d.violations(), 0);
    }

    #[test]
    fn window_never_exceeds_capacity_and_keeps_newest() {
        let mut w = Window::default();
        for po in 0..40u64 {
            w.push((po, po, 0));
        }
        assert_eq!(w.as_slice().len(), WINDOW);
        // The retained set is the WINDOW largest program orders.
        let mut pos: Vec<u64> = w.as_slice().iter().map(|&(p, _, _)| p).collect();
        pos.sort_unstable();
        assert_eq!(pos, (24..40).collect::<Vec<_>>());
        // An entry older than everything resident is dropped outright.
        w.push((1, 1, 0));
        assert!(!w.as_slice().iter().any(|&(p, _, _)| p == 1));
    }

    #[test]
    fn violations_attribute_to_issuing_cluster() {
        let mut d = ViolationDetector::new();
        d.record_store(100, 4, 1, 20, 3);
        d.record_load(100, 4, 2, 12, 0); // cluster 0 reads stale data
        assert_eq!(d.violations(), 1);
        assert_eq!(d.violations_by_cluster().get(0), 1);
        assert_eq!(d.violations_by_cluster().get(3), 0);
        assert_eq!(d.violations_by_cluster().total(), d.violations());
    }

    #[test]
    fn one_violation_per_offending_load() {
        let mut d = ViolationDetector::new();
        // Both a stale prior store and an early later store: still one
        // violation for this load.
        d.record_store(100, 4, 1, 30, 3);
        d.record_store(100, 4, 9, 2, 3);
        d.record_load(100, 4, 4, 10, 0);
        assert_eq!(d.violations(), 1);
    }
}
