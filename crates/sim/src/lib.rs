//! Cycle-level, trace-driven simulator for a stall-on-use clustered VLIW
//! processor with a word-interleaved distributed data cache (paper
//! Sections 2.1 and 4.1).
//!
//! The simulator executes a modulo [`distvliw_sched::Schedule`] over the
//! iterations of a [`distvliw_ir::LoopKernel`]:
//!
//! * **Lockstep stall-on-use**: the machine freezes when an issuing
//!   consumer's operand has not arrived; stall time and compute time are
//!   accounted separately (the two segments of the paper's Figure 7
//!   bars).
//! * **Distributed memory system** ([`MemorySystem`]): per-cluster cache
//!   modules, shared memory buses with contention, a 4-port always-hit
//!   next level, request combining (the paper's *combined* accesses) and
//!   optional per-cluster Attraction Buffers (paper Section 5).
//! * **Store-replication semantics**: of a DDGT replica group only the
//!   instance in the access's home cluster commits; the rest are
//!   nullified (refreshing resident Attraction-Buffer copies).
//! * **Violation detection** ([`ViolationDetector`]): stale reads that
//!   the unsound Free baseline would perform are counted, so tests can
//!   assert MDC and DDGT eliminate them.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod engine;
mod fx;
mod memsys;
mod stats;
mod violation;

pub use engine::{simulate_kernel, simulate_kernel_detailed, SimOptions};
pub use memsys::{AccessResult, BatchAccess, MemorySystem, ResourcePool, SubblockCache};
pub use stats::{AccessCounts, ClusterCounts, ClusterUsage, SimStats};
pub use violation::{hazard_possible, SiteRange, ViolationDetector};
