//! Simulation statistics.

use std::fmt;
use std::ops::{Add, AddAssign};

use distvliw_arch::AccessClass;

/// Counters for the five access classes of the paper's Figure 6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounts([u64; 5]);

impl AccessCounts {
    /// All-zero counters.
    #[must_use]
    pub fn new() -> Self {
        AccessCounts::default()
    }

    /// Records one access of the given class.
    pub fn record(&mut self, class: AccessClass) {
        self.0[class.index()] += 1;
    }

    /// The count for one class.
    #[must_use]
    pub fn get(&self, class: AccessClass) -> u64 {
        self.0[class.index()]
    }

    /// Total classified accesses.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// The raw per-class counters, indexed like [`AccessClass::ALL`].
    /// With [`AccessCounts::from_array`], the lossless round-trip the
    /// serving layer's on-disk codec relies on.
    #[must_use]
    pub fn as_array(&self) -> [u64; 5] {
        self.0
    }

    /// Reconstructs counters from [`AccessCounts::as_array`] output.
    #[must_use]
    pub fn from_array(counts: [u64; 5]) -> Self {
        AccessCounts(counts)
    }

    /// Fraction of accesses in `class` (0 when empty).
    #[must_use]
    pub fn fraction(&self, class: AccessClass) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(class) as f64 / t as f64
        }
    }

    /// The paper's *local hit ratio*: local hits over all accesses.
    #[must_use]
    pub fn local_hit_ratio(&self) -> f64 {
        self.fraction(AccessClass::LocalHit)
    }

    /// Scales every counter (used to extrapolate one simulated invocation
    /// to the loop's full invocation count).
    #[must_use]
    pub fn scaled(mut self, factor: u64) -> Self {
        for c in &mut self.0 {
            *c *= factor;
        }
        self
    }
}

impl Add for AccessCounts {
    type Output = AccessCounts;

    fn add(mut self, rhs: AccessCounts) -> AccessCounts {
        self += rhs;
        self
    }
}

impl AddAssign for AccessCounts {
    fn add_assign(&mut self, rhs: AccessCounts) {
        for (a, b) in self.0.iter_mut().zip(rhs.0) {
            *a += b;
        }
    }
}

impl fmt::Display for AccessCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, class) in AccessClass::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{class}={}", self.get(*class))?;
        }
        Ok(())
    }
}

/// A dense per-cluster counter table, indexed by cluster id.
///
/// Per-cluster accumulation in the simulator never goes through a map:
/// cluster ids are small contiguous integers, so a flat `Vec<u64>` gives
/// O(1) increments with no hashing. The [`crate::ViolationDetector`]
/// attributes violations through this table; the
/// [`crate::MemorySystem`] follows the same dense pattern with one
/// [`AccessCounts`] per cluster (see
/// [`crate::MemorySystem::counts_of_cluster`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterCounts(Vec<u64>);

impl ClusterCounts {
    /// All-zero counters for `n` clusters. The table also grows on demand
    /// if a larger cluster id is recorded.
    #[must_use]
    pub fn new(n: usize) -> Self {
        ClusterCounts(vec![0; n])
    }

    /// Adds `n` to `cluster`'s counter, growing the table if needed.
    pub fn add(&mut self, cluster: usize, n: u64) {
        if cluster >= self.0.len() {
            self.0.resize(cluster + 1, 0);
        }
        self.0[cluster] += n;
    }

    /// The count for `cluster` (0 if never recorded).
    #[must_use]
    pub fn get(&self, cluster: usize) -> u64 {
        self.0.get(cluster).copied().unwrap_or(0)
    }

    /// Sum over all clusters.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// The raw counters, indexed by cluster.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }

    /// Scales every counter (invocation extrapolation).
    #[must_use]
    pub fn scaled(mut self, factor: u64) -> Self {
        for c in &mut self.0 {
            *c *= factor;
        }
        self
    }
}

impl AddAssign<&ClusterCounts> for ClusterCounts {
    fn add_assign(&mut self, rhs: &ClusterCounts) {
        if self.0.len() < rhs.0.len() {
            self.0.resize(rhs.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(&rhs.0) {
            *a += b;
        }
    }
}

/// Per-cluster resource usage of one simulated loop (or the aggregate of
/// many): the counters PR 2 plumbed into the memory system and violation
/// detector, surfaced so reports and the serving layer can quantify
/// cluster imbalance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterUsage {
    /// Classified accesses issued by each cluster (same totals as
    /// [`SimStats::accesses`], split by issuing cluster).
    pub accesses: Vec<AccessCounts>,
    /// Coherence violations attributed to each cluster's accesses.
    pub violations: ClusterCounts,
    /// Memory-bus grants issued over the run
    /// ([`crate::ResourcePool::grants`] of the bus pool).
    pub mem_bus_grants: u64,
    /// Next-level port grants issued over the run.
    pub next_level_grants: u64,
}

impl ClusterUsage {
    /// Total accesses issued by `cluster`.
    #[must_use]
    pub fn accesses_of(&self, cluster: usize) -> u64 {
        self.accesses.get(cluster).map_or(0, AccessCounts::total)
    }

    /// The imbalance ratio: the busiest cluster's access count over the
    /// per-cluster mean. 1.0 means perfectly balanced; `n_clusters`
    /// means one cluster issued everything. Returns 1.0 when no accesses
    /// were recorded.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let totals: Vec<u64> = self.accesses.iter().map(AccessCounts::total).collect();
        let sum: u64 = totals.iter().sum();
        if sum == 0 || totals.is_empty() {
            return 1.0;
        }
        let max = *totals.iter().max().expect("nonempty totals");
        max as f64 * totals.len() as f64 / sum as f64
    }

    /// Scales every counter (invocation extrapolation).
    #[must_use]
    pub fn scaled(mut self, factor: u64) -> Self {
        for a in &mut self.accesses {
            *a = a.scaled(factor);
        }
        self.violations = self.violations.scaled(factor);
        self.mem_bus_grants *= factor;
        self.next_level_grants *= factor;
        self
    }
}

impl AddAssign<&ClusterUsage> for ClusterUsage {
    fn add_assign(&mut self, rhs: &ClusterUsage) {
        if self.accesses.len() < rhs.accesses.len() {
            self.accesses
                .resize(rhs.accesses.len(), AccessCounts::new());
        }
        for (a, b) in self.accesses.iter_mut().zip(&rhs.accesses) {
            *a += *b;
        }
        self.violations += &rhs.violations;
        self.mem_bus_grants += rhs.mem_bus_grants;
        self.next_level_grants += rhs.next_level_grants;
    }
}

/// Result of simulating one loop (or the aggregate of many).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles in which the processor issued (schedule advance).
    pub compute_cycles: u64,
    /// Cycles in which the processor was frozen waiting for an operand.
    pub stall_cycles: u64,
    /// Classified memory accesses.
    pub accesses: AccessCounts,
    /// Stale reads the Free baseline would have performed (always zero
    /// under MDC/DDGT).
    pub coherence_violations: u64,
    /// Dynamic inter-cluster register copies executed.
    pub comm_ops: u64,
    /// Loop iterations simulated (after extrapolation).
    pub iterations: u64,
    /// Cycles the memory buses were granted (grants × per-grant
    /// occupancy), summed over all buses: the paper's bus-occupancy
    /// pressure metric.
    pub bus_busy_cycles: u64,
    /// The drain window of the run: when the last memory-bus transfer
    /// completed, or the schedule drained, whichever is later. Stores
    /// are fire-and-forget, so the buses can stay busy *after* the last
    /// issue cycle; the capacity invariant `bus_busy_cycles ≤
    /// bus_drain_cycles × bus count` always holds and is pinned by the
    /// property suite. Because each kernel's window is at least its
    /// `total_cycles()`, the invariant survives summing over kernels
    /// and invocation scaling.
    pub bus_drain_cycles: u64,
}

impl SimStats {
    /// Total cycles: compute + stall.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.stall_cycles
    }

    /// The paper's local hit ratio.
    #[must_use]
    pub fn local_hit_ratio(&self) -> f64 {
        self.accesses.local_hit_ratio()
    }

    /// Scales all counters by `factor` (invocation extrapolation).
    #[must_use]
    pub fn scaled(mut self, factor: u64) -> Self {
        self.compute_cycles *= factor;
        self.stall_cycles *= factor;
        self.accesses = self.accesses.scaled(factor);
        self.coherence_violations *= factor;
        self.comm_ops *= factor;
        self.iterations *= factor;
        self.bus_busy_cycles *= factor;
        self.bus_drain_cycles *= factor;
        self
    }
}

impl Add for SimStats {
    type Output = SimStats;

    fn add(mut self, rhs: SimStats) -> SimStats {
        self += rhs;
        self
    }
}

impl AddAssign for SimStats {
    fn add_assign(&mut self, rhs: SimStats) {
        self.compute_cycles += rhs.compute_cycles;
        self.stall_cycles += rhs.stall_cycles;
        self.accesses += rhs.accesses;
        self.coherence_violations += rhs.coherence_violations;
        self.comm_ops += rhs.comm_ops;
        self.iterations += rhs.iterations;
        self.bus_busy_cycles += rhs.bus_busy_cycles;
        self.bus_drain_cycles += rhs.bus_drain_cycles;
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles={} (compute={} stall={}) accesses=[{}] violations={} copies={} bus_busy={}",
            self.total_cycles(),
            self.compute_cycles,
            self.stall_cycles,
            self.accesses,
            self.coherence_violations,
            self.comm_ops,
            self.bus_busy_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_fraction() {
        let mut c = AccessCounts::new();
        for _ in 0..3 {
            c.record(AccessClass::LocalHit);
        }
        c.record(AccessClass::RemoteMiss);
        assert_eq!(c.total(), 4);
        assert!((c.local_hit_ratio() - 0.75).abs() < 1e-12);
        assert!((c.fraction(AccessClass::RemoteMiss) - 0.25).abs() < 1e-12);
        assert_eq!(c.fraction(AccessClass::Combined), 0.0);
    }

    #[test]
    fn empty_ratios_are_zero() {
        let c = AccessCounts::new();
        assert_eq!(c.local_hit_ratio(), 0.0);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn scaling_and_addition() {
        let mut a = SimStats {
            compute_cycles: 10,
            stall_cycles: 5,
            coherence_violations: 1,
            comm_ops: 2,
            iterations: 4,
            ..SimStats::default()
        };
        a.accesses.record(AccessClass::LocalHit);
        let doubled = a.scaled(2);
        assert_eq!(doubled.total_cycles(), 30);
        assert_eq!(doubled.accesses.get(AccessClass::LocalHit), 2);
        let sum = doubled + a;
        assert_eq!(sum.compute_cycles, 30);
        assert_eq!(sum.iterations, 12);
    }

    #[test]
    fn cluster_counts_are_dense_and_grow() {
        let mut c = ClusterCounts::new(2);
        c.add(0, 3);
        c.add(1, 1);
        c.add(5, 2); // beyond the initial size
        assert_eq!(c.get(0), 3);
        assert_eq!(c.get(5), 2);
        assert_eq!(c.get(9), 0);
        assert_eq!(c.total(), 6);
        assert_eq!(c.as_slice(), &[3, 1, 0, 0, 0, 2]);
    }

    #[test]
    fn bus_busy_scales_and_adds() {
        let a = SimStats {
            bus_busy_cycles: 7,
            ..SimStats::default()
        };
        assert_eq!(a.scaled(3).bus_busy_cycles, 21);
        assert_eq!((a.scaled(3) + a).bus_busy_cycles, 28);
        assert!(a.to_string().contains("bus_busy=7"));
    }

    #[test]
    fn cluster_usage_imbalance_and_merge() {
        let mut a = ClusterUsage {
            accesses: vec![AccessCounts::new(); 4],
            ..ClusterUsage::default()
        };
        assert_eq!(a.imbalance(), 1.0, "empty usage is balanced");
        for _ in 0..6 {
            a.accesses[0].record(AccessClass::LocalHit);
        }
        for c in 1..4 {
            a.accesses[c].record(AccessClass::RemoteHit);
            a.accesses[c].record(AccessClass::RemoteMiss);
        }
        // totals [6, 2, 2, 2]: max 6 over mean 3 → 2.0.
        assert!((a.imbalance() - 2.0).abs() < 1e-12);
        assert_eq!(a.accesses_of(0), 6);
        assert_eq!(a.accesses_of(9), 0);

        a.violations.add(1, 5);
        a.mem_bus_grants = 10;
        a.next_level_grants = 3;
        let doubled = a.clone().scaled(2);
        assert_eq!(doubled.accesses_of(0), 12);
        assert_eq!(doubled.violations.get(1), 10);
        assert_eq!(doubled.mem_bus_grants, 20);

        let mut merged = a.clone();
        merged += &doubled;
        assert_eq!(merged.accesses_of(0), 18);
        assert_eq!(merged.violations.get(1), 15);
        assert_eq!(merged.next_level_grants, 9);
        // Merging a wider table grows the narrower one.
        let mut narrow = ClusterUsage::default();
        narrow += &a;
        assert_eq!(narrow.accesses.len(), 4);
        assert_eq!(narrow.accesses_of(3), 2);
    }

    #[test]
    fn cluster_counts_scale() {
        let mut c = ClusterCounts::new(2);
        c.add(0, 4);
        c.add(1, 1);
        assert_eq!(c.scaled(3).as_slice(), &[12, 3]);
    }

    #[test]
    fn display_mentions_all_classes() {
        let mut s = SimStats::default();
        s.accesses.record(AccessClass::Combined);
        let text = s.to_string();
        assert!(text.contains("combined=1"));
        assert!(text.contains("violations=0"));
    }
}
