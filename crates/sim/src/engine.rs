//! The lockstep, stall-on-use execution engine.
//!
//! Executes a modulo [`Schedule`] over the iterations of a [`LoopKernel`]
//! against the [`MemorySystem`]. Two clocks are kept: the *issue clock*
//! advances one VLIW row per step (compute time), and the *real clock* is
//! the issue clock plus all accumulated stalls. In a stall-on-use
//! processor the whole machine freezes when any issuing operation's
//! operand has not arrived (paper Section 2.1) — so a stall is simply an
//! increment of the global stall counter.
//!
//! The engine is organized for throughput (see `docs/sim.md`):
//!
//! * a **dense event queue** — schedule rows bucketed by issue phase
//!   (`row % II`), so each simulated cycle touches only the rows that can
//!   fire then and empty cycles cost one array probe;
//! * **ring-buffer operand tables** — per-`(node, iteration)` ready times
//!   live in flat tag-checked rings sized to the live iteration window,
//!   replacing per-event hash lookups;
//! * **batched address streams** — each cycle's memory accesses are
//!   gathered into one contiguous slice and handed to
//!   [`MemorySystem::run_batch`] in a single call.
//!
//! All three are pure performance changes: statistics are bit-identical
//! to the per-cycle scan engine (pinned by `tests/golden_sim_stats.rs`).

use distvliw_arch::MachineConfig;
use distvliw_ir::{AddressStream, DepKind, LoopKernel, NodeId, OpKind};
use distvliw_sched::Schedule;

use crate::memsys::{AccessResult, BatchAccess, MemorySystem};
use crate::stats::{ClusterUsage, SimStats};
use crate::violation::{hazard_possible, SiteRange, ViolationDetector};

/// Simulation options.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Iteration cap per invocation; longer loops are simulated for this
    /// many iterations and extrapolated linearly.
    pub max_iterations: u64,
    /// Whether to run the coherence-violation detector.
    pub detect_violations: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_iterations: 1024,
            detect_violations: true,
        }
    }
}

/// One issue event: an operation or an inter-cluster copy.
#[derive(Debug, Clone, Copy)]
enum Event {
    Op(NodeId),
    Copy(usize),
}

/// How one scheduled node executes, resolved once before the main loop so
/// the per-cycle path never consults the DDG or the address-image maps.
/// Address streams are borrowed from the kernel — no per-simulation
/// clone.
#[derive(Debug, Clone, Copy)]
enum ExecKind<'a> {
    /// A load from the given address stream.
    Load {
        /// The execution-input address stream of the load's access site.
        stream: &'a AddressStream,
        /// Access width in bytes.
        width: u64,
    },
    /// A store; `gated` marks DDGT replica-group members, which only
    /// commit in the accessed address's home cluster.
    Store {
        /// The execution-input address stream of the store's access site.
        stream: &'a AddressStream,
        /// Access width in bytes.
        width: u64,
        /// Whether the home-cluster check gates execution.
        gated: bool,
    },
    /// Every other operation: produces its value after a fixed latency.
    Alu {
        /// The operation's base latency in cycles.
        latency: u64,
    },
}

/// The `[min, max]` byte addresses `stream` touches over iterations
/// `0..iters`, or `None` when wrapping arithmetic makes the interval
/// unbounded (the precheck then assumes the full address space).
fn stream_addr_bounds(stream: &AddressStream, iters: u64) -> Option<(u64, u64)> {
    match stream {
        AddressStream::Affine { base, stride } => {
            // Affine streams are monotone in the iteration index, so when
            // the last address doesn't wrap the endpoints bound the whole
            // interval.
            let span = stride.checked_mul(i64::try_from(iters.saturating_sub(1)).ok()?)?;
            let last = base.checked_add_signed(span)?;
            Some(((*base).min(last), (*base).max(last)))
        }
        AddressStream::Indexed(table) => {
            let used = &table[..table.len().min(usize::try_from(iters).ok()?)];
            Some((*used.iter().min()?, *used.iter().max()?))
        }
    }
}

/// A flat ring of `iteration → ready-time` cells per slot, tag-checked so
/// a stale or never-written cell reads as "not produced" (ready time 0) —
/// exactly the semantics of a missing hash-map entry. The ring `window`
/// covers the maximum distance between a value's production and its last
/// architecturally possible use (max dependence distance + pipeline
/// stages + slack), so no live value is ever overwritten; see
/// `docs/sim.md` for the bound's derivation.
struct RingTable {
    vals: Vec<u64>,
    tags: Vec<u64>,
    /// Ring length minus one; the length is rounded up to a power of two
    /// so the per-access ring index is a mask instead of a modulo. A
    /// larger ring only reduces cell aliasing, and aliased cells are
    /// already tag-checked, so the rounding cannot change any lookup.
    window_mask: u64,
}

impl RingTable {
    fn new(slots: usize, window: usize) -> Self {
        let window = window.next_power_of_two();
        RingTable {
            vals: vec![0; slots * window],
            tags: vec![u64::MAX; slots * window],
            window_mask: window as u64 - 1,
        }
    }

    #[inline]
    fn idx(&self, slot: usize, iter: u64) -> usize {
        slot * (self.window_mask as usize + 1) + (iter & self.window_mask) as usize
    }

    /// The value recorded for `(slot, iter)`, or 0 when none was.
    #[inline]
    fn get(&self, slot: usize, iter: u64) -> u64 {
        let i = self.idx(slot, iter);
        if self.tags[i] == iter {
            self.vals[i]
        } else {
            0
        }
    }

    #[inline]
    fn set(&mut self, slot: usize, iter: u64, value: u64) {
        let i = self.idx(slot, iter);
        self.tags[i] = iter;
        self.vals[i] = value;
    }
}

/// One register-flow input of a consumer, with the routing decision
/// (same-cluster → producer's own ready time, cross-cluster → the
/// scheduled copy's arrival) resolved statically.
#[derive(Debug, Clone, Copy)]
struct RfInput {
    producer: u32,
    distance: u64,
    via_copy: bool,
}

/// Simulates `schedule` executing `kernel` on `machine` and returns the
/// aggregate statistics for **all** invocations of the loop (one
/// invocation is simulated against a cold memory system and scaled; the
/// attraction buffers are flushed at the loop boundary by construction).
///
/// # Panics
///
/// Panics if the schedule does not cover the kernel's graph or if a
/// memory operation misses its execution address stream.
#[must_use]
pub fn simulate_kernel(
    machine: &MachineConfig,
    kernel: &LoopKernel,
    schedule: &Schedule,
    options: SimOptions,
) -> SimStats {
    simulate_kernel_detailed(machine, kernel, schedule, options).0
}

/// Like [`simulate_kernel`], additionally returning the per-cluster
/// resource usage ([`ClusterUsage`]): the classified accesses each
/// cluster issued, the violations attributed to each cluster and the
/// bus / next-level grant counts, all scaled the same way as the
/// aggregate statistics. The [`SimStats`] component is identical to what
/// [`simulate_kernel`] returns.
///
/// # Panics
///
/// Panics if the schedule does not cover the kernel's graph or if a
/// memory operation misses its execution address stream.
#[must_use]
pub fn simulate_kernel_detailed(
    machine: &MachineConfig,
    kernel: &LoopKernel,
    schedule: &Schedule,
    options: SimOptions,
) -> (SimStats, ClusterUsage) {
    let sim_start = std::time::Instant::now();
    let mut sim_span = distvliw_obs::Span::enter("sim.kernel");
    let ddg = &kernel.ddg;
    let ii = u64::from(schedule.ii.max(1));
    let span = u64::from(schedule.span);
    let trip = kernel.trip_count.max(1);
    let iters = trip.min(options.max_iterations.max(1));
    let n_clusters = machine.n_clusters;

    // Rows: events indexed by absolute start cycle, then bucketed by
    // issue phase (`row % II`). At issue cycle t only rows congruent to
    // t mod II can fire, so the per-cycle walk touches exactly the rows
    // of one bucket and an empty phase costs a single probe.
    let mut rows: Vec<Vec<Event>> = vec![Vec::new(); span as usize];
    for (&n, op) in &schedule.ops {
        rows[op.start as usize].push(Event::Op(n));
    }
    for (k, c) in schedule.copies.iter().enumerate() {
        rows[c.start as usize].push(Event::Copy(k));
    }
    let mut phase_rows: Vec<Vec<u64>> = vec![Vec::new(); ii as usize];
    for s in 0..span {
        if !rows[s as usize].is_empty() {
            phase_rows[(s % ii) as usize].push(s);
        }
    }

    let n_nodes = ddg.node_ids().map(|n| n.index() + 1).max().unwrap_or(0);

    // Replica groups: nodes that execute conditionally on the home check.
    let mut in_group = vec![false; n_nodes];
    for n in ddg.node_ids() {
        if let Some(root) = ddg.replica_of(n) {
            in_group[n.index()] = true;
            in_group[root.index()] = true;
        }
    }

    // Per-node execution recipe, cluster and sequence number, resolved
    // once so the hot loop is pure array indexing.
    let mut cluster = vec![0usize; n_nodes];
    let mut seq = vec![0u64; n_nodes];
    let mut exec: Vec<ExecKind<'_>> = vec![ExecKind::Alu { latency: 0 }; n_nodes];
    // Memory sites summarized for the static hazard precheck.
    let mut sites: Vec<SiteRange> = Vec::new();
    for (&n, op) in &schedule.ops {
        let ni = n.index();
        cluster[ni] = op.cluster;
        seq[ni] = u64::from(ddg.seq(n));
        let node = ddg.node(n);
        exec[ni] = match node.kind {
            OpKind::Load => ExecKind::Load {
                stream: kernel
                    .exec
                    .get(node.mem_id().expect("load has a site"))
                    .expect("load has a bound address stream"),
                width: node.mem.expect("load has a site").width.bytes(),
            },
            OpKind::Store => ExecKind::Store {
                stream: kernel
                    .exec
                    .get(node.mem_id().expect("store has a site"))
                    .expect("store has a bound address stream"),
                width: node.mem.expect("store has a site").width.bytes(),
                gated: in_group[ni],
            },
            kind => ExecKind::Alu {
                latency: u64::from(kind.base_latency()),
            },
        };
        if let ExecKind::Load { stream, width } | ExecKind::Store { stream, width, .. } = exec[ni] {
            let gated = matches!(exec[ni], ExecKind::Store { gated: true, .. });
            let (lo_addr, hi_addr) = stream_addr_bounds(stream, iters).unwrap_or((0, u64::MAX));
            sites.push(SiteRange {
                is_store: matches!(exec[ni], ExecKind::Store { .. }),
                cluster: (!gated).then_some(op.cluster),
                lo_addr,
                hi_addr,
                width,
            });
        }
    }

    // Static hazard precheck: when no cross-cluster (load, store) pair
    // can ever touch a common granule the detector is provably a no-op,
    // so skip recording entirely — the reported counts (all zero) are
    // byte-identical to running it.
    let detect = options.detect_violations && hazard_possible(&sites);

    // Register-flow inputs flattened to CSR, routing pre-resolved.
    let mut input_lists: Vec<Vec<RfInput>> = vec![Vec::new(); n_nodes];
    let mut max_distance = 0u64;
    for (_, d) in ddg.deps() {
        if d.kind == DepKind::RegFlow && d.src != d.dst {
            let distance = u64::from(d.distance);
            max_distance = max_distance.max(distance);
            input_lists[d.dst.index()].push(RfInput {
                producer: d.src.0,
                distance,
                via_copy: schedule.op(d.src).cluster != schedule.op(d.dst).cluster,
            });
        }
    }
    let mut rf_off: Vec<usize> = Vec::with_capacity(n_nodes + 1);
    let mut rf_inputs: Vec<RfInput> = Vec::new();
    rf_off.push(0);
    for list in &input_lists {
        rf_inputs.extend_from_slice(list);
        rf_off.push(rf_inputs.len());
    }

    let body_seq_span = u64::from(ddg.node_ids().map(|n| ddg.seq(n)).max().unwrap_or(0) + 1);

    // Operand ready times: `(node, iter)` and `(producer, cluster, iter)`
    // cells in tag-checked rings sized to the live iteration window.
    let window = (max_distance + span.div_ceil(ii) + 2) as usize;
    let mut ready = RingTable::new(n_nodes, window);
    let mut copy_ready = RingTable::new(n_nodes * n_clusters, window);

    let mut ms = MemorySystem::new(machine);
    let mut detector = ViolationDetector::new();

    let total_rows = (iters - 1) * ii + span;
    let mut stall = 0u64;
    let mut comm_ops = 0u64;
    let mut batches = 0u64;
    let bus_lat = u64::from(machine.reg_buses.latency);

    let mut batch: Vec<BatchAccess> = Vec::new();
    // (node index, iteration, width) per batched access, for the ready
    // table and the violation detector.
    let mut batch_meta: Vec<(usize, u64, u64)> = Vec::new();
    let mut batch_results: Vec<Option<AccessResult>> = Vec::new();
    // The events firing this cycle with their iteration, collected during
    // the stall walk so the execute pass scans one flat slice instead of
    // re-walking the phase's rows.
    let mut fire: Vec<(Event, u64)> = Vec::new();

    for t in 0..total_rows {
        let active = &phase_rows[(t % ii) as usize];
        if active.is_empty() {
            continue;
        }

        // Phase 1: stall-on-use — the row issues only once every operand
        // of every issuing operation has arrived. Rows are ascending, so
        // the first not-yet-reached row (pipeline fill) ends the walk;
        // drained rows (iteration past the trip) are skipped. Firing
        // events are collected as they are checked, so the execute pass
        // below consumes one flat slice.
        let now = t + stall;
        let mut need = now;
        fire.clear();
        for &s in active {
            if s > t {
                break;
            }
            let i = (t - s) / ii;
            if i >= iters {
                continue;
            }
            for &ev in &rows[s as usize] {
                fire.push((ev, i));
                match ev {
                    Event::Op(n) => {
                        let ni = n.index();
                        for inp in &rf_inputs[rf_off[ni]..rf_off[ni + 1]] {
                            let Some(src_iter) = i.checked_sub(inp.distance) else {
                                continue; // live-in from before the loop
                            };
                            let at = if inp.via_copy {
                                copy_ready
                                    .get(inp.producer as usize * n_clusters + cluster[ni], src_iter)
                            } else {
                                ready.get(inp.producer as usize, src_iter)
                            };
                            need = need.max(at);
                        }
                    }
                    Event::Copy(k) => {
                        need = need.max(ready.get(schedule.copies[k].producer.index(), i));
                    }
                }
            }
        }
        if fire.is_empty() {
            continue;
        }
        stall += need - now;
        let now = need;

        // Phase 2a: execute non-memory effects and gather the cycle's
        // memory accesses — in event order — into one contiguous batch.
        batch.clear();
        batch_meta.clear();
        for &(ev, i) in &fire {
            match ev {
                Event::Op(n) => {
                    let ni = n.index();
                    match &exec[ni] {
                        ExecKind::Alu { latency } => ready.set(ni, i, now + latency),
                        ExecKind::Load { stream, width } => {
                            batch.push(BatchAccess {
                                cluster: cluster[ni],
                                addr: stream.addr_at(i),
                                store: false,
                                executes: true,
                            });
                            batch_meta.push((ni, i, *width));
                        }
                        ExecKind::Store {
                            stream,
                            width,
                            gated,
                        } => {
                            let addr = stream.addr_at(i);
                            let executes = !gated || machine.home_cluster(addr) == cluster[ni];
                            batch.push(BatchAccess {
                                cluster: cluster[ni],
                                addr,
                                store: true,
                                executes,
                            });
                            batch_meta.push((ni, i, *width));
                        }
                    }
                }
                Event::Copy(k) => {
                    let c = &schedule.copies[k];
                    copy_ready.set(
                        c.producer.index() * n_clusters + c.to_cluster,
                        i,
                        now + bus_lat,
                    );
                    comm_ops += 1;
                }
            }
        }

        // Phase 2b: the memory system consumes the whole cycle window as
        // one slice; results are applied in the same event order, so the
        // violation detector sees the sequence an access-at-a-time engine
        // would have produced.
        if !batch.is_empty() {
            batches += 1;
            ms.run_batch(now, &batch, &mut batch_results);
            for ((req, res), &(ni, i, width)) in batch.iter().zip(&batch_results).zip(&batch_meta) {
                let po = i * body_seq_span + seq[ni];
                if req.store {
                    if let Some(res) = res {
                        if detect {
                            detector.record_store(req.addr, width, po, res.observed, req.cluster);
                        }
                    }
                } else {
                    let res = res.as_ref().expect("loads always produce a result");
                    ready.set(ni, i, res.ready);
                    if detect {
                        detector.record_load(req.addr, width, po, res.observed, req.cluster);
                    }
                }
            }
        }
    }

    let raw_bus_busy = ms.bus_busy_cycles();
    let mut stats = SimStats {
        compute_cycles: total_rows,
        stall_cycles: stall,
        accesses: ms.counts,
        coherence_violations: detector.violations(),
        comm_ops,
        iterations: iters,
        bus_busy_cycles: ms.bus_busy_cycles(),
        // The drain window covers both the core and the bus tail, so
        // the capacity invariant (busy ≤ drain × bus count) is additive
        // across kernels.
        bus_drain_cycles: ms.bus_drain_cycles().max(total_rows + stall),
    };
    let mut usage = ClusterUsage {
        accesses: (0..n_clusters).map(|c| ms.counts_of_cluster(c)).collect(),
        violations: detector.violations_by_cluster().clone(),
        mem_bus_grants: ms.mem_bus_grants(),
        next_level_grants: ms.next_level_grants(),
    };

    // Extrapolate truncated loops linearly, then scale by invocations.
    if trip > iters {
        let factor = trip / iters;
        stats = stats.scaled(factor);
        usage = usage.scaled(factor);
        // Compute time is exact: the pipeline fills once per invocation.
        stats.compute_cycles = (trip - 1) * ii + span;
        stats.iterations = trip;
    }
    let invocations = kernel.invocations.max(1);

    // Observability: the simulated-work counters report what this call
    // actually walked (pre-extrapolation), so they track simulator cost
    // rather than modeled time.
    sim_span.field_u64("ii", ii);
    sim_span.field_u64("iterations", iters);
    sim_span.field_u64("cycles", total_rows + stall);
    sim_span.field_u64("batches", batches);
    let reg = distvliw_obs::global();
    reg.counter("sim_kernels_total", "Kernel simulations completed")
        .inc();
    reg.counter(
        "sim_cycles_total",
        "Cycles walked by the event loop (compute + stall, pre-extrapolation)",
    )
    .add(total_rows + stall);
    reg.counter(
        "sim_stall_cycles_total",
        "Stall-on-use cycles observed (pre-extrapolation)",
    )
    .add(stall);
    reg.counter(
        "sim_batches_total",
        "Memory-system batch windows executed via run_batch",
    )
    .add(batches);
    reg.counter(
        "sim_bus_busy_cycles_total",
        "Memory-bus busy cycles accumulated (pre-extrapolation)",
    )
    .add(raw_bus_busy);
    reg.histogram(
        "sim_kernel_duration_us",
        "Wall time of one kernel simulation in microseconds",
    )
    .record_micros(sim_start.elapsed());

    (stats.scaled(invocations), usage.scaled(invocations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_arch::{AttractionBufferConfig, LatencyClass, MachineConfig};
    use distvliw_coherence::{find_chains, transform, SchedConstraints};
    use distvliw_ir::{AddressStream, DdgBuilder, DepKind, PrefMap, Width};
    use distvliw_sched::{Heuristic, ModuloScheduler};

    fn machine() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    fn schedule_free(kernel: &LoopKernel, m: &MachineConfig) -> Schedule {
        ModuloScheduler::new(m)
            .schedule(
                &kernel.ddg,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .expect("schedulable")
    }

    /// A loop streaming one load per iteration, stride 16 (single home).
    fn streaming_kernel(trip: u64) -> LoopKernel {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let _a = b.op(distvliw_ir::OpKind::IntAlu, &[l]);
        let g = b.finish();
        let mem = g.node(l).mem_id().unwrap();
        let mut k = LoopKernel::new("stream", g, trip);
        for img in [&mut k.profile, &mut k.exec] {
            img.insert(
                mem,
                AddressStream::Affine {
                    base: 0,
                    stride: 16,
                },
            );
        }
        k
    }

    #[test]
    fn compute_time_matches_formula() {
        let k = streaming_kernel(100);
        let m = machine();
        let s = schedule_free(&k, &m);
        let stats = simulate_kernel(&m, &k, &s, SimOptions::default());
        assert_eq!(stats.compute_cycles, s.compute_cycles(100));
        assert_eq!(stats.iterations, 100);
        assert_eq!(stats.accesses.total(), 100);
    }

    #[test]
    fn streaming_load_mostly_hits_after_cold_miss() {
        let k = streaming_kernel(64);
        let m = machine();
        let s = schedule_free(&k, &m);
        let stats = simulate_kernel(&m, &k, &s, SimOptions::default());
        use distvliw_arch::AccessClass;
        // Stride 16 within 32-byte blocks: one miss per block, one hit.
        // (All accesses are local if the op landed in cluster 0, remote
        // otherwise — either way hits+misses+combined == 64.)
        assert_eq!(stats.accesses.total(), 64);
        assert!(
            stats.accesses.get(AccessClass::LocalMiss)
                + stats.accesses.get(AccessClass::RemoteMiss)
                >= 16
        );
        assert_eq!(stats.coherence_violations, 0);
    }

    #[test]
    fn invocations_scale_stats() {
        let mut k = streaming_kernel(64);
        let m = machine();
        let s = schedule_free(&k, &m);
        let once = simulate_kernel(&m, &k, &s, SimOptions::default());
        k.invocations = 3;
        let thrice = simulate_kernel(&m, &k, &s, SimOptions::default());
        assert_eq!(thrice.total_cycles(), 3 * once.total_cycles());
        assert_eq!(thrice.accesses.total(), 3 * once.accesses.total());
    }

    #[test]
    fn iteration_cap_extrapolates() {
        let k = streaming_kernel(4096);
        let m = machine();
        let s = schedule_free(&k, &m);
        let opts = SimOptions {
            max_iterations: 256,
            detect_violations: true,
        };
        let stats = simulate_kernel(&m, &k, &s, opts);
        assert_eq!(stats.iterations, 4096);
        assert_eq!(stats.compute_cycles, s.compute_cycles(4096));
        assert_eq!(stats.accesses.total(), 4096);
    }

    /// The paper's Figure 2 scenario: a store whose home is cluster A is
    /// scheduled in a *different* cluster, and an aliased load scheduled
    /// in cluster A issues shortly after. Free scheduling reads stale
    /// data; MDC colocation fixes it.
    fn figure2_kernel(trip: u64) -> LoopKernel {
        let mut b = DdgBuilder::new();
        let v = b.op(distvliw_ir::OpKind::IntAlu, &[]);
        let st = b.store(Width::W4, &[v]);
        let ld = b.load(Width::W4);
        let _use = b.op(distvliw_ir::OpKind::IntAlu, &[ld]);
        b.dep(st, ld, DepKind::MemFlow, 0);
        b.dep(ld, st, DepKind::MemAnti, 1); // next iteration overwrites X
        let g = b.finish();
        let (ms_, ml) = (g.node(st).mem_id().unwrap(), g.node(ld).mem_id().unwrap());
        let mut k = LoopKernel::new("fig2", g, trip);
        // Both access the same word each iteration (variable X; stride 0).
        for img in [&mut k.profile, &mut k.exec] {
            img.insert(
                ms_,
                AddressStream::Affine {
                    base: 64,
                    stride: 0,
                },
            );
            img.insert(
                ml,
                AddressStream::Affine {
                    base: 64,
                    stride: 0,
                },
            );
        }
        k
    }

    #[test]
    fn free_scheduling_violates_mdc_does_not() {
        let m = machine();
        let k = figure2_kernel(128);
        // Force the paper's pathological placement: store remote to its
        // home, load local, scheduled as tightly as the MF edge allows.
        let mut constraints = SchedConstraints::none();
        let st = k.ddg.stores().next().unwrap();
        let ld = k.ddg.loads().next().unwrap();
        // Address 64 → home cluster 0 (64/4 % 4 == 0).
        constraints.pinned.insert(st, 3);
        constraints.pinned.insert(ld, 0);
        let free = ModuloScheduler::new(&m)
            .with_latency_relaxation(false)
            .schedule(&k.ddg, &constraints, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        let stats = simulate_kernel(&m, &k, &free, SimOptions::default());
        assert!(
            stats.coherence_violations > 0,
            "remote store + tight local load must read stale data: {stats}"
        );

        // MDC: the chain {st, ld} shares a cluster → no violations.
        let chains = find_chains(&k.ddg);
        let mdc = SchedConstraints::for_mdc(&chains, &k.ddg, None, 4);
        let s = ModuloScheduler::new(&m)
            .schedule(&k.ddg, &mdc, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        assert_eq!(s.op(st).cluster, s.op(ld).cluster);
        let stats = simulate_kernel(&m, &k, &s, SimOptions::default());
        assert_eq!(stats.coherence_violations, 0, "{stats}");
    }

    #[test]
    fn ddgt_store_replication_avoids_violations() {
        let m = machine();
        let mut k = figure2_kernel(128);
        let report = transform(&mut k.ddg, 4);
        assert_eq!(report.replica_groups.len(), 1);
        let constraints = SchedConstraints::for_ddgt(&report);
        let s = ModuloScheduler::new(&m)
            .schedule(&k.ddg, &constraints, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        let stats = simulate_kernel(&m, &k, &s, SimOptions::default());
        assert_eq!(stats.coherence_violations, 0, "{stats}");
        // Exactly one instance executes per iteration: the store count
        // equals load count.
        assert_eq!(stats.accesses.total(), 2 * 128);
    }

    #[test]
    fn copies_execute_once_per_iteration() {
        let m = machine();
        let mut b = DdgBuilder::new();
        let p = b.op(distvliw_ir::OpKind::IntAlu, &[]);
        let c = b.op(distvliw_ir::OpKind::IntAlu, &[p]);
        let g = b.finish();
        let mut k = LoopKernel::new("copy", g, 50);
        let mut constraints = SchedConstraints::none();
        constraints.pinned.insert(p, 0);
        constraints.pinned.insert(c, 1);
        let s = ModuloScheduler::new(&m)
            .schedule(&k.ddg, &constraints, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        assert_eq!(s.comm_ops(), 1);
        k.invocations = 1;
        let stats = simulate_kernel(&m, &k, &s, SimOptions::default());
        assert_eq!(stats.comm_ops, 50);
        assert_eq!(stats.coherence_violations, 0);
    }

    #[test]
    fn detailed_usage_is_consistent_with_aggregate_stats() {
        // Use a trip count beyond the iteration cap so the per-cluster
        // counters go through the same extrapolation as the aggregate.
        let k = streaming_kernel(4096);
        let m = machine();
        let s = schedule_free(&k, &m);
        let opts = SimOptions {
            max_iterations: 256,
            detect_violations: true,
        };
        let (stats, usage) = simulate_kernel_detailed(&m, &k, &s, opts);
        assert_eq!(stats, simulate_kernel(&m, &k, &s, opts));
        assert_eq!(usage.accesses.len(), m.n_clusters);
        let split: u64 = (0..m.n_clusters).map(|c| usage.accesses_of(c)).sum();
        assert_eq!(split, stats.accesses.total());
        assert_eq!(usage.violations.total(), stats.coherence_violations);
        assert_eq!(
            usage.mem_bus_grants * u64::from(m.mem_buses.latency),
            stats.bus_busy_cycles
        );
        // One load per iteration from a single cluster: fully imbalanced.
        assert!((usage.imbalance() - m.n_clusters as f64).abs() < 1e-12);
    }

    #[test]
    fn attraction_buffers_reduce_stall_for_remote_streams() {
        // A load stream walking all clusters' words: without ABs most
        // accesses are remote; with ABs each attracted subblock serves a
        // second access locally.
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let _a = b.op(distvliw_ir::OpKind::IntAlu, &[l]);
        let g = b.finish();
        let mem = g.node(l).mem_id().unwrap();
        let mut k = LoopKernel::new("walk", g, 256);
        for img in [&mut k.profile, &mut k.exec] {
            img.insert(mem, AddressStream::Affine { base: 0, stride: 4 });
        }
        let base = machine();
        let with_ab = machine().with_attraction_buffers(AttractionBufferConfig::paper());
        let s = schedule_free(&k, &base);
        let no_ab = simulate_kernel(&base, &k, &s, SimOptions::default());
        let ab = simulate_kernel(&with_ab, &k, &s, SimOptions::default());
        assert!(
            ab.local_hit_ratio() > no_ab.local_hit_ratio(),
            "AB {} vs {}",
            ab.local_hit_ratio(),
            no_ab.local_hit_ratio()
        );
        assert!(ab.total_cycles() <= no_ab.total_cycles());
    }

    #[test]
    fn assumed_latency_affects_stall_not_compute_split() {
        // A load feeding a consumer scheduled 1 cycle later stalls for the
        // actual latency; compute time stays the schedule's.
        let k = streaming_kernel(64);
        let m = machine();
        let s = ModuloScheduler::new(&m)
            .with_latency_relaxation(false)
            .schedule(
                &k.ddg,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        let stats = simulate_kernel(&m, &k, &s, SimOptions::default());
        assert_eq!(stats.compute_cycles, s.compute_cycles(64));
        assert!(stats.stall_cycles > 0, "cold misses must stall: {stats}");
    }

    #[test]
    fn relaxed_latencies_reduce_stall() {
        let k = streaming_kernel(256);
        let m = machine();
        let tight = ModuloScheduler::new(&m)
            .with_latency_relaxation(false)
            .schedule(
                &k.ddg,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        let relaxed = ModuloScheduler::new(&m)
            .schedule(
                &k.ddg,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        let st_tight = simulate_kernel(&m, &k, &tight, SimOptions::default());
        let st_relaxed = simulate_kernel(&m, &k, &relaxed, SimOptions::default());
        assert!(
            st_relaxed.stall_cycles <= st_tight.stall_cycles,
            "relaxed {st_relaxed} vs tight {st_tight}"
        );
        // The relaxed schedule assumed a larger class for the load.
        let load = k.ddg.loads().next().unwrap();
        assert!(relaxed.op(load).assumed_class >= Some(LatencyClass::LocalHit));
    }
}
