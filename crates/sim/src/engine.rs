//! The lockstep, stall-on-use execution engine.
//!
//! Executes a modulo [`Schedule`] over the iterations of a [`LoopKernel`]
//! against the [`MemorySystem`]. Two clocks are kept: the *issue clock*
//! advances one VLIW row per step (compute time), and the *real clock* is
//! the issue clock plus all accumulated stalls. In a stall-on-use
//! processor the whole machine freezes when any issuing operation's
//! operand has not arrived (paper Section 2.1) — so a stall is simply an
//! increment of the global stall counter.

use std::collections::HashMap;

use distvliw_arch::MachineConfig;
use distvliw_ir::{DepKind, LoopKernel, NodeId, OpKind};
use distvliw_sched::Schedule;

use crate::memsys::MemorySystem;
use crate::stats::SimStats;
use crate::violation::ViolationDetector;

/// Simulation options.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Iteration cap per invocation; longer loops are simulated for this
    /// many iterations and extrapolated linearly.
    pub max_iterations: u64,
    /// Whether to run the coherence-violation detector.
    pub detect_violations: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_iterations: 1024,
            detect_violations: true,
        }
    }
}

/// One issue event: an operation or an inter-cluster copy.
#[derive(Debug, Clone, Copy)]
enum Event {
    Op(NodeId),
    Copy(usize),
}

/// Simulates `schedule` executing `kernel` on `machine` and returns the
/// aggregate statistics for **all** invocations of the loop (one
/// invocation is simulated against a cold memory system and scaled; the
/// attraction buffers are flushed at the loop boundary by construction).
///
/// # Panics
///
/// Panics if the schedule does not cover the kernel's graph or if a
/// memory operation misses its execution address stream.
#[must_use]
pub fn simulate_kernel(
    machine: &MachineConfig,
    kernel: &LoopKernel,
    schedule: &Schedule,
    options: SimOptions,
) -> SimStats {
    let ddg = &kernel.ddg;
    let ii = u64::from(schedule.ii.max(1));
    let span = u64::from(schedule.span);
    let trip = kernel.trip_count.max(1);
    let iters = trip.min(options.max_iterations.max(1));

    // Rows: events indexed by absolute start cycle.
    let mut rows: Vec<Vec<Event>> = vec![Vec::new(); span as usize];
    for (&n, op) in &schedule.ops {
        rows[op.start as usize].push(Event::Op(n));
    }
    for (k, c) in schedule.copies.iter().enumerate() {
        rows[c.start as usize].push(Event::Copy(k));
    }

    // Replica groups: nodes that execute conditionally on the home check.
    let mut in_group: HashMap<NodeId, ()> = HashMap::new();
    for n in ddg.node_ids() {
        if let Some(root) = ddg.replica_of(n) {
            in_group.insert(n, ());
            in_group.insert(root, ());
        }
    }

    // Per-node RF inputs resolved once: (producer, distance, same-cluster).
    let mut rf_inputs: HashMap<NodeId, Vec<(NodeId, u32)>> = HashMap::new();
    for (_, d) in ddg.deps() {
        if d.kind == DepKind::RegFlow && d.src != d.dst {
            rf_inputs
                .entry(d.dst)
                .or_default()
                .push((d.src, d.distance));
        }
    }

    let body_seq_span = u64::from(ddg.node_ids().map(|n| ddg.seq(n)).max().unwrap_or(0) + 1);
    let po = |n: NodeId, iter: u64| iter * body_seq_span + u64::from(ddg.seq(n));

    let mut ms = MemorySystem::new(machine);
    let mut detector = ViolationDetector::new();
    let mut ready: HashMap<(NodeId, u64), u64> = HashMap::new();
    let mut copy_ready: HashMap<(NodeId, usize, u64), u64> = HashMap::new();

    let resolve = |ready: &HashMap<(NodeId, u64), u64>,
                   copy_ready: &HashMap<(NodeId, usize, u64), u64>,
                   schedule: &Schedule,
                   consumer_cluster: usize,
                   producer: NodeId,
                   dist: u32,
                   iter: u64|
     -> u64 {
        let Some(src_iter) = iter.checked_sub(u64::from(dist)) else {
            return 0; // live-in from before the loop
        };
        let pc = schedule.op(producer).cluster;
        if pc == consumer_cluster {
            ready.get(&(producer, src_iter)).copied().unwrap_or(0)
        } else {
            copy_ready
                .get(&(producer, consumer_cluster, src_iter))
                .copied()
                .unwrap_or(0)
        }
    };

    let total_rows = (iters - 1) * ii + span;
    let mut stall = 0u64;
    let mut comm_ops = 0u64;
    let bus_lat = u64::from(machine.reg_buses.latency);

    let mut events: Vec<(Event, u64)> = Vec::new();
    for t in 0..total_rows {
        // Gather events issuing at issue-cycle t across pipeline stages.
        events.clear();
        let mut s = t % ii;
        while s <= t && s < span {
            let i = (t - s) / ii;
            if i < iters {
                for &ev in &rows[s as usize] {
                    events.push((ev, i));
                }
            }
            s += ii;
        }
        if events.is_empty() {
            continue;
        }

        // Phase 1: stall-on-use — the row issues only once every operand
        // of every issuing operation has arrived.
        let now = t + stall;
        let mut need = now;
        for &(ev, i) in &events {
            match ev {
                Event::Op(n) => {
                    let cluster = schedule.op(n).cluster;
                    if let Some(inputs) = rf_inputs.get(&n) {
                        for &(p, dist) in inputs {
                            need = need.max(resolve(
                                &ready,
                                &copy_ready,
                                schedule,
                                cluster,
                                p,
                                dist,
                                i,
                            ));
                        }
                    }
                }
                Event::Copy(k) => {
                    let c = &schedule.copies[k];
                    need = need.max(ready.get(&(c.producer, i)).copied().unwrap_or(0));
                }
            }
        }
        stall += need - now;
        let now = need;

        // Phase 2: execute.
        for &(ev, i) in &events {
            match ev {
                Event::Op(n) => {
                    let sop = schedule.op(n);
                    let op = ddg.node(n);
                    match op.kind {
                        OpKind::Load => {
                            let mem = op.mem_id().expect("load has a site");
                            let width = op.mem.expect("load has a site").width.bytes();
                            let addr = kernel.exec.addr(mem, i);
                            let res = ms.load(sop.cluster, addr, now);
                            ready.insert((n, i), res.ready);
                            if options.detect_violations {
                                detector.record_load(
                                    addr,
                                    width,
                                    po(n, i),
                                    res.observed,
                                    sop.cluster,
                                );
                            }
                        }
                        OpKind::Store => {
                            let mem = op.mem_id().expect("store has a site");
                            let width = op.mem.expect("store has a site").width.bytes();
                            let addr = kernel.exec.addr(mem, i);
                            let executes = !in_group.contains_key(&n)
                                || machine.home_cluster(addr) == sop.cluster;
                            if let Some(res) = ms.store(sop.cluster, addr, now, executes) {
                                if options.detect_violations {
                                    detector.record_store(
                                        addr,
                                        width,
                                        po(n, i),
                                        res.observed,
                                        sop.cluster,
                                    );
                                }
                            }
                        }
                        kind => {
                            ready.insert((n, i), now + u64::from(kind.base_latency()));
                        }
                    }
                }
                Event::Copy(k) => {
                    let c = &schedule.copies[k];
                    copy_ready.insert((c.producer, c.to_cluster, i), now + bus_lat);
                    comm_ops += 1;
                }
            }
        }
    }

    let mut stats = SimStats {
        compute_cycles: total_rows,
        stall_cycles: stall,
        accesses: ms.counts,
        coherence_violations: detector.violations(),
        comm_ops,
        iterations: iters,
    };

    // Extrapolate truncated loops linearly, then scale by invocations.
    if trip > iters {
        let factor = trip / iters;
        stats = stats.scaled(factor);
        // Compute time is exact: the pipeline fills once per invocation.
        stats.compute_cycles = (trip - 1) * ii + span;
        stats.iterations = trip;
    }
    stats.scaled(kernel.invocations.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_arch::{AttractionBufferConfig, LatencyClass, MachineConfig};
    use distvliw_coherence::{find_chains, transform, SchedConstraints};
    use distvliw_ir::{AddressStream, DdgBuilder, DepKind, PrefMap, Width};
    use distvliw_sched::{Heuristic, ModuloScheduler};

    fn machine() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    fn schedule_free(kernel: &LoopKernel, m: &MachineConfig) -> Schedule {
        ModuloScheduler::new(m)
            .schedule(
                &kernel.ddg,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .expect("schedulable")
    }

    /// A loop streaming one load per iteration, stride 16 (single home).
    fn streaming_kernel(trip: u64) -> LoopKernel {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let _a = b.op(distvliw_ir::OpKind::IntAlu, &[l]);
        let g = b.finish();
        let mem = g.node(l).mem_id().unwrap();
        let mut k = LoopKernel::new("stream", g, trip);
        for img in [&mut k.profile, &mut k.exec] {
            img.insert(
                mem,
                AddressStream::Affine {
                    base: 0,
                    stride: 16,
                },
            );
        }
        k
    }

    #[test]
    fn compute_time_matches_formula() {
        let k = streaming_kernel(100);
        let m = machine();
        let s = schedule_free(&k, &m);
        let stats = simulate_kernel(&m, &k, &s, SimOptions::default());
        assert_eq!(stats.compute_cycles, s.compute_cycles(100));
        assert_eq!(stats.iterations, 100);
        assert_eq!(stats.accesses.total(), 100);
    }

    #[test]
    fn streaming_load_mostly_hits_after_cold_miss() {
        let k = streaming_kernel(64);
        let m = machine();
        let s = schedule_free(&k, &m);
        let stats = simulate_kernel(&m, &k, &s, SimOptions::default());
        use distvliw_arch::AccessClass;
        // Stride 16 within 32-byte blocks: one miss per block, one hit.
        // (All accesses are local if the op landed in cluster 0, remote
        // otherwise — either way hits+misses+combined == 64.)
        assert_eq!(stats.accesses.total(), 64);
        assert!(
            stats.accesses.get(AccessClass::LocalMiss)
                + stats.accesses.get(AccessClass::RemoteMiss)
                >= 16
        );
        assert_eq!(stats.coherence_violations, 0);
    }

    #[test]
    fn invocations_scale_stats() {
        let mut k = streaming_kernel(64);
        let m = machine();
        let s = schedule_free(&k, &m);
        let once = simulate_kernel(&m, &k, &s, SimOptions::default());
        k.invocations = 3;
        let thrice = simulate_kernel(&m, &k, &s, SimOptions::default());
        assert_eq!(thrice.total_cycles(), 3 * once.total_cycles());
        assert_eq!(thrice.accesses.total(), 3 * once.accesses.total());
    }

    #[test]
    fn iteration_cap_extrapolates() {
        let k = streaming_kernel(4096);
        let m = machine();
        let s = schedule_free(&k, &m);
        let opts = SimOptions {
            max_iterations: 256,
            detect_violations: true,
        };
        let stats = simulate_kernel(&m, &k, &s, opts);
        assert_eq!(stats.iterations, 4096);
        assert_eq!(stats.compute_cycles, s.compute_cycles(4096));
        assert_eq!(stats.accesses.total(), 4096);
    }

    /// The paper's Figure 2 scenario: a store whose home is cluster A is
    /// scheduled in a *different* cluster, and an aliased load scheduled
    /// in cluster A issues shortly after. Free scheduling reads stale
    /// data; MDC colocation fixes it.
    fn figure2_kernel(trip: u64) -> LoopKernel {
        let mut b = DdgBuilder::new();
        let v = b.op(distvliw_ir::OpKind::IntAlu, &[]);
        let st = b.store(Width::W4, &[v]);
        let ld = b.load(Width::W4);
        let _use = b.op(distvliw_ir::OpKind::IntAlu, &[ld]);
        b.dep(st, ld, DepKind::MemFlow, 0);
        b.dep(ld, st, DepKind::MemAnti, 1); // next iteration overwrites X
        let g = b.finish();
        let (ms_, ml) = (g.node(st).mem_id().unwrap(), g.node(ld).mem_id().unwrap());
        let mut k = LoopKernel::new("fig2", g, trip);
        // Both access the same word each iteration (variable X; stride 0).
        for img in [&mut k.profile, &mut k.exec] {
            img.insert(
                ms_,
                AddressStream::Affine {
                    base: 64,
                    stride: 0,
                },
            );
            img.insert(
                ml,
                AddressStream::Affine {
                    base: 64,
                    stride: 0,
                },
            );
        }
        k
    }

    #[test]
    fn free_scheduling_violates_mdc_does_not() {
        let m = machine();
        let k = figure2_kernel(128);
        // Force the paper's pathological placement: store remote to its
        // home, load local, scheduled as tightly as the MF edge allows.
        let mut constraints = SchedConstraints::none();
        let st = k.ddg.stores().next().unwrap();
        let ld = k.ddg.loads().next().unwrap();
        // Address 64 → home cluster 0 (64/4 % 4 == 0).
        constraints.pinned.insert(st, 3);
        constraints.pinned.insert(ld, 0);
        let free = ModuloScheduler::new(&m)
            .with_latency_relaxation(false)
            .schedule(&k.ddg, &constraints, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        let stats = simulate_kernel(&m, &k, &free, SimOptions::default());
        assert!(
            stats.coherence_violations > 0,
            "remote store + tight local load must read stale data: {stats}"
        );

        // MDC: the chain {st, ld} shares a cluster → no violations.
        let chains = find_chains(&k.ddg);
        let mdc = SchedConstraints::for_mdc(&chains, &k.ddg, None, 4);
        let s = ModuloScheduler::new(&m)
            .schedule(&k.ddg, &mdc, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        assert_eq!(s.op(st).cluster, s.op(ld).cluster);
        let stats = simulate_kernel(&m, &k, &s, SimOptions::default());
        assert_eq!(stats.coherence_violations, 0, "{stats}");
    }

    #[test]
    fn ddgt_store_replication_avoids_violations() {
        let m = machine();
        let mut k = figure2_kernel(128);
        let report = transform(&mut k.ddg, 4);
        assert_eq!(report.replica_groups.len(), 1);
        let constraints = SchedConstraints::for_ddgt(&report);
        let s = ModuloScheduler::new(&m)
            .schedule(&k.ddg, &constraints, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        let stats = simulate_kernel(&m, &k, &s, SimOptions::default());
        assert_eq!(stats.coherence_violations, 0, "{stats}");
        // Exactly one instance executes per iteration: the store count
        // equals load count.
        assert_eq!(stats.accesses.total(), 2 * 128);
    }

    #[test]
    fn copies_execute_once_per_iteration() {
        let m = machine();
        let mut b = DdgBuilder::new();
        let p = b.op(distvliw_ir::OpKind::IntAlu, &[]);
        let c = b.op(distvliw_ir::OpKind::IntAlu, &[p]);
        let g = b.finish();
        let mut k = LoopKernel::new("copy", g, 50);
        let mut constraints = SchedConstraints::none();
        constraints.pinned.insert(p, 0);
        constraints.pinned.insert(c, 1);
        let s = ModuloScheduler::new(&m)
            .schedule(&k.ddg, &constraints, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        assert_eq!(s.comm_ops(), 1);
        k.invocations = 1;
        let stats = simulate_kernel(&m, &k, &s, SimOptions::default());
        assert_eq!(stats.comm_ops, 50);
        assert_eq!(stats.coherence_violations, 0);
    }

    #[test]
    fn attraction_buffers_reduce_stall_for_remote_streams() {
        // A load stream walking all clusters' words: without ABs most
        // accesses are remote; with ABs each attracted subblock serves a
        // second access locally.
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let _a = b.op(distvliw_ir::OpKind::IntAlu, &[l]);
        let g = b.finish();
        let mem = g.node(l).mem_id().unwrap();
        let mut k = LoopKernel::new("walk", g, 256);
        for img in [&mut k.profile, &mut k.exec] {
            img.insert(mem, AddressStream::Affine { base: 0, stride: 4 });
        }
        let base = machine();
        let with_ab = machine().with_attraction_buffers(AttractionBufferConfig::paper());
        let s = schedule_free(&k, &base);
        let no_ab = simulate_kernel(&base, &k, &s, SimOptions::default());
        let ab = simulate_kernel(&with_ab, &k, &s, SimOptions::default());
        assert!(
            ab.local_hit_ratio() > no_ab.local_hit_ratio(),
            "AB {} vs {}",
            ab.local_hit_ratio(),
            no_ab.local_hit_ratio()
        );
        assert!(ab.total_cycles() <= no_ab.total_cycles());
    }

    #[test]
    fn assumed_latency_affects_stall_not_compute_split() {
        // A load feeding a consumer scheduled 1 cycle later stalls for the
        // actual latency; compute time stays the schedule's.
        let k = streaming_kernel(64);
        let m = machine();
        let s = ModuloScheduler::new(&m)
            .with_latency_relaxation(false)
            .schedule(
                &k.ddg,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        let stats = simulate_kernel(&m, &k, &s, SimOptions::default());
        assert_eq!(stats.compute_cycles, s.compute_cycles(64));
        assert!(stats.stall_cycles > 0, "cold misses must stall: {stats}");
    }

    #[test]
    fn relaxed_latencies_reduce_stall() {
        let k = streaming_kernel(256);
        let m = machine();
        let tight = ModuloScheduler::new(&m)
            .with_latency_relaxation(false)
            .schedule(
                &k.ddg,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        let relaxed = ModuloScheduler::new(&m)
            .schedule(
                &k.ddg,
                &SchedConstraints::none(),
                &PrefMap::new(),
                Heuristic::MinComs,
            )
            .unwrap();
        let st_tight = simulate_kernel(&m, &k, &tight, SimOptions::default());
        let st_relaxed = simulate_kernel(&m, &k, &relaxed, SimOptions::default());
        assert!(
            st_relaxed.stall_cycles <= st_tight.stall_cycles,
            "relaxed {st_relaxed} vs tight {st_tight}"
        );
        // The relaxed schedule assumed a larger class for the load.
        let load = k.ddg.loads().next().unwrap();
        assert!(relaxed.op(load).assumed_class >= Some(LatencyClass::LocalHit));
    }
}
