//! A minimal multiply-rotate hasher for the simulator's interior maps.
//!
//! The simulator's remaining hash maps (pending fills/remote requests in
//! the memory system, per-granule access windows in the violation
//! detector) are keyed by small integers and hit on every memory access,
//! so the default SipHash — designed to resist adversarial keys — is
//! pure overhead here. This hasher trades that robustness for a couple
//! of arithmetic instructions per key, the same trade the compiler
//! itself makes for its interner tables. Only lookup cost changes:
//! nothing in the simulator depends on map iteration order, so results
//! are bit-identical to the SipHash build.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed through [`FxHasher`].
pub(crate) type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Multiply-rotate hasher: `h = (rotl(h, 5) ^ word) * K` per input word.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FxHasher {
    hash: u64,
}

/// Odd multiplicative constant (2^64 / φ), spreading entropy into the
/// high bits the map's modulo actually uses.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_roundtrip_and_distinguish_keys() {
        let mut m: FxHashMap<(u64, usize), u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i, (i % 7) as usize), i * 3);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(41, 6)), Some(&123));
        assert_eq!(m.get(&(41, 0)), None);
    }

    #[test]
    fn hasher_differs_on_word_order() {
        let h = |a: u64, b: u64| {
            let mut h = FxHasher::default();
            h.write_u64(a);
            h.write_u64(b);
            h.finish()
        };
        assert_ne!(h(1, 2), h(2, 1));
        assert_ne!(h(0, 1), h(1, 0));
    }
}
