//! Independent static verifier for modulo schedules and coherence
//! constraints — a translation-validation pass for the scheduler.
//!
//! The scheduler proves its own legality only operationally: the MRT
//! rejects oversubscribed slots, the ejection journal rolls back bad
//! chains, the pressure gate rejects overfull clusters. This crate
//! re-derives every one of those invariants *from the emitted
//! [`Schedule`] alone* — per-cycle resource occupancy, modulo dependence
//! distances, coherence postconditions and stage-crossing register
//! demand are rebuilt from scratch against the [`MachineConfig`], sharing
//! no code with the placement machinery. A bug in the MRT journal, the
//! eviction rollback or the copy planner therefore cannot hide itself:
//! the checker would have to contain the same bug independently.
//!
//! The exact inequality behind every check is cataloged in
//! `docs/checking.md`; the checker's own soundness is pinned by the
//! mutation-kill matrix in `tests/mutations.rs` (every [`ViolationKind`]
//! has a targeted corruption that only it catches) and a property test
//! that unmutated schedules across 2–16 clusters always verify clean.
//!
//! # Example
//!
//! ```
//! use distvliw_arch::MachineConfig;
//! use distvliw_check::check_schedule;
//! use distvliw_coherence::SchedConstraints;
//! use distvliw_ir::{DdgBuilder, OpKind, PrefMap, Width};
//! use distvliw_sched::{Heuristic, ModuloScheduler};
//!
//! let mut b = DdgBuilder::new();
//! let load = b.load(Width::W4);
//! let add = b.op(OpKind::IntAlu, &[load]);
//! let _store = b.store(Width::W4, &[add]);
//! let ddg = b.finish();
//!
//! let machine = MachineConfig::paper_baseline();
//! let constraints = SchedConstraints::none();
//! let schedule = ModuloScheduler::new(&machine)
//!     .schedule(&ddg, &constraints, &PrefMap::new(), Heuristic::MinComs)?;
//! let report = check_schedule(&ddg, &machine, &constraints, Heuristic::MinComs, &schedule);
//! assert!(report.is_clean(), "{report}");
//! # Ok::<(), distvliw_sched::ScheduleError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

use distvliw_arch::MachineConfig;
use distvliw_coherence::SchedConstraints;
use distvliw_ir::{Ddg, DepKind, FuClass, NodeId};
use distvliw_sched::{Heuristic, Schedule};

/// What kind of invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViolationKind {
    /// A DDG node has no placement in the schedule (or the schedule
    /// places a node the DDG does not contain).
    MissingNode,
    /// An operation or copy names a cluster outside the machine, or a
    /// copy's source cluster disagrees with its producer's placement.
    BadCluster,
    /// More operations of one functional-unit class share a
    /// `(cluster, cycle mod II)` slot than the cluster has units.
    FuOverflow,
    /// More register-bus transfers occupy a modulo cycle than the
    /// machine has buses (each transfer holds a bus for the bus
    /// latency).
    BusOverflow,
    /// A dependence edge's modulo separation is below its latency:
    /// `slot(succ) + II·dist − slot(pred) < latency`.
    DepViolation,
    /// A register-flow edge crosses clusters but no copy moves the
    /// producer's value to the consumer's cluster.
    MissingCopy,
    /// A DDGT synchronization edge is violated: the replicated store
    /// starts before the consumer it synchronizes with.
    SyncViolation,
    /// An MDC colocation group is split across clusters.
    ColocationSplit,
    /// A PrefClus colocation group landed off its precomputed target
    /// cluster.
    GroupTargetMissed,
    /// A DDGT-pinned node is off its pinned cluster (PrefClus), or the
    /// pin-to-cluster assignment is not a consistent relabeling
    /// (MinComs, where the post-pass may permute clusters).
    PinViolation,
    /// The schedule's II is below the constraint-mandated minimum.
    MinIiViolated,
    /// A cluster's stage-crossing register demand exceeds
    /// `regs_per_cluster`.
    PressureExceeded,
    /// The recorded span does not equal the recomputed flat schedule
    /// length.
    SpanMismatch,
}

impl ViolationKind {
    /// Every kind, in a fixed order (for per-kind summaries).
    pub const ALL: [ViolationKind; 13] = [
        ViolationKind::MissingNode,
        ViolationKind::BadCluster,
        ViolationKind::FuOverflow,
        ViolationKind::BusOverflow,
        ViolationKind::DepViolation,
        ViolationKind::MissingCopy,
        ViolationKind::SyncViolation,
        ViolationKind::ColocationSplit,
        ViolationKind::GroupTargetMissed,
        ViolationKind::PinViolation,
        ViolationKind::MinIiViolated,
        ViolationKind::PressureExceeded,
        ViolationKind::SpanMismatch,
    ];

    /// Stable kebab-case name (used in summaries and the `check` bin).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::MissingNode => "missing-node",
            ViolationKind::BadCluster => "bad-cluster",
            ViolationKind::FuOverflow => "fu-overflow",
            ViolationKind::BusOverflow => "bus-overflow",
            ViolationKind::DepViolation => "dep-violation",
            ViolationKind::MissingCopy => "missing-copy",
            ViolationKind::SyncViolation => "sync-violation",
            ViolationKind::ColocationSplit => "colocation-split",
            ViolationKind::GroupTargetMissed => "group-target-missed",
            ViolationKind::PinViolation => "pin-violation",
            ViolationKind::MinIiViolated => "min-ii-violated",
            ViolationKind::PressureExceeded => "pressure-exceeded",
            ViolationKind::SpanMismatch => "span-mismatch",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One broken invariant, with enough context to debug it without a
/// rerun: the nodes involved, where in the schedule it happened, and
/// the arithmetic that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The invariant that broke.
    pub kind: ViolationKind,
    /// The DDG nodes involved.
    pub nodes: Vec<NodeId>,
    /// The cluster where it happened, when cluster-specific.
    pub cluster: Option<usize>,
    /// The cycle (or modulo slot, for resource checks) involved.
    pub cycle: Option<u32>,
    /// The failing arithmetic, spelled out.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)?;
        if !self.nodes.is_empty() {
            write!(f, " [")?;
            for (i, n) in self.nodes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{n}")?;
            }
            write!(f, "]")?;
        }
        if let Some(c) = self.cluster {
            write!(f, " (cluster {c})")?;
        }
        if let Some(cy) = self.cycle {
            write!(f, " (cycle {cy})")?;
        }
        Ok(())
    }
}

/// The outcome of one [`check_schedule`] call: every violation found,
/// in check order (structural, resources, dependences, coherence,
/// pressure, span).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Every violation found.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether the schedule passed every check.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// Whether the report is empty (alias of [`CheckReport::is_clean`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation count per kind (kinds with zero hits are omitted).
    #[must_use]
    pub fn counts(&self) -> BTreeMap<ViolationKind, usize> {
        let mut out = BTreeMap::new();
        for v in &self.violations {
            *out.entry(v.kind).or_insert(0) += 1;
        }
        out
    }

    /// One-line per-kind summary, e.g. `clean` or
    /// `2 violations: dep-violation=1 fu-overflow=1`.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "clean".to_string();
        }
        let mut s = format!("{} violations:", self.len());
        for (kind, count) in self.counts() {
            s.push_str(&format!(" {kind}={count}"));
        }
        s
    }

    fn push(
        &mut self,
        kind: ViolationKind,
        nodes: Vec<NodeId>,
        cluster: Option<usize>,
        cycle: Option<u32>,
        detail: String,
    ) {
        self.violations.push(Violation {
            kind,
            nodes,
            cluster,
            cycle,
            detail,
        });
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Cycles after issue at which a node's result register is written:
/// loads use the latency class the schedule recorded for them (falling
/// back to the optimistic base latency when none was recorded),
/// everything else its architectural base latency.
fn producer_latency(ddg: &Ddg, machine: &MachineConfig, schedule: &Schedule, n: NodeId) -> i64 {
    let op = ddg.node(n);
    let lat = if op.is_load() {
        schedule
            .ops
            .get(&n)
            .and_then(|o| o.assumed_class)
            .map_or_else(|| op.kind.base_latency(), |c| machine.latency_of(c))
    } else {
        op.kind.base_latency()
    };
    i64::from(lat)
}

/// Whether `n` is a node of `ddg` with a placement naming a real cluster
/// — the precondition the non-structural passes require (the structural
/// pass has already reported the violation otherwise).
fn well_placed(ddg: &Ddg, machine: &MachineConfig, schedule: &Schedule, n: NodeId) -> bool {
    n.index() < ddg.node_count()
        && schedule
            .ops
            .get(&n)
            .is_some_and(|op| op.cluster < machine.n_clusters)
}

/// Statically verifies `schedule` against the DDG it was built from,
/// the machine's resource limits and the coherence constraints — from
/// first principles, sharing no code with the scheduler's MRT, ejection
/// or pressure machinery.
///
/// Six passes run in order: structural well-formedness (every node
/// placed, clusters in range, copies consistent with their producers),
/// resource legality (per-cycle FU and register-bus occupancy rebuilt
/// modulo II), dependence legality (every DDG edge satisfies
/// `slot(succ) + II·dist − slot(pred) ≥ latency`, with copies checked
/// for cross-cluster register flow), coherence legality (colocation
/// groups, group targets, DDGT pins — up to a consistent cluster
/// relabeling under [`Heuristic::MinComs`], whose post-pass permutes
/// clusters — and the mandated minimum II), pressure legality (an
/// independent stage-crossing live-range recomputation bounded by
/// `regs_per_cluster`), and span consistency.
///
/// `heuristic` must be the one the schedule was produced under; it
/// decides whether pins and group targets are checked literally
/// (PrefClus) or up to relabeling (MinComs).
#[must_use]
pub fn check_schedule(
    ddg: &Ddg,
    machine: &MachineConfig,
    constraints: &SchedConstraints,
    heuristic: Heuristic,
    schedule: &Schedule,
) -> CheckReport {
    let mut report = CheckReport::default();
    check_structural(ddg, machine, schedule, &mut report);
    if schedule.ii == 0 {
        // Everything below divides by the II; a zero II is already
        // reported (any constraint mandates at least 1).
        return report;
    }
    check_resources(ddg, machine, schedule, &mut report);
    check_dependences(ddg, machine, schedule, &mut report);
    check_coherence(ddg, machine, constraints, heuristic, schedule, &mut report);
    check_pressure(ddg, machine, schedule, &mut report);
    check_span(machine, schedule, &mut report);
    report
}

/// Structural pass: every DDG node placed exactly once, all clusters in
/// range, every copy launched from its producer's cluster no earlier
/// than the value is ready.
fn check_structural(
    ddg: &Ddg,
    machine: &MachineConfig,
    schedule: &Schedule,
    report: &mut CheckReport,
) {
    let n_clusters = machine.n_clusters;
    if schedule.n_clusters != n_clusters {
        report.push(
            ViolationKind::BadCluster,
            vec![],
            None,
            None,
            format!(
                "schedule targets {} clusters, machine has {n_clusters}",
                schedule.n_clusters
            ),
        );
    }
    if schedule.ii == 0 {
        report.push(
            ViolationKind::MinIiViolated,
            vec![],
            None,
            None,
            "II is 0; every schedule needs II ≥ 1".to_string(),
        );
    }
    for n in ddg.node_ids() {
        if !schedule.ops.contains_key(&n) {
            report.push(
                ViolationKind::MissingNode,
                vec![n],
                None,
                None,
                format!("DDG node {n} ({}) has no placement", ddg.node(n).kind),
            );
        }
    }
    for (&n, op) in &schedule.ops {
        if n.index() >= ddg.node_count() {
            report.push(
                ViolationKind::MissingNode,
                vec![n],
                Some(op.cluster),
                Some(op.start),
                format!("schedule places {n}, which is not a DDG node"),
            );
            continue;
        }
        if op.node != n {
            report.push(
                ViolationKind::MissingNode,
                vec![n, op.node],
                Some(op.cluster),
                Some(op.start),
                format!("placement keyed {n} records node {}", op.node),
            );
        }
        if op.cluster >= n_clusters {
            report.push(
                ViolationKind::BadCluster,
                vec![n],
                Some(op.cluster),
                Some(op.start),
                format!(
                    "cluster {} out of range (machine has {n_clusters})",
                    op.cluster
                ),
            );
        }
    }
    for cp in &schedule.copies {
        if cp.from_cluster >= n_clusters || cp.to_cluster >= n_clusters {
            report.push(
                ViolationKind::BadCluster,
                vec![cp.producer],
                None,
                Some(cp.start),
                format!(
                    "copy {} → {} out of range (machine has {n_clusters})",
                    cp.from_cluster, cp.to_cluster
                ),
            );
            continue;
        }
        if cp.from_cluster == cp.to_cluster {
            report.push(
                ViolationKind::BadCluster,
                vec![cp.producer],
                Some(cp.from_cluster),
                Some(cp.start),
                format!(
                    "copy of {} stays inside cluster {}",
                    cp.producer, cp.from_cluster
                ),
            );
        }
        let Some(pop) = (cp.producer.index() < ddg.node_count())
            .then(|| schedule.ops.get(&cp.producer))
            .flatten()
        else {
            report.push(
                ViolationKind::MissingNode,
                vec![cp.producer],
                Some(cp.from_cluster),
                Some(cp.start),
                format!("copy transfers {}, which has no placement", cp.producer),
            );
            continue;
        };
        if pop.cluster != cp.from_cluster {
            report.push(
                ViolationKind::BadCluster,
                vec![cp.producer],
                Some(cp.from_cluster),
                Some(cp.start),
                format!(
                    "copy departs cluster {} but {} executes in cluster {}",
                    cp.from_cluster, cp.producer, pop.cluster
                ),
            );
        }
        let ready = i64::from(pop.start) + producer_latency(ddg, machine, schedule, cp.producer);
        if i64::from(cp.start) < ready {
            report.push(
                ViolationKind::DepViolation,
                vec![cp.producer],
                Some(cp.from_cluster),
                Some(cp.start),
                format!(
                    "copy of {} launches at {} before the value is ready at {ready}",
                    cp.producer, cp.start
                ),
            );
        }
    }
}

/// Resource pass: per-cycle functional-unit occupancy per
/// `(cluster, class, cycle mod II)` against the machine's unit mix, and
/// machine-global register-bus occupancy per modulo cycle (one transfer
/// holds a bus for `reg_buses.latency` consecutive modulo cycles, the
/// same cycle twice when the latency wraps the II).
fn check_resources(
    ddg: &Ddg,
    machine: &MachineConfig,
    schedule: &Schedule,
    report: &mut CheckReport,
) {
    let ii = schedule.ii;
    let caps = [machine.fu.integer, machine.fu.fp, machine.fu.memory];
    let mut fu: BTreeMap<(usize, usize, u32), Vec<NodeId>> = BTreeMap::new();
    for (&n, op) in &schedule.ops {
        if !well_placed(ddg, machine, schedule, n) {
            continue;
        }
        if let Some(class) = ddg.node(n).kind.fu_class() {
            fu.entry((op.cluster, class.index(), op.start % ii))
                .or_default()
                .push(n);
        }
    }
    for ((cluster, class_idx, slot), nodes) in fu {
        let cap = caps[class_idx];
        if nodes.len() > cap {
            report.push(
                ViolationKind::FuOverflow,
                nodes.clone(),
                Some(cluster),
                Some(slot),
                format!(
                    "{} {} ops share cluster {cluster} modulo slot {slot} (cap {cap})",
                    nodes.len(),
                    FuClass::ALL[class_idx],
                ),
            );
        }
    }

    let bus_lat = machine.reg_buses.latency;
    let bus_cap = machine.reg_buses.count;
    let mut bus: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
    for cp in &schedule.copies {
        for t in 0..bus_lat {
            bus.entry((cp.start + t) % ii)
                .or_default()
                .push(cp.producer);
        }
    }
    for (slot, producers) in bus {
        if producers.len() > bus_cap {
            report.push(
                ViolationKind::BusOverflow,
                producers.clone(),
                None,
                Some(slot),
                format!(
                    "{} bus transfers occupy modulo slot {slot} (cap {bus_cap}, \
                     each transfer holds a bus for {bus_lat} cycles)",
                    producers.len(),
                ),
            );
        }
    }
}

/// Dependence pass: every DDG edge satisfies
/// `slot(succ) + II·dist − slot(pred) ≥ latency`, where the latency is
/// the producer's (class-resolved) latency for register flow and the
/// kind's minimum separation otherwise. Cross-cluster register flow
/// must route through a copy that launches after the value is ready and
/// arrives before the consumer reads.
fn check_dependences(
    ddg: &Ddg,
    machine: &MachineConfig,
    schedule: &Schedule,
    report: &mut CheckReport,
) {
    let ii = i64::from(schedule.ii);
    let bus_lat = i64::from(machine.reg_buses.latency);
    for (_, d) in ddg.deps() {
        if !well_placed(ddg, machine, schedule, d.src)
            || !well_placed(ddg, machine, schedule, d.dst)
        {
            continue; // already reported structurally
        }
        let sop = schedule.ops[&d.src];
        let dop = schedule.ops[&d.dst];
        let dist = i64::from(d.distance);
        if d.kind == DepKind::RegFlow {
            let lat = producer_latency(ddg, machine, schedule, d.src);
            if d.src == d.dst {
                // Self recurrence: the value written `lat` after issue is
                // read `II·dist` later by the next iteration's instance.
                if ii * dist < lat {
                    report.push(
                        ViolationKind::DepViolation,
                        vec![d.src],
                        Some(sop.cluster),
                        Some(sop.start),
                        format!(
                            "self edge {d}: II·dist = {ii}·{dist} = {} < latency {lat}",
                            ii * dist
                        ),
                    );
                }
            } else if sop.cluster == dop.cluster {
                let reads = i64::from(dop.start) + ii * dist;
                let ready = i64::from(sop.start) + lat;
                if reads < ready {
                    report.push(
                        ViolationKind::DepViolation,
                        vec![d.src, d.dst],
                        Some(sop.cluster),
                        Some(dop.start),
                        format!(
                            "{d}: consumer reads at {} + {ii}·{dist} = {reads}, \
                             value ready at {} + {lat} = {ready}",
                            dop.start, sop.start
                        ),
                    );
                }
            } else {
                match schedule.copy_to(d.src, dop.cluster) {
                    None => report.push(
                        ViolationKind::MissingCopy,
                        vec![d.src, d.dst],
                        Some(dop.cluster),
                        Some(dop.start),
                        format!(
                            "{d}: {} executes in cluster {} but no copy moves {}'s \
                             value there from cluster {}",
                            d.dst, dop.cluster, d.src, sop.cluster
                        ),
                    ),
                    Some(cp) => {
                        // Launch-after-ready is checked structurally per
                        // copy; here the arrival must beat the read.
                        let reads = i64::from(dop.start) + ii * dist;
                        let arrives = i64::from(cp.start) + bus_lat;
                        if reads < arrives {
                            report.push(
                                ViolationKind::DepViolation,
                                vec![d.src, d.dst],
                                Some(dop.cluster),
                                Some(dop.start),
                                format!(
                                    "{d}: consumer reads at {} + {ii}·{dist} = {reads}, \
                                     copy arrives at {} + {bus_lat} = {arrives}",
                                    dop.start, cp.start
                                ),
                            );
                        }
                    }
                }
            }
        } else {
            let sep = i64::from(d.kind.min_separation());
            let gap = if d.src == d.dst {
                ii * dist
            } else {
                i64::from(dop.start) + ii * dist - i64::from(sop.start)
            };
            if gap < sep {
                let kind = if d.kind == DepKind::Sync {
                    ViolationKind::SyncViolation
                } else {
                    ViolationKind::DepViolation
                };
                report.push(
                    kind,
                    vec![d.src, d.dst],
                    Some(dop.cluster),
                    Some(dop.start),
                    format!(
                        "{d}: separation {} + {ii}·{dist} − {} = {gap} < {sep}",
                        dop.start, sop.start
                    ),
                );
            }
        }
    }
}

/// Coherence pass: MDC colocation groups on one cluster (and, under
/// PrefClus, on their precomputed target), DDGT pins honored — literally
/// under PrefClus, up to a consistent injective relabeling under
/// MinComs (whose post-pass permutes physical clusters) — and the
/// mandated minimum II.
fn check_coherence(
    ddg: &Ddg,
    machine: &MachineConfig,
    constraints: &SchedConstraints,
    heuristic: Heuristic,
    schedule: &Schedule,
    report: &mut CheckReport,
) {
    if schedule.ii < constraints.min_ii {
        report.push(
            ViolationKind::MinIiViolated,
            vec![],
            None,
            None,
            format!(
                "II {} is below the mandated minimum {}",
                schedule.ii, constraints.min_ii
            ),
        );
    }
    for (group, members) in constraints.colocation_groups() {
        let placed: Vec<(NodeId, usize)> = members
            .iter()
            .filter(|&&n| well_placed(ddg, machine, schedule, n))
            .map(|&n| (n, schedule.ops[&n].cluster))
            .collect();
        let mut clusters: Vec<usize> = placed.iter().map(|&(_, c)| c).collect();
        clusters.sort_unstable();
        clusters.dedup();
        if clusters.len() > 1 {
            report.push(
                ViolationKind::ColocationSplit,
                members.clone(),
                None,
                None,
                format!("colocation group {group} is split across clusters {clusters:?}"),
            );
        }
        if let Some(&target) = constraints.group_target.get(&group) {
            // Group targets exist only under PrefClus (MinComs leaves the
            // choice to the scheduler), where clusters are physical.
            if heuristic == Heuristic::PrefClus {
                let off: Vec<NodeId> = placed
                    .iter()
                    .filter(|&&(_, c)| c != target)
                    .map(|&(n, _)| n)
                    .collect();
                if !off.is_empty() {
                    report.push(
                        ViolationKind::GroupTargetMissed,
                        off,
                        Some(target),
                        None,
                        format!(
                            "colocation group {group} landed on clusters {clusters:?}, \
                             target is {target}"
                        ),
                    );
                }
            }
        }
    }

    let pins: Vec<(NodeId, usize)> = constraints
        .pinned
        .iter()
        .filter(|&(&n, _)| well_placed(ddg, machine, schedule, n))
        .map(|(&n, &pin)| (n, pin))
        .collect();
    match heuristic {
        Heuristic::PrefClus => {
            for &(n, pin) in &pins {
                let c = schedule.ops[&n].cluster;
                if c != pin {
                    report.push(
                        ViolationKind::PinViolation,
                        vec![n],
                        Some(c),
                        None,
                        format!("{n} is pinned to cluster {pin} but executes in cluster {c}"),
                    );
                }
            }
        }
        Heuristic::MinComs => {
            // The MinComs post-pass relabels clusters through a
            // permutation, so pins hold up to a consistent injective
            // mapping: every node pinned to `k` on one cluster, distinct
            // pins on distinct clusters.
            let mut image: BTreeMap<usize, (NodeId, usize)> = BTreeMap::new();
            for &(n, pin) in &pins {
                let c = schedule.ops[&n].cluster;
                match image.get(&pin) {
                    None => {
                        image.insert(pin, (n, c));
                    }
                    Some(&(first, c0)) if c0 != c => report.push(
                        ViolationKind::PinViolation,
                        vec![first, n],
                        Some(c),
                        None,
                        format!(
                            "pin {pin} maps to cluster {c0} (via {first}) and \
                             cluster {c} (via {n}): not a relabeling"
                        ),
                    ),
                    Some(_) => {}
                }
            }
            let mut by_cluster: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (&pin, &(_, c)) in &image {
                by_cluster.entry(c).or_default().push(pin);
            }
            for (c, pins_here) in by_cluster {
                if pins_here.len() > 1 {
                    report.push(
                        ViolationKind::PinViolation,
                        pins_here.iter().map(|p| image[p].0).collect(),
                        Some(c),
                        None,
                        format!(
                            "pins {pins_here:?} all map to cluster {c}: the \
                             relabeling is not injective"
                        ),
                    );
                }
            }
        }
    }
}

/// Pressure pass: independent stage-crossing live-range recomputation.
/// A value is live in its producer's cluster from definition to its
/// last local read or outgoing copy launch, and in every copied-to
/// cluster from copy arrival to the last read there; a range spanning
/// `s` cycles costs `⌊s / II⌋` registers, and a cluster's total must
/// not exceed `regs_per_cluster`.
fn check_pressure(
    ddg: &Ddg,
    machine: &MachineConfig,
    schedule: &Schedule,
    report: &mut CheckReport,
) {
    let ii = i64::from(schedule.ii);
    let bus_lat = i64::from(machine.reg_buses.latency);
    let copy_start = |p: NodeId, cluster: usize| -> Option<u32> {
        schedule.copy_to(p, cluster).map(|cp| cp.start)
    };
    let mut demand = vec![0u64; machine.n_clusters];
    for (&p, pop) in &schedule.ops {
        if !well_placed(ddg, machine, schedule, p) {
            continue;
        }
        if !ddg.out_deps(p).any(|(_, d)| d.kind == DepKind::RegFlow) {
            continue; // produces no register value (e.g. a store)
        }
        let def_lat = producer_latency(ddg, machine, schedule, p);
        for (cluster, slot) in demand.iter_mut().enumerate() {
            let def = if pop.cluster == cluster {
                i64::from(pop.start) + def_lat
            } else {
                match copy_start(p, cluster) {
                    Some(s) => i64::from(s) + bus_lat,
                    None => continue,
                }
            };
            let mut last = def;
            for (_, d) in ddg.out_deps(p) {
                if d.kind != DepKind::RegFlow || !well_placed(ddg, machine, schedule, d.dst) {
                    continue;
                }
                let qop = schedule.ops[&d.dst];
                if qop.cluster == cluster {
                    last = last.max(i64::from(qop.start) + ii * i64::from(d.distance));
                }
            }
            if pop.cluster == cluster {
                for cp in &schedule.copies {
                    if cp.producer == p && cp.to_cluster != cluster {
                        last = last.max(i64::from(cp.start));
                    }
                }
            }
            if last > def {
                *slot += (last - def) as u64 / schedule.ii.max(1) as u64;
            }
        }
    }
    for (cluster, &regs) in demand.iter().enumerate() {
        let budget = machine.regs_per_cluster as u64;
        if regs > budget {
            report.push(
                ViolationKind::PressureExceeded,
                vec![],
                Some(cluster),
                None,
                format!(
                    "cluster {cluster} needs {regs} stage-crossing registers, \
                     budget is {budget}"
                ),
            );
        }
    }
}

/// Span pass: the recorded span must equal the recomputed flat schedule
/// length — `max(II, last op start + 1, last copy start + bus latency)`.
fn check_span(machine: &MachineConfig, schedule: &Schedule, report: &mut CheckReport) {
    let bus_lat = machine.reg_buses.latency;
    let expected = schedule
        .ops
        .values()
        .map(|op| op.start + 1)
        .chain(schedule.copies.iter().map(|cp| cp.start + bus_lat))
        .max()
        .unwrap_or(1)
        .max(schedule.ii);
    if schedule.span != expected {
        report.push(
            ViolationKind::SpanMismatch,
            vec![],
            None,
            None,
            format!(
                "recorded span {} ≠ recomputed span {expected}",
                schedule.span
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_ir::{DdgBuilder, PrefMap, Width};
    use distvliw_sched::ModuloScheduler;

    fn verify(
        ddg: &Ddg,
        constraints: &SchedConstraints,
        heuristic: Heuristic,
    ) -> (Schedule, CheckReport) {
        let machine = MachineConfig::paper_baseline();
        let schedule = ModuloScheduler::new(&machine)
            .schedule(ddg, constraints, &PrefMap::new(), heuristic)
            .expect("schedulable");
        let report = check_schedule(ddg, &machine, constraints, heuristic, &schedule);
        (schedule, report)
    }

    #[test]
    fn clean_schedule_verifies_clean() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let a = b.op(distvliw_ir::OpKind::IntAlu, &[l]);
        let _s = b.store(Width::W4, &[a]);
        let g = b.finish();
        for h in [Heuristic::PrefClus, Heuristic::MinComs] {
            let (_, report) = verify(&g, &SchedConstraints::none(), h);
            assert!(report.is_clean(), "{report}");
        }
    }

    #[test]
    fn empty_graph_is_clean() {
        let g = DdgBuilder::new().finish();
        let constraints = SchedConstraints::none().with_min_ii(3);
        let (s, report) = verify(&g, &constraints, Heuristic::PrefClus);
        assert_eq!(s.ii, 3);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn summary_formats_kinds() {
        let mut r = CheckReport::default();
        assert_eq!(r.summary(), "clean");
        r.push(
            ViolationKind::FuOverflow,
            vec![NodeId(0)],
            Some(1),
            Some(0),
            "two ops".into(),
        );
        r.push(
            ViolationKind::FuOverflow,
            vec![NodeId(1)],
            Some(2),
            Some(0),
            "two ops".into(),
        );
        r.push(
            ViolationKind::SpanMismatch,
            vec![],
            None,
            None,
            "3 ≠ 4".into(),
        );
        assert_eq!(r.summary(), "3 violations: fu-overflow=2 span-mismatch=1");
        let text = r.to_string();
        assert!(
            text.contains("fu-overflow: two ops [n0] (cluster 1) (cycle 0)"),
            "{text}"
        );
    }

    #[test]
    fn all_kinds_have_distinct_names() {
        let mut names: Vec<&str> = ViolationKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ViolationKind::ALL.len());
    }
}
