//! Repository lint: static source-tree invariants that `rustc` cannot
//! express, wired into CI next to the schedule checker.
//!
//! Two scans, both std-only and offline:
//!
//! 1. **Unsafe scope** — `unsafe` code may appear only in
//!    `crates/serve/src/event.rs` (the `sys` module wrapping `poll(2)`);
//!    every other crate carries `#![forbid(unsafe_code)]`, and this scan
//!    catches the file that forgets the attribute before a stray
//!    `unsafe` block lands.
//! 2. **Metric catalog drift** — every metric family registered through
//!    the `distvliw-obs` registry (`.counter("…")` / `.gauge` /
//!    `.histogram` and their `_with` labeled variants) must appear in
//!    the `docs/observability.md` catalog table, and vice versa, so the
//!    documented catalog cannot drift from the code. Collector families
//!    rendered at scrape time (the `serve_cache_*` prose list) bypass
//!    the registry and are documented in prose, not the table.
//!
//! Usage: `repolint [repo-root]` (default `.`). Exits nonzero listing
//! every finding.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The one file allowed to contain `unsafe` (the poll(2) syscall
/// wrapper).
const UNSAFE_ALLOWED: &str = "crates/serve/src/event.rs";

/// This scanner's own source: it necessarily contains the very tokens
/// and call patterns it searches for, so both scans skip it.
const SELF: &str = "crates/check/src/bin/repolint.rs";

/// The documented metric catalog.
const CATALOG: &str = "docs/observability.md";

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let root = PathBuf::from(root);
    let mut findings: Vec<String> = Vec::new();

    let mut sources: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src", "tests", "examples", "third_party"] {
        collect_rs(&root.join(top), &mut sources);
    }
    sources.sort();

    check_unsafe_scope(&root, &sources, &mut findings);
    check_metric_catalog(&root, &sources, &mut findings);

    if findings.is_empty() {
        println!("repolint: clean ({} source files scanned)", sources.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("repolint: {} findings", findings.len());
        for f in &findings {
            eprintln!("  {f}");
        }
        ExitCode::FAILURE
    }
}

/// Recursively collects `.rs` files, skipping build output.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Strips line comments and truncates at the first `#[cfg(test)]`, so
/// the scans see only non-test code lines.
fn code_lines(content: &str) -> impl Iterator<Item = (usize, &str)> {
    content
        .lines()
        .enumerate()
        .take_while(|(_, line)| !line.trim_start().starts_with("#[cfg(test)]"))
        .filter(|(_, line)| {
            let t = line.trim_start();
            !(t.starts_with("//") || t.is_empty())
        })
        .map(|(i, line)| (i + 1, line))
}

/// Scan 1: `unsafe` appears only in the allowed file.
fn check_unsafe_scope(root: &Path, sources: &[PathBuf], findings: &mut Vec<String>) {
    for path in sources {
        let rel = path.strip_prefix(root).unwrap_or(path);
        if rel == Path::new(UNSAFE_ALLOWED) || rel == Path::new(SELF) {
            continue;
        }
        let Ok(content) = fs::read_to_string(path) else {
            continue;
        };
        // Scan the whole file here — unsafe in test code is just as
        // out of scope as unsafe in shipped code.
        for (lineno, line) in content.lines().enumerate() {
            let t = line.trim_start();
            if t.starts_with("//") {
                continue;
            }
            // `unsafe_code` attribute mentions (forbid/deny) are the
            // policy itself, not a use of unsafe.
            let sanitized = line.replace("unsafe_code", "");
            if has_word(&sanitized, "unsafe") {
                findings.push(format!(
                    "unsafe outside {UNSAFE_ALLOWED}: {}:{}: {}",
                    rel.display(),
                    lineno + 1,
                    line.trim()
                ));
            }
        }
    }
}

/// Whether `word` occurs in `line` with no identifier character on
/// either side.
fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scan 2: registry-registered metric families ↔ the catalog table.
fn check_metric_catalog(root: &Path, sources: &[PathBuf], findings: &mut Vec<String>) {
    let mut in_code: BTreeSet<String> = BTreeSet::new();
    for path in sources {
        let rel = path.strip_prefix(root).unwrap_or(path);
        // Registration calls in test files and benches register
        // throwaway families; only shipped crate code feeds the catalog.
        let rel_str = rel.to_string_lossy();
        if rel == Path::new(SELF)
            || !rel_str.starts_with("crates/")
            || rel_str.contains("/tests/")
            || rel_str.contains("/benches/")
            || rel_str.contains("/examples/")
        {
            continue;
        }
        let Ok(content) = fs::read_to_string(path) else {
            continue;
        };
        let stripped: String = code_lines(&content)
            .map(|(_, l)| l)
            .collect::<Vec<_>>()
            .join("\n");
        for call in [
            ".counter(",
            ".gauge(",
            ".histogram(",
            ".counter_with(",
            ".gauge_with(",
            ".histogram_with(",
        ] {
            let mut from = 0;
            while let Some(pos) = stripped[from..].find(call) {
                let after = from + pos + call.len();
                if let Some(name) = leading_string_literal(&stripped[after..]) {
                    if name.contains('_') {
                        in_code.insert(name);
                    }
                }
                from = after;
            }
        }
    }

    let catalog_path = root.join(CATALOG);
    let Ok(doc) = fs::read_to_string(&catalog_path) else {
        findings.push(format!("metric catalog {CATALOG} is missing"));
        return;
    };
    let mut in_docs: BTreeSet<String> = BTreeSet::new();
    for line in doc.lines() {
        // Catalog table rows look like: | `family{label=…}` | kind | … |
        let Some(rest) = line.trim_start().strip_prefix("| `") else {
            continue;
        };
        let Some(name) = rest.split('`').next() else {
            continue;
        };
        let name = name.split('{').next().unwrap_or(name);
        if !name.is_empty() {
            in_docs.insert(name.to_string());
        }
    }

    for name in in_code.difference(&in_docs) {
        findings.push(format!(
            "metric family `{name}` is registered in code but missing from the {CATALOG} catalog"
        ));
    }
    for name in in_docs.difference(&in_code) {
        findings.push(format!(
            "metric family `{name}` is cataloged in {CATALOG} but never registered in code"
        ));
    }
}

/// The string literal at the start of `s` (after optional whitespace,
/// including the newline of a wrapped call), if any.
fn leading_string_literal(s: &str) -> Option<String> {
    let t = s.trim_start();
    let rest = t.strip_prefix('"')?;
    rest.split('"').next().map(str::to_string)
}
