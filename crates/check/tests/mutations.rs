//! Mutation-kill matrix for the static checker, plus a property test
//! that unmutated schedules always verify clean.
//!
//! Every [`ViolationKind`] gets a targeted corruption: start from a
//! schedule the real scheduler produced (so every other invariant
//! holds), break exactly one invariant, and assert the checker reports
//! *only* that kind. A checker pass that silently stopped firing — or
//! started firing on legal schedules — fails this matrix. Mutations
//! that legitimately change the flat schedule length also re-derive the
//! span (the same way the checker does), so the span pass never
//! pollutes another kind's kill.
//!
//! The protocol is documented in `docs/checking.md`.

use std::collections::BTreeMap;

use distvliw_arch::MachineConfig;
use distvliw_check::{check_schedule, CheckReport, ViolationKind};
use distvliw_coherence::{find_chains, transform, SchedConstraints};
use distvliw_ir::{DdgBuilder, DepKind, NodeId, OpKind, PrefMap, Width};
use distvliw_sched::{CopyOp, Heuristic, ModuloScheduler, Schedule};
use proptest::prelude::*;

fn machine() -> MachineConfig {
    MachineConfig::paper_baseline()
}

fn sched(
    b: DdgBuilder,
    constraints: &SchedConstraints,
    heuristic: Heuristic,
) -> (distvliw_ir::Ddg, Schedule) {
    let ddg = b.finish();
    let s = ModuloScheduler::new(&machine())
        .with_latency_relaxation(false)
        .schedule(&ddg, constraints, &PrefMap::new(), heuristic)
        .expect("mutation fixtures schedule");
    (ddg, s)
}

/// Re-derives the span exactly as the checker's span pass does, so a
/// mutation that legally moves the last cycle can keep the span
/// consistent and kill only its own kind.
fn patch_span(m: &MachineConfig, s: &mut Schedule) {
    s.span = s
        .ops
        .values()
        .map(|op| op.start + 1)
        .chain(s.copies.iter().map(|cp| cp.start + m.reg_buses.latency))
        .max()
        .unwrap_or(1)
        .max(s.ii);
}

/// The mutated schedule must be caught, and *only* by `kind`.
fn assert_only(report: &CheckReport, kind: ViolationKind) {
    assert!(
        !report.is_clean(),
        "{kind}: mutation survived — checker saw a clean schedule"
    );
    let counts = report.counts();
    assert!(
        counts.contains_key(&kind),
        "{kind}: expected kind missing, got {report}"
    );
    assert_eq!(
        counts.len(),
        1,
        "{kind}: mutation killed by the wrong kinds too: {report}"
    );
}

/// A load → alu chain (the alu result unused), scheduled MinComs so the
/// whole chain shares one cluster.
fn chain_fixture() -> (distvliw_ir::Ddg, Schedule, NodeId, NodeId) {
    let mut b = DdgBuilder::new();
    let load = b.load(Width::W4);
    let alu = b.op(OpKind::IntAlu, &[load]);
    let (ddg, s) = sched(b, &SchedConstraints::none(), Heuristic::MinComs);
    assert_eq!(
        s.ops[&load].cluster, s.ops[&alu].cluster,
        "MinComs keeps the two-op chain on one cluster"
    );
    (ddg, s, load, alu)
}

/// Two stores (no register inputs, distinct memory ids) colocated into
/// group 1, optionally targeted, scheduled PrefClus.
fn colocated_stores(
    target: Option<usize>,
) -> (distvliw_ir::Ddg, Schedule, SchedConstraints, NodeId, NodeId) {
    let mut b = DdgBuilder::new();
    let sa = b.store(Width::W4, &[]);
    let sb = b.store(Width::W4, &[]);
    let mut constraints = SchedConstraints::none();
    constraints.colocate = BTreeMap::from([(sa, 1), (sb, 1)]);
    if let Some(t) = target {
        constraints.group_target = BTreeMap::from([(1, t)]);
    }
    let (ddg, s) = sched(b, &constraints, Heuristic::PrefClus);
    assert_eq!(s.ops[&sa].cluster, s.ops[&sb].cluster);
    (ddg, s, constraints, sa, sb)
}

fn mutate_missing_node() -> (CheckReport, ViolationKind) {
    let mut b = DdgBuilder::new();
    let load = b.load(Width::W4);
    let alu = b.op(OpKind::IntAlu, &[load]);
    let _st = b.store(Width::W4, &[alu]);
    let (ddg, mut s) = sched(b, &SchedConstraints::none(), Heuristic::MinComs);
    s.ops.remove(&load);
    s.copies.retain(|cp| cp.producer != load);
    let m = machine();
    patch_span(&m, &mut s);
    let r = check_schedule(&ddg, &m, &SchedConstraints::none(), Heuristic::MinComs, &s);
    (r, ViolationKind::MissingNode)
}

fn mutate_bad_cluster() -> (CheckReport, ViolationKind) {
    let (ddg, mut s, _, alu) = chain_fixture();
    s.ops.get_mut(&alu).unwrap().cluster = 99;
    let m = machine();
    let r = check_schedule(&ddg, &m, &SchedConstraints::none(), Heuristic::MinComs, &s);
    (r, ViolationKind::BadCluster)
}

fn mutate_fu_overflow() -> (CheckReport, ViolationKind) {
    let mut b = DdgBuilder::new();
    let a = b.op(OpKind::IntAlu, &[]);
    let c = b.op(OpKind::IntAlu, &[]);
    let (ddg, mut s) = sched(b, &SchedConstraints::none(), Heuristic::MinComs);
    let at = s.ops[&a];
    let op = s.ops.get_mut(&c).unwrap();
    op.cluster = at.cluster;
    op.start = at.start;
    let m = machine();
    patch_span(&m, &mut s);
    let r = check_schedule(&ddg, &m, &SchedConstraints::none(), Heuristic::MinComs, &s);
    (r, ViolationKind::FuOverflow)
}

fn mutate_bus_overflow() -> (CheckReport, ViolationKind) {
    let (ddg, mut s, _, alu) = chain_fixture();
    let m = machine();
    let from = s.ops[&alu].cluster;
    let ready = s.ops[&alu].start + OpKind::IntAlu.base_latency();
    for _ in 0..=m.reg_buses.count {
        s.copies.push(CopyOp {
            producer: alu,
            from_cluster: from,
            to_cluster: (from + 1) % m.n_clusters,
            start: ready,
        });
    }
    patch_span(&m, &mut s);
    let r = check_schedule(&ddg, &m, &SchedConstraints::none(), Heuristic::MinComs, &s);
    (r, ViolationKind::BusOverflow)
}

fn mutate_dep_violation() -> (CheckReport, ViolationKind) {
    let (ddg, mut s, load, alu) = chain_fixture();
    s.ops.get_mut(&alu).unwrap().start = s.ops[&load].start;
    let m = machine();
    patch_span(&m, &mut s);
    let r = check_schedule(&ddg, &m, &SchedConstraints::none(), Heuristic::MinComs, &s);
    (r, ViolationKind::DepViolation)
}

fn mutate_missing_copy() -> (CheckReport, ViolationKind) {
    let mut b = DdgBuilder::new();
    let load = b.load(Width::W4);
    let alu = b.op(OpKind::IntAlu, &[load]);
    let sa = b.store(Width::W4, &[alu]);
    let sb = b.store(Width::W4, &[alu]);
    let mut constraints = SchedConstraints::none();
    constraints.pinned = BTreeMap::from([(sa, 0), (sb, 1)]);
    let (ddg, mut s) = sched(b, &constraints, Heuristic::PrefClus);
    // One of the pinned stores reads `alu` across clusters; drop the
    // copy that feeds it.
    let remote = [sa, sb]
        .into_iter()
        .find(|st| s.ops[st].cluster != s.ops[&alu].cluster)
        .expect("stores pinned to clusters 0 and 1 cannot both colocate with alu");
    let before = s.copies.len();
    let target = s.ops[&remote].cluster;
    s.copies
        .retain(|cp| !(cp.producer == alu && cp.to_cluster == target));
    assert!(s.copies.len() < before, "fixture must have routed a copy");
    let m = machine();
    patch_span(&m, &mut s);
    let r = check_schedule(&ddg, &m, &constraints, Heuristic::PrefClus, &s);
    (r, ViolationKind::MissingCopy)
}

fn mutate_sync_violation() -> (CheckReport, ViolationKind) {
    let mut b = DdgBuilder::new();
    let load = b.load(Width::W4);
    let alu = b.op(OpKind::IntAlu, &[load]);
    let fp = b.op(OpKind::FpAlu, &[]);
    b.dep(alu, fp, DepKind::Sync, 0);
    let (ddg, mut s) = sched(b, &SchedConstraints::none(), Heuristic::MinComs);
    let sync_floor = s.ops[&alu].start;
    assert!(sync_floor >= 1, "alu issues after its load");
    s.ops.get_mut(&fp).unwrap().start = sync_floor - 1;
    let m = machine();
    patch_span(&m, &mut s);
    let r = check_schedule(&ddg, &m, &SchedConstraints::none(), Heuristic::MinComs, &s);
    (r, ViolationKind::SyncViolation)
}

fn mutate_colocation_split() -> (CheckReport, ViolationKind) {
    let (ddg, mut s, constraints, _, sb) = colocated_stores(None);
    let m = machine();
    let op = s.ops.get_mut(&sb).unwrap();
    op.cluster = (op.cluster + 1) % m.n_clusters;
    let r = check_schedule(&ddg, &m, &constraints, Heuristic::PrefClus, &s);
    (r, ViolationKind::ColocationSplit)
}

fn mutate_group_target_missed() -> (CheckReport, ViolationKind) {
    let (ddg, mut s, constraints, sa, sb) = colocated_stores(Some(2));
    assert_eq!(s.ops[&sa].cluster, 2, "PrefClus honors the group target");
    let m = machine();
    // Move the whole group together: still colocated, but off target.
    for n in [sa, sb] {
        s.ops.get_mut(&n).unwrap().cluster = 3;
    }
    let r = check_schedule(&ddg, &m, &constraints, Heuristic::PrefClus, &s);
    (r, ViolationKind::GroupTargetMissed)
}

fn mutate_pin_violation_literal() -> (CheckReport, ViolationKind) {
    let mut b = DdgBuilder::new();
    let st = b.store(Width::W4, &[]);
    let mut constraints = SchedConstraints::none();
    constraints.pinned = BTreeMap::from([(st, 2)]);
    let (ddg, mut s) = sched(b, &constraints, Heuristic::PrefClus);
    assert_eq!(s.ops[&st].cluster, 2);
    s.ops.get_mut(&st).unwrap().cluster = 3;
    let r = check_schedule(&ddg, &machine(), &constraints, Heuristic::PrefClus, &s);
    (r, ViolationKind::PinViolation)
}

fn mutate_pin_violation_relabeling() -> (CheckReport, ViolationKind) {
    // Under MinComs pins hold up to an injective relabeling; folding
    // two pins onto one cluster breaks injectivity. min_ii 2 leaves a
    // free memory slot so the fold is resource-legal.
    let mut b = DdgBuilder::new();
    let sa = b.store(Width::W4, &[]);
    let sb = b.store(Width::W4, &[]);
    let mut constraints = SchedConstraints::none().with_min_ii(2);
    constraints.pinned = BTreeMap::from([(sa, 0), (sb, 1)]);
    let (ddg, mut s) = sched(b, &constraints, Heuristic::MinComs);
    assert_ne!(s.ops[&sa].cluster, s.ops[&sb].cluster);
    let home = s.ops[&sa];
    let op = s.ops.get_mut(&sb).unwrap();
    op.cluster = home.cluster;
    op.start = home.start + 1;
    let m = machine();
    patch_span(&m, &mut s);
    let r = check_schedule(&ddg, &m, &constraints, Heuristic::MinComs, &s);
    (r, ViolationKind::PinViolation)
}

fn mutate_min_ii_violated() -> (CheckReport, ViolationKind) {
    let mut b = DdgBuilder::new();
    let _st = b.store(Width::W4, &[]);
    let constraints = SchedConstraints::none().with_min_ii(4);
    let (ddg, mut s) = sched(b, &constraints, Heuristic::PrefClus);
    assert_eq!(s.ii, 4);
    s.ii = 3;
    let m = machine();
    patch_span(&m, &mut s);
    let r = check_schedule(&ddg, &m, &constraints, Heuristic::PrefClus, &s);
    (r, ViolationKind::MinIiViolated)
}

fn mutate_pressure_exceeded() -> (CheckReport, ViolationKind) {
    let mut b = DdgBuilder::new();
    let load = b.load(Width::W4);
    let alu = b.op(OpKind::IntAlu, &[load]);
    let tail = b.op(OpKind::IntAlu, &[alu]);
    let (ddg, mut s) = sched(b, &SchedConstraints::none(), Heuristic::MinComs);
    let m = machine();
    // Stretch alu's live range past the register budget. The offset is
    // a multiple of the II, so the modulo slot (and thus the FU
    // occupancy) is unchanged, and reads only move later — every
    // dependence stays satisfied.
    let offset = (m.regs_per_cluster as u32 + 2) * s.ii;
    s.ops.get_mut(&tail).unwrap().start += offset;
    patch_span(&m, &mut s);
    let r = check_schedule(&ddg, &m, &SchedConstraints::none(), Heuristic::MinComs, &s);
    (r, ViolationKind::PressureExceeded)
}

fn mutate_span_mismatch() -> (CheckReport, ViolationKind) {
    let (ddg, mut s, _, _) = chain_fixture();
    s.span += 1;
    let r = check_schedule(
        &ddg,
        &machine(),
        &SchedConstraints::none(),
        Heuristic::MinComs,
        &s,
    );
    (r, ViolationKind::SpanMismatch)
}

/// The matrix: one targeted mutation per violation kind (two for pins,
/// covering both heuristics' semantics). Each must be killed by exactly
/// its own kind, and collectively they must cover every kind the
/// checker can emit.
#[test]
fn every_violation_kind_is_killed_by_exactly_its_mutation() {
    let matrix: Vec<(CheckReport, ViolationKind)> = vec![
        mutate_missing_node(),
        mutate_bad_cluster(),
        mutate_fu_overflow(),
        mutate_bus_overflow(),
        mutate_dep_violation(),
        mutate_missing_copy(),
        mutate_sync_violation(),
        mutate_colocation_split(),
        mutate_group_target_missed(),
        mutate_pin_violation_literal(),
        mutate_pin_violation_relabeling(),
        mutate_min_ii_violated(),
        mutate_pressure_exceeded(),
        mutate_span_mismatch(),
    ];
    let mut covered: Vec<ViolationKind> = Vec::new();
    for (report, kind) in &matrix {
        assert_only(report, *kind);
        covered.push(*kind);
    }
    covered.sort();
    covered.dedup();
    assert_eq!(
        covered,
        ViolationKind::ALL.to_vec(),
        "the matrix must cover every violation kind"
    );
}

/// A paper-baseline machine rescaled to `n_clusters` (the same block
/// stretch `core::experiments::sweep_machine` applies, restated here so
/// the checker crate stays below `core` in the dependency order).
fn scaled_machine(n_clusters: usize) -> MachineConfig {
    let mut m = MachineConfig::paper_baseline();
    m.n_clusters = n_clusters;
    let stripe = n_clusters as u64 * m.interleave_bytes;
    if !m.cache.block_bytes.is_multiple_of(stripe) {
        m.cache.block_bytes = m.cache.block_bytes.max(stripe);
    }
    m.validate().expect("scaled machine is valid");
    m
}

/// Strategy: a random well-formed DDG — loads, stores over shared
/// memory ids, arithmetic consumers, a sprinkle of loop-carried
/// recurrences.
fn arb_ddg() -> impl Strategy<Value = distvliw_ir::Ddg> {
    (
        1usize..8, // memory ops
        0usize..8, // arithmetic ops
        proptest::collection::vec(any::<u8>(), 16),
    )
        .prop_map(|(n_mem, n_arith, entropy)| {
            let mut b = DdgBuilder::new();
            let mut loads: Vec<NodeId> = Vec::new();
            let mut mems: Vec<NodeId> = Vec::new();
            for i in 0..n_mem {
                let pick = entropy[i % entropy.len()];
                if pick % 3 == 0 && !loads.is_empty() {
                    let src = loads[usize::from(pick / 3) % loads.len()];
                    mems.push(b.store(Width::W4, &[src]));
                } else {
                    let l = b.load(Width::W4);
                    loads.push(l);
                    mems.push(l);
                }
            }
            let mut values = loads.clone();
            for i in 0..n_arith {
                let pick = usize::from(entropy[(i + 7) % entropy.len()]);
                let srcs: Vec<NodeId> = values
                    .get(pick % values.len().max(1))
                    .copied()
                    .into_iter()
                    .collect();
                let v = b.op(
                    if i % 3 == 0 {
                        OpKind::IntMul
                    } else {
                        OpKind::IntAlu
                    },
                    &srcs,
                );
                values.push(v);
            }
            // Conservative memory edges between neighbouring mem ops,
            // alternating loop-carried distance.
            let g = b.graph();
            let mut edges = Vec::new();
            for w in mems.windows(2) {
                let (a, c) = (w[0], w[1]);
                let kind = match (g.node(a).is_store(), g.node(c).is_store()) {
                    (true, true) => DepKind::MemOut,
                    (true, false) => DepKind::MemFlow,
                    (false, true) => DepKind::MemAnti,
                    (false, false) => continue,
                };
                edges.push((a, c, kind));
            }
            for (i, (a, c, kind)) in edges.into_iter().enumerate() {
                b.dep(a, c, kind, (i % 2) as u32);
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unmutated schedules verify clean at every swept scale, for every
    /// solution family and both heuristics — the checker's false-positive
    /// guard, complementing the kill matrix's false-negative guard.
    #[test]
    fn unmutated_schedules_verify_clean(ddg in arb_ddg(), ci in 0usize..4, relax in any::<bool>()) {
        let n_clusters = [2usize, 4, 8, 16][ci];
        let m = scaled_machine(n_clusters);
        for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
            // Free.
            let free = SchedConstraints::none();
            let s = ModuloScheduler::new(&m)
                .with_latency_relaxation(relax)
                .schedule(&ddg, &free, &PrefMap::new(), heuristic)
                .expect("random DDGs schedule");
            let r = check_schedule(&ddg, &m, &free, heuristic, &s);
            prop_assert!(r.is_clean(), "free/{heuristic} n={n_clusters}: {r}");

            // MDC colocation.
            let chains = find_chains(&ddg);
            let mdc = SchedConstraints::for_mdc(&chains, &ddg, None, n_clusters);
            let s = ModuloScheduler::new(&m)
                .with_latency_relaxation(relax)
                .schedule(&ddg, &mdc, &PrefMap::new(), heuristic)
                .expect("random DDGs schedule under MDC");
            let r = check_schedule(&ddg, &m, &mdc, heuristic, &s);
            prop_assert!(r.is_clean(), "mdc/{heuristic} n={n_clusters}: {r}");

            // DDGT replication + sync (pins and sync edges exercised).
            let mut t = ddg.clone();
            let report = transform(&mut t, n_clusters);
            let ddgt = SchedConstraints::for_ddgt(&report);
            let s = ModuloScheduler::new(&m)
                .with_latency_relaxation(relax)
                .schedule(&t, &ddgt, &PrefMap::new(), heuristic)
                .expect("random DDGs schedule under DDGT");
            let r = check_schedule(&t, &m, &ddgt, heuristic, &s);
            prop_assert!(r.is_clean(), "ddgt/{heuristic} n={n_clusters}: {r}");
        }
    }
}
