//! Property tests for the IR crate: graph invariants under replication
//! and unrolling, and address-stream algebra.

use std::sync::Arc;

use distvliw_ir::{unroll, AddressStream, DdgBuilder, DepKind, LoopKernel, NodeId, OpKind, Width};
use proptest::prelude::*;

fn arb_stream() -> impl Strategy<Value = AddressStream> {
    prop_oneof![
        (0u64..1 << 20, -64i64..64).prop_map(|(base, stride)| AddressStream::Affine {
            base: base + (1 << 20), // keep negative strides in range
            stride,
        }),
        proptest::collection::vec(0u64..1 << 20, 1..32)
            .prop_map(|v| AddressStream::Indexed(Arc::from(v))),
    ]
}

fn arb_kernel() -> impl Strategy<Value = LoopKernel> {
    (
        1usize..6,
        0usize..5,
        proptest::collection::vec(any::<u8>(), 8),
        1u64..5,
    )
        .prop_map(|(n_mem, n_arith, entropy, trip_scale)| {
            let mut b = DdgBuilder::new();
            let mut produced: Vec<NodeId> = Vec::new();
            for i in 0..n_mem {
                if entropy[i % entropy.len()] % 2 == 0 || produced.is_empty() {
                    produced.push(b.load(Width::W4));
                } else {
                    let src = produced[i % produced.len()];
                    b.store(Width::W4, &[src]);
                }
            }
            for i in 0..n_arith {
                let srcs: Vec<NodeId> = produced
                    .get(i % produced.len().max(1))
                    .copied()
                    .into_iter()
                    .collect();
                let n = b.op(OpKind::IntAlu, &srcs);
                produced.push(n);
            }
            // A loop-carried memory dependence when there are 2+ mem ops.
            let g = b.graph();
            let mem: Vec<NodeId> = g.mem_nodes().collect();
            if mem.len() >= 2 {
                b.dep(mem[0], mem[1], DepKind::MemAnti, 1);
            }
            let ddg = b.finish();
            let sites: Vec<_> = ddg
                .mem_nodes()
                .map(|n| ddg.node(n).mem_id().unwrap())
                .collect();
            let mut k = LoopKernel::new("prop-ir", ddg, 8 * trip_scale);
            for (i, &m) in sites.iter().enumerate() {
                for img in [&mut k.profile, &mut k.exec] {
                    img.insert(
                        m,
                        AddressStream::Affine {
                            base: 64 * i as u64,
                            stride: 4,
                        },
                    );
                }
            }
            k
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streams_are_deterministic(stream in arb_stream(), iter in 0u64..10_000) {
        prop_assert_eq!(stream.addr_at(iter), stream.addr_at(iter));
    }

    #[test]
    fn indexed_streams_cycle(table in proptest::collection::vec(0u64..1 << 20, 1..32), i in 0u64..256) {
        let len = table.len() as u64;
        let s = AddressStream::Indexed(Arc::from(table));
        prop_assert_eq!(s.addr_at(i), s.addr_at(i + len));
    }

    #[test]
    fn replicate_preserves_edge_counts(kernel in arb_kernel()) {
        let mut g = kernel.ddg.clone();
        let Some(target) = g.stores().next() else { return Ok(()) };
        let in_deg = g.in_deps(target).count();
        let out_deg = g.out_deps(target).count();
        let total = g.edge_count();
        let clone = g.replicate(target);
        prop_assert_eq!(g.in_deps(clone).count(), in_deg);
        prop_assert_eq!(g.out_deps(clone).count(), out_deg);
        prop_assert_eq!(g.edge_count(), total + in_deg + out_deg);
        prop_assert_eq!(g.replica_of(clone), Some(target));
    }

    #[test]
    fn unrolling_preserves_dynamic_work(kernel in arb_kernel(), factor in 1u32..5) {
        if kernel.trip_count < u64::from(factor) {
            return Ok(());
        }
        let u = unroll::unroll(&kernel, factor);
        prop_assert!(u.validate().is_ok(), "{:?}", u.validate());
        // Total dynamic memory accesses are preserved when the trip count
        // divides evenly; otherwise the epilogue remainder is dropped.
        if kernel.trip_count % u64::from(factor) == 0 {
            prop_assert_eq!(u.dyn_mem_accesses(), kernel.dyn_mem_accesses());
            prop_assert_eq!(u.dyn_ops(), kernel.dyn_ops());
        }
        prop_assert_eq!(u.ddg.node_count(), kernel.ddg.node_count() * factor as usize);
        prop_assert!(!u.ddg.has_zero_distance_cycle());
    }

    #[test]
    fn unrolled_streams_tile_the_original(kernel in arb_kernel(), factor in 1u32..5) {
        if kernel.trip_count < u64::from(factor) {
            return Ok(());
        }
        let u = unroll::unroll(&kernel, factor);
        // The union of addresses touched in the first unrolled iteration
        // equals the original's first `factor` iterations.
        let mut orig: Vec<u64> = kernel
            .exec
            .iter()
            .flat_map(|(_, s)| (0..u64::from(factor)).map(move |i| s.addr_at(i)))
            .collect();
        let mut unrolled: Vec<u64> = u.exec.iter().map(|(_, s)| s.addr_at(0)).collect();
        orig.sort_unstable();
        unrolled.sort_unstable();
        prop_assert_eq!(orig, unrolled);
    }

    #[test]
    fn profile_counts_total_matches_iterations(kernel in arb_kernel()) {
        let n = kernel.ddg.mem_nodes().count() as u64;
        let map = distvliw_ir::profile::preferred_clusters(&kernel, 4, |a| ((a / 4) % 4) as usize);
        let total: u64 = map.values().map(|p| p.total()).sum();
        prop_assert_eq!(total, n * kernel.trip_count.min(distvliw_ir::profile::PROFILE_ITERATION_CAP));
    }
}
