//! Dependence kinds and edges.

use std::fmt;

use crate::ddg::NodeId;

/// The kind of a dependence edge (paper Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Register flow dependence (RF): producer to consumer through a
    /// virtual register.
    RegFlow,
    /// Memory flow dependence (MF): a store followed by a load that may
    /// read the stored location.
    MemFlow,
    /// Memory anti dependence (MA): a load followed by a store that may
    /// overwrite the loaded location.
    MemAnti,
    /// Memory output dependence (MO): two stores that may write the same
    /// location.
    MemOut,
    /// Synchronization dependence (SYNC), introduced by the DDGT
    /// load–store synchronization: the target store must be scheduled at
    /// or after the source consumer (paper Section 3.3).
    Sync,
}

impl DepKind {
    /// Whether this is one of the three memory dependence kinds
    /// (MF, MA, MO). SYNC edges are *not* memory dependences: they are the
    /// residue left after a memory-anti dependence has been handled.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, DepKind::MemFlow | DepKind::MemAnti | DepKind::MemOut)
    }

    /// Minimum issue-cycle separation implied by the edge, before adding
    /// the producer latency for register-flow edges.
    ///
    /// * MF and MO require strict ordering at the memory system, hence a
    ///   one-cycle separation inside a cluster.
    /// * MA and SYNC only require *not-before* ordering (the paper: "the
    ///   store must be scheduled after or at least at the same time as the
    ///   consumer"), hence zero.
    #[must_use]
    pub fn min_separation(self) -> u32 {
        match self {
            DepKind::MemFlow | DepKind::MemOut => 1,
            DepKind::MemAnti | DepKind::Sync => 0,
            // For RegFlow the scheduler adds the producer's latency.
            DepKind::RegFlow => 0,
        }
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::RegFlow => "RF",
            DepKind::MemFlow => "MF",
            DepKind::MemAnti => "MA",
            DepKind::MemOut => "MO",
            DepKind::Sync => "SYNC",
        };
        f.write_str(s)
    }
}

/// A dependence edge of the DDG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dep {
    /// Source node (must execute first, modulo `distance`).
    pub src: NodeId,
    /// Target node.
    pub dst: NodeId,
    /// Dependence kind.
    pub kind: DepKind,
    /// Loop-carried distance in iterations (`d` in the paper's figures).
    /// Zero means both endpoints belong to the same iteration.
    pub distance: u32,
}

impl fmt::Display for Dep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} --{}(d={})--> {}",
            self.src, self.kind, self.distance, self.dst
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_kinds() {
        assert!(DepKind::MemFlow.is_memory());
        assert!(DepKind::MemAnti.is_memory());
        assert!(DepKind::MemOut.is_memory());
        assert!(!DepKind::RegFlow.is_memory());
        assert!(!DepKind::Sync.is_memory());
    }

    #[test]
    fn separations() {
        assert_eq!(DepKind::MemFlow.min_separation(), 1);
        assert_eq!(DepKind::MemOut.min_separation(), 1);
        assert_eq!(DepKind::MemAnti.min_separation(), 0);
        assert_eq!(DepKind::Sync.min_separation(), 0);
    }

    #[test]
    fn display() {
        let d = Dep {
            src: NodeId(0),
            dst: NodeId(1),
            kind: DepKind::MemFlow,
            distance: 1,
        };
        assert_eq!(d.to_string(), "n0 --MF(d=1)--> n1");
    }
}
