//! Loop-kernel intermediate representation for the `distvliw` toolchain.
//!
//! This crate provides the compiler-side data structures used by the CGO'03
//! reproduction *"Local Scheduling Techniques for Memory Coherence in a
//! Clustered VLIW Processor with a Distributed Data Cache"*:
//!
//! * [`Operation`]s over virtual registers ([`VReg`]), including memory
//!   operations identified by a stable [`MemId`],
//! * [`Ddg`], a Data Dependence Graph with register-flow and memory
//!   dependence edges ([`DepKind`]) annotated with loop-carried distances,
//! * [`LoopKernel`], a schedulable loop body plus its dynamic metadata
//!   (trip count, invocation count) and its *profile* and *execution*
//!   [`MemImage`]s (per-memory-operation address streams),
//! * profiling ([`profile`]) and unrolling ([`unroll`]) passes.
//!
//! The IR is deliberately small: it models exactly what the paper's
//! techniques need — typed operations, dependence edges with distances,
//! and reproducible address streams — and nothing else.
//!
//! # Example
//!
//! ```
//! use distvliw_ir::{Ddg, DdgBuilder, DepKind, OpKind, Width};
//!
//! // Build the paper's Figure 3 example graph: two loads feeding two
//! // stores and an add, with memory dependences between them.
//! let mut b = DdgBuilder::new();
//! let n1 = b.load(Width::W4);
//! let n2 = b.load(Width::W4);
//! let n3 = b.store(Width::W4, &[]);
//! let n4 = b.store(Width::W4, &[n1]);
//! let n5 = b.op(OpKind::IntAlu, &[n2]);
//! b.dep(n1, n3, DepKind::MemAnti, 0);
//! b.dep(n2, n3, DepKind::MemAnti, 0);
//! b.dep(n3, n4, DepKind::MemOut, 0);
//! let ddg: Ddg = b.finish();
//! assert_eq!(ddg.node_count(), 5);
//! assert!(ddg.node(n5).kind.is_arith());
//! # let _ = (n4, n5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod ddg;
mod dep;
mod kernel;
mod node_map;
mod op;
pub mod profile;
pub mod unroll;

pub use ddg::{Ddg, DdgBuilder, DdgError, EdgeId, NodeId};
pub use dep::{Dep, DepKind};
pub use kernel::{AddressStream, LoopKernel, MemImage, Suite};
pub use node_map::NodeMap;
pub use op::{FuClass, MemId, MemRef, OpKind, Operation, VReg, Width};
pub use profile::{PrefInfo, PrefMap};
