//! Dense, `NodeId`-indexed side tables.
//!
//! [`NodeId`]s are contiguous `u32` indices, so per-node side tables never
//! need tree- or hash-based maps: a `Vec<Option<T>>` gives O(1) lookup,
//! insertion and removal with no per-entry allocation and iteration in
//! ascending `NodeId` order — the same order `BTreeMap<NodeId, T>` would
//! produce, which keeps algorithms that iterate side tables
//! deterministic. The scheduling hot path (`distvliw-sched`) stores its
//! latency classes, latency cycles and placements in `NodeMap`s.

use std::fmt;

use crate::ddg::NodeId;

/// A dense map from [`NodeId`] to `T`, backed by a `Vec`.
///
/// # Example
///
/// ```
/// use distvliw_ir::{NodeId, NodeMap};
///
/// let mut m: NodeMap<u32> = NodeMap::new();
/// m.insert(NodeId(2), 40);
/// m.insert(NodeId(0), 7);
/// assert_eq!(m.get(NodeId(2)), Some(&40));
/// assert_eq!(m.len(), 2);
/// // Iteration is in ascending NodeId order.
/// let keys: Vec<_> = m.keys().collect();
/// assert_eq!(keys, vec![NodeId(0), NodeId(2)]);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct NodeMap<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> NodeMap<T> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        NodeMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty map with room for nodes `0..n` before any
    /// reallocation.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        let mut slots = Vec::new();
        slots.reserve_exact(n);
        NodeMap { slots, len: 0 }
    }

    /// Number of entries present.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` for `n`, returning the previous value if any.
    pub fn insert(&mut self, n: NodeId, value: T) -> Option<T> {
        let i = n.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let old = self.slots[i].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes the entry for `n`, returning it if present.
    pub fn remove(&mut self, n: NodeId) -> Option<T> {
        let old = self.slots.get_mut(n.index()).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// The value for `n`, if present.
    #[must_use]
    pub fn get(&self, n: NodeId) -> Option<&T> {
        self.slots.get(n.index()).and_then(Option::as_ref)
    }

    /// Mutable access to the value for `n`, if present.
    pub fn get_mut(&mut self, n: NodeId) -> Option<&mut T> {
        self.slots.get_mut(n.index()).and_then(Option::as_mut)
    }

    /// Whether `n` has an entry.
    #[must_use]
    pub fn contains_key(&self, n: NodeId) -> bool {
        self.get(n).is_some()
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    /// Entries in ascending `NodeId` order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (NodeId(i as u32), v)))
    }

    /// Keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().map(|(n, _)| n)
    }

    /// Values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &T> + '_ {
        self.slots.iter().filter_map(Option::as_ref)
    }
}

impl<T> std::ops::Index<NodeId> for NodeMap<T> {
    type Output = T;

    fn index(&self, n: NodeId) -> &T {
        self.get(n).unwrap_or_else(|| panic!("no entry for {n}"))
    }
}

impl<T> FromIterator<(NodeId, T)> for NodeMap<T> {
    fn from_iter<I: IntoIterator<Item = (NodeId, T)>>(iter: I) -> Self {
        let mut m = NodeMap::new();
        for (n, v) in iter {
            m.insert(n, v);
        }
        m
    }
}

impl<T> Extend<(NodeId, T)> for NodeMap<T> {
    fn extend<I: IntoIterator<Item = (NodeId, T)>>(&mut self, iter: I) {
        for (n, v) in iter {
            self.insert(n, v);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for NodeMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = NodeMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(NodeId(3), "a"), None);
        assert_eq!(m.insert(NodeId(3), "b"), Some("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(NodeId(3)), Some(&"b"));
        assert_eq!(m.get(NodeId(99)), None);
        assert_eq!(m.remove(NodeId(3)), Some("b"));
        assert_eq!(m.remove(NodeId(3)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_is_in_ascending_order() {
        let mut m = NodeMap::new();
        for i in [5u32, 1, 9, 0] {
            m.insert(NodeId(i), i * 10);
        }
        let pairs: Vec<_> = m.iter().map(|(n, &v)| (n.0, v)).collect();
        assert_eq!(pairs, vec![(0, 0), (1, 10), (5, 50), (9, 90)]);
        let vals: Vec<_> = m.values().copied().collect();
        assert_eq!(vals, vec![0, 10, 50, 90]);
    }

    #[test]
    fn from_iterator_matches_btreemap_semantics() {
        let m: NodeMap<u32> = [(NodeId(2), 1), (NodeId(2), 2), (NodeId(0), 3)]
            .into_iter()
            .collect();
        assert_eq!(m.len(), 2);
        assert_eq!(m[NodeId(2)], 2); // last write wins
        assert_eq!(m[NodeId(0)], 3);
    }

    #[test]
    fn clear_keeps_allocation() {
        let mut m = NodeMap::new();
        m.insert(NodeId(7), 1);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(NodeId(7)), None);
        m.insert(NodeId(7), 2);
        assert_eq!(m[NodeId(7)], 2);
    }

    #[test]
    #[should_panic(expected = "no entry")]
    fn index_panics_on_missing() {
        let m: NodeMap<u32> = NodeMap::new();
        let _ = m[NodeId(0)];
    }

    #[test]
    fn get_mut_mutates() {
        let mut m = NodeMap::new();
        m.insert(NodeId(1), 10);
        *m.get_mut(NodeId(1)).unwrap() += 5;
        assert_eq!(m[NodeId(1)], 15);
        assert!(m.get_mut(NodeId(2)).is_none());
    }
}
