//! Profiling pass: preferred-cluster computation.
//!
//! The paper's PrefClus heuristic schedules each memory instruction in the
//! cluster it accesses most, *computed through profiling* (Section 2.2,
//! footnote 1). This module walks a kernel's **profile** address streams
//! through a caller-supplied address→cluster mapping and tallies, per
//! memory site, how often each cluster is the home of the accessed word —
//! the `pref = {70 30 0 0}` annotations of the paper's Figure 3.

use std::collections::BTreeMap;

use crate::kernel::LoopKernel;
use crate::op::MemId;

/// Per-memory-site preferred-cluster histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefInfo {
    counts: Vec<u64>,
}

impl PrefInfo {
    /// Creates a histogram with one bucket per cluster.
    #[must_use]
    pub fn new(n_clusters: usize) -> Self {
        PrefInfo {
            counts: vec![0; n_clusters],
        }
    }

    /// Builds a histogram directly from counts (useful in tests).
    #[must_use]
    pub fn from_counts(counts: Vec<u64>) -> Self {
        PrefInfo { counts }
    }

    /// Records one access whose home is `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn record(&mut self, cluster: usize) {
        self.counts[cluster] += 1;
    }

    /// The access count per cluster.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total profiled accesses.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The preferred cluster: the one accessed most, lowest index on ties.
    #[must_use]
    pub fn preferred(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, usize::MAX - i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The fraction of accesses whose home is `cluster` (0 if unprofiled).
    #[must_use]
    pub fn fraction(&self, cluster: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[cluster] as f64 / total as f64
        }
    }

    /// Accumulates another histogram into this one (used to compute the
    /// *average preferred cluster* of an MDC chain).
    ///
    /// # Panics
    ///
    /// Panics if the cluster counts differ.
    pub fn merge(&mut self, other: &PrefInfo) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cluster count mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Preferred-cluster information for every memory site of a kernel.
pub type PrefMap = BTreeMap<MemId, PrefInfo>;

/// Maximum profiled iterations per loop; profiling is a sampling pass, so
/// long loops are truncated for speed (the distribution converges long
/// before this).
pub const PROFILE_ITERATION_CAP: u64 = 4096;

/// Profiles `kernel` under its *profile* input, mapping each accessed
/// address to its home cluster with `home`.
///
/// Replicated store instances share the [`MemId`] of their original, so a
/// transformed graph profiles identically to the original.
pub fn preferred_clusters(
    kernel: &LoopKernel,
    n_clusters: usize,
    mut home: impl FnMut(u64) -> usize,
) -> PrefMap {
    let iters = kernel.trip_count.min(PROFILE_ITERATION_CAP);
    let mut map = PrefMap::new();
    for (mem, stream) in kernel.profile.iter() {
        let info = map.entry(mem).or_insert_with(|| PrefInfo::new(n_clusters));
        for i in 0..iters {
            info.record(home(stream.addr_at(i)));
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::DdgBuilder;
    use crate::kernel::AddressStream;
    use crate::op::Width;

    #[test]
    fn pref_info_basics() {
        let p = PrefInfo::from_counts(vec![20, 50, 30, 0]);
        assert_eq!(p.preferred(), 1);
        assert_eq!(p.total(), 100);
        assert!((p.fraction(1) - 0.5).abs() < 1e-12);
        assert_eq!(p.fraction(3), 0.0);
    }

    #[test]
    fn pref_info_tie_breaks_low_index() {
        let p = PrefInfo::from_counts(vec![5, 5, 1, 5]);
        assert_eq!(p.preferred(), 0);
    }

    #[test]
    fn pref_info_empty_is_safe() {
        let p = PrefInfo::new(4);
        assert_eq!(p.preferred(), 0);
        assert_eq!(p.fraction(2), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PrefInfo::from_counts(vec![1, 2, 3, 4]);
        a.merge(&PrefInfo::from_counts(vec![4, 3, 2, 1]));
        assert_eq!(a.counts(), &[5, 5, 5, 5]);
    }

    #[test]
    fn profiling_counts_homes() {
        let mut b = DdgBuilder::new();
        let ld = b.load(Width::W4);
        let g = b.finish();
        let mem = g.node(ld).mem_id().unwrap();
        let mut k = LoopKernel::new("p", g, 16);
        // Walks words 0,1,2,3,0,1,... under a 4-cluster word-interleaved map.
        k.profile
            .insert(mem, AddressStream::Affine { base: 0, stride: 4 });
        k.exec
            .insert(mem, AddressStream::Affine { base: 0, stride: 4 });
        let map = preferred_clusters(&k, 4, |addr| ((addr / 4) % 4) as usize);
        let info = &map[&mem];
        assert_eq!(info.total(), 16);
        assert_eq!(info.counts(), &[4, 4, 4, 4]);
    }

    #[test]
    fn profiling_single_cluster_stride() {
        let mut b = DdgBuilder::new();
        let ld = b.load(Width::W4);
        let g = b.finish();
        let mem = g.node(ld).mem_id().unwrap();
        let mut k = LoopKernel::new("p", g, 64);
        // Stride 16 = 4 clusters × 4-byte interleave: always the same home.
        k.profile.insert(
            mem,
            AddressStream::Affine {
                base: 8,
                stride: 16,
            },
        );
        k.exec.insert(
            mem,
            AddressStream::Affine {
                base: 8,
                stride: 16,
            },
        );
        let map = preferred_clusters(&k, 4, |addr| ((addr / 4) % 4) as usize);
        assert_eq!(map[&mem].preferred(), 2);
        assert_eq!(map[&mem].fraction(2), 1.0);
    }

    #[test]
    fn profiling_respects_iteration_cap() {
        let mut b = DdgBuilder::new();
        let ld = b.load(Width::W4);
        let g = b.finish();
        let mem = g.node(ld).mem_id().unwrap();
        let mut k = LoopKernel::new("p", g, u64::MAX);
        k.profile
            .insert(mem, AddressStream::Affine { base: 0, stride: 4 });
        k.exec
            .insert(mem, AddressStream::Affine { base: 0, stride: 4 });
        let map = preferred_clusters(&k, 4, |addr| ((addr / 4) % 4) as usize);
        assert_eq!(map[&mem].total(), PROFILE_ITERATION_CAP);
    }
}
