//! Loop unrolling.
//!
//! The paper's scheduling framework unrolls loops "so that the number of
//! instructions with a stride multiple of N×I is maximized (where N is the
//! number of clusters and I is the interleaving factor expressed in
//! bytes)" (Section 2.2). Such instructions touch a single cluster for the
//! whole loop, which is what makes the PrefClus heuristic profitable.
//!
//! [`choose_factor`] picks the unroll factor with that objective and
//! [`unroll`] performs the transformation: the body is replicated, virtual
//! registers and memory sites are renamed per copy, address streams are
//! re-based (`copy k` of an affine stream starts at `base + k·stride` and
//! strides by `factor·stride`), and loop-carried dependences are rewired
//! between copies with reduced distances.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::ddg::{Ddg, NodeId};
use crate::kernel::{AddressStream, LoopKernel, MemImage};
use crate::op::{MemId, VReg};

/// Upper bound on unroll factors considered by [`choose_factor`]; larger
/// factors blow up the schedule without improving locality further.
pub const MAX_UNROLL: u32 = 8;

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Picks the unroll factor (1..=[`MAX_UNROLL`]) that maximizes the number
/// of affine memory streams whose unrolled stride is a multiple of
/// `n_clusters × interleave_bytes`; smallest factor wins ties. Streams
/// with stride zero already stay in one cluster and vote for factor 1.
#[must_use]
pub fn choose_factor(kernel: &LoopKernel, n_clusters: u64, interleave_bytes: u64) -> u32 {
    let period = n_clusters * interleave_bytes;
    if period == 0 {
        return 1;
    }
    let strides: Vec<u64> = kernel
        .profile
        .iter()
        .filter_map(|(_, s)| s.stride())
        .map(i64::unsigned_abs)
        .collect();
    let max = u64::from(MAX_UNROLL).min(kernel.trip_count.max(1));
    let mut best = (0usize, 1u32);
    for factor in 1..=max as u32 {
        let hits = strides
            .iter()
            .filter(|&&s| (s * u64::from(factor)) % period == 0)
            .count();
        if hits > best.0 {
            best = (hits, factor);
        }
    }
    best.1
}

/// The minimal factor that makes a single stride periodic over
/// `n_clusters × interleave_bytes`, capped at [`MAX_UNROLL`].
#[must_use]
pub fn minimal_factor_for_stride(stride: i64, n_clusters: u64, interleave_bytes: u64) -> u32 {
    let period = n_clusters * interleave_bytes;
    let s = stride.unsigned_abs();
    if period == 0 || s == 0 {
        return 1;
    }
    let f = period / gcd(s, period);
    f.min(u64::from(MAX_UNROLL)) as u32
}

/// Unrolls `kernel` by `factor`.
///
/// The new trip count is `trip_count / factor` (rounded down, min 1); any
/// remainder iterations would execute in a scalar epilogue outside the
/// modulo-scheduled region and are not modeled.
///
/// # Panics
///
/// Panics if `factor` is zero or if the kernel contains replicated store
/// instances (unrolling must run before the DDGT transformation).
#[must_use]
pub fn unroll(kernel: &LoopKernel, factor: u32) -> LoopKernel {
    assert!(factor > 0, "unroll factor must be positive");
    if factor == 1 {
        return kernel.clone();
    }
    let src = &kernel.ddg;
    assert!(
        src.node_ids().all(|n| src.replica_of(n).is_none()),
        "unroll must run before store replication"
    );

    let mut g = Ddg::new();
    // node_map[k][orig.index()] = new node id for copy k.
    let mut node_map: Vec<Vec<NodeId>> = Vec::with_capacity(factor as usize);
    // Memory site of copy k for each original site; copy 0 keeps the
    // original id so that profile data remains comparable.
    let mut mem_map: BTreeMap<(MemId, u32), MemId> = BTreeMap::new();

    // Insert copies in copy-major order so sequential program order of the
    // unrolled body is copy 0's ops, then copy 1's, etc.
    for k in 0..factor {
        let mut vreg_map: BTreeMap<VReg, VReg> = BTreeMap::new();
        let mut ids = Vec::with_capacity(src.node_count());
        for n in src.node_ids() {
            let mut op = src.node(n).clone();
            if let Some(m) = op.mem.as_mut() {
                let new_mem = if k == 0 {
                    m.mem
                } else {
                    *mem_map
                        .entry((m.mem, k))
                        .or_insert_with(|| g.fresh_mem_id())
                };
                mem_map.insert((m.mem, k), new_mem);
                m.mem = new_mem;
            }
            op.dest = op
                .dest
                .map(|r| *vreg_map.entry(r).or_insert_with(|| g.fresh_vreg()));
            for s in op.srcs.iter_mut() {
                *s = *vreg_map.entry(*s).or_insert_with(|| g.fresh_vreg());
            }
            ids.push(g.add_operation(op));
        }
        node_map.push(ids);
    }

    // Rewire dependences: an edge (u → v, d) means "u of iteration i is
    // needed by v of iteration i+d". With copies a = i mod factor, the
    // target lands in copy (a+d) mod factor at distance (a+d) div factor.
    for (_, d) in src.deps() {
        for a in 0..factor {
            let t = a + d.distance;
            let b = t % factor;
            let q = t / factor;
            g.add_dep(
                node_map[a as usize][d.src.index()],
                node_map[b as usize][d.dst.index()],
                d.kind,
                q,
            );
        }
    }

    // Cross-copy register flow: copy k reads values produced in copy k, so
    // nothing extra is needed — the per-copy vreg renaming keeps copies
    // independent, and loop-carried RF edges were rewired above. Streams:
    let rebased = |img: &MemImage| -> MemImage {
        let mut out = MemImage::new();
        for (mem, stream) in img.iter() {
            for k in 0..factor {
                let Some(&new_mem) = mem_map.get(&(mem, k)) else {
                    continue;
                };
                let s = match stream {
                    AddressStream::Affine { base, stride } => AddressStream::Affine {
                        base: base.wrapping_add_signed(stride * i64::from(k)),
                        stride: stride * i64::from(factor),
                    },
                    AddressStream::Indexed(t) => {
                        let picked: Vec<u64> = t
                            .iter()
                            .copied()
                            .skip(k as usize)
                            .step_by(factor as usize)
                            .collect();
                        if picked.is_empty() {
                            AddressStream::Indexed(Arc::from([stream.addr_at(u64::from(k))]))
                        } else {
                            AddressStream::Indexed(Arc::from(picked))
                        }
                    }
                };
                out.insert(new_mem, s);
            }
        }
        out
    };

    LoopKernel {
        name: format!("{}@x{}", kernel.name, factor),
        ddg: g,
        trip_count: (kernel.trip_count / u64::from(factor)).max(1),
        invocations: kernel.invocations,
        profile: rebased(&kernel.profile),
        exec: rebased(&kernel.exec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::DdgBuilder;
    use crate::dep::DepKind;
    use crate::op::{OpKind, Width};

    fn stream_kernel(stride: i64, trip: u64) -> LoopKernel {
        let mut b = DdgBuilder::new();
        let ld = b.load(Width::W4);
        let ad = b.op(OpKind::IntAlu, &[ld]);
        let st = b.store(Width::W4, &[ad]);
        b.dep(st, ld, DepKind::MemFlow, 1);
        let g = b.finish();
        let m_ld = g.node(ld).mem_id().unwrap();
        let m_st = g.node(st).mem_id().unwrap();
        let mut k = LoopKernel::new("s", g, trip);
        for img in [&mut k.profile, &mut k.exec] {
            img.insert(m_ld, AddressStream::Affine { base: 0, stride });
            img.insert(
                m_st,
                AddressStream::Affine {
                    base: 1 << 20,
                    stride,
                },
            );
        }
        k
    }

    #[test]
    fn factor_selection_matches_period() {
        // 2-byte walk on a 4-cluster × 2-byte machine: period 8, U = 4.
        let k = stream_kernel(2, 1024);
        assert_eq!(choose_factor(&k, 4, 2), 4);
        // 4-byte walk, 4-byte interleave: period 16, U = 4.
        let k = stream_kernel(4, 1024);
        assert_eq!(choose_factor(&k, 4, 4), 4);
        // Already periodic stride.
        let k = stream_kernel(16, 1024);
        assert_eq!(choose_factor(&k, 4, 4), 1);
    }

    #[test]
    fn minimal_factor() {
        assert_eq!(minimal_factor_for_stride(2, 4, 2), 4);
        assert_eq!(minimal_factor_for_stride(4, 4, 4), 4);
        assert_eq!(minimal_factor_for_stride(8, 4, 4), 2);
        assert_eq!(minimal_factor_for_stride(0, 4, 4), 1);
        assert_eq!(minimal_factor_for_stride(-2, 4, 2), 4);
        // Capped.
        assert_eq!(minimal_factor_for_stride(1, 4, 4), 8);
    }

    #[test]
    fn unroll_by_one_is_identity() {
        let k = stream_kernel(4, 128);
        let u = unroll(&k, 1);
        assert_eq!(u.ddg.node_count(), k.ddg.node_count());
        assert_eq!(u.trip_count, k.trip_count);
    }

    #[test]
    fn unroll_replicates_body_and_divides_trip() {
        let k = stream_kernel(4, 128);
        let u = unroll(&k, 4);
        assert_eq!(u.ddg.node_count(), k.ddg.node_count() * 4);
        assert_eq!(u.trip_count, 32);
        assert_eq!(u.invocations, k.invocations);
        assert!(u.validate().is_ok(), "{:?}", u.validate());
        // Total dynamic work is preserved.
        assert_eq!(u.dyn_mem_accesses(), k.dyn_mem_accesses());
    }

    #[test]
    fn unroll_rebases_affine_streams() {
        let k = stream_kernel(4, 128);
        let u = unroll(&k, 4);
        // Gather the 4 load streams and check they tile the original walk.
        let mut addrs: Vec<u64> = Vec::new();
        for (_, s) in u.exec.iter() {
            if s.addr_at(0) < 1 << 20 {
                addrs.push(s.addr_at(0));
                assert_eq!(s.stride(), Some(16));
            }
        }
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0, 4, 8, 12]);
    }

    #[test]
    fn unroll_rewires_loop_carried_deps() {
        let k = stream_kernel(4, 128);
        let u = unroll(&k, 2);
        // Original MF st->ld d=1 becomes: copy0->copy1 d=0 and copy1->copy0 d=1.
        let mf: Vec<_> = u
            .ddg
            .deps()
            .filter(|(_, d)| d.kind == DepKind::MemFlow)
            .map(|(_, d)| d.distance)
            .collect();
        assert_eq!(mf.len(), 2);
        assert!(mf.contains(&0));
        assert!(mf.contains(&1));
        assert!(!u.ddg.has_zero_distance_cycle());
    }

    #[test]
    fn unroll_indexed_streams_split_round_robin() {
        let mut b = DdgBuilder::new();
        let ld = b.load(Width::W2);
        let g = b.finish();
        let m = g.node(ld).mem_id().unwrap();
        let mut k = LoopKernel::new("idx", g, 8);
        let table: Vec<u64> = (0..8u64).map(|i| i * 2).collect();
        k.profile
            .insert(m, AddressStream::Indexed(Arc::from(table.clone())));
        k.exec.insert(m, AddressStream::Indexed(Arc::from(table)));
        let u = unroll(&k, 2);
        let streams: Vec<_> = u.exec.iter().map(|(_, s)| s.clone()).collect();
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].addr_at(0) % 4, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn unroll_zero_panics() {
        let k = stream_kernel(4, 128);
        let _ = unroll(&k, 0);
    }
}
