//! The Data Dependence Graph.

use std::collections::VecDeque;
use std::fmt;

use crate::dep::{Dep, DepKind};
use crate::op::{MemId, OpKind, Operation, VReg, Width};

/// Identifies a node (operation) of a [`Ddg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a dependence edge of a [`Ddg`]. Edge ids remain valid after
/// other edges are removed (removal leaves a tombstone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Errors reported by [`Ddg::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdgError {
    /// An edge references a node id outside the graph.
    DanglingEdge(EdgeId),
    /// The graph has a cycle all of whose edges have distance zero, which
    /// no schedule can satisfy.
    ZeroDistanceCycle,
    /// A memory operation misses its memory reference, or vice versa.
    MalformedMemOp(NodeId),
}

impl fmt::Display for DdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdgError::DanglingEdge(e) => write!(f, "edge {e} references a node outside the graph"),
            DdgError::ZeroDistanceCycle => {
                write!(f, "graph contains a cycle with total distance zero")
            }
            DdgError::MalformedMemOp(n) => {
                write!(
                    f,
                    "node {n} mixes memory kind and memory reference inconsistently"
                )
            }
        }
    }
}

impl std::error::Error for DdgError {}

#[derive(Debug, Clone, PartialEq, Eq)]
struct NodeSlot {
    op: Operation,
    /// Sequential program order of the *original* code. Replicated
    /// instances inherit the order of their original so that the paper's
    /// "sequentially posterior" checks keep working after transformation.
    seq: u32,
    /// For nodes created by store replication: the original node.
    replica_of: Option<NodeId>,
}

/// A Data Dependence Graph over [`Operation`]s.
///
/// Nodes are append-only; edges can be removed (tombstoned), which is what
/// the DDGT transformation needs when it eliminates memory-anti edges.
///
/// # Example
///
/// ```
/// use distvliw_ir::{Ddg, DepKind, MemId, Operation, VReg, Width};
///
/// let mut g = Ddg::new();
/// let st = g.add_operation(Operation::store(MemId(0), Width::W4, vec![]));
/// let ld = g.add_operation(Operation::load(MemId(1), Width::W4, VReg(0)));
/// g.add_dep(st, ld, DepKind::MemFlow, 0);
/// assert_eq!(g.mem_dep_edges().count(), 1);
/// assert!(g.validate().is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ddg {
    nodes: Vec<NodeSlot>,
    edges: Vec<Option<Dep>>,
    succ: Vec<Vec<EdgeId>>,
    pred: Vec<Vec<EdgeId>>,
    next_vreg: u32,
    next_mem: u32,
    next_seq: u32,
}

impl Ddg {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Ddg::default()
    }

    /// Number of nodes (including replicated instances).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live (non-removed) edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.is_some()).count()
    }

    /// The operation at `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of this graph.
    #[must_use]
    pub fn node(&self, n: NodeId) -> &Operation {
        &self.nodes[n.index()].op
    }

    /// Mutable access to the operation at `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of this graph.
    pub fn node_mut(&mut self, n: NodeId) -> &mut Operation {
        &mut self.nodes[n.index()].op
    }

    /// Sequential program order index of `n` (replicas inherit their
    /// original's index).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of this graph.
    #[must_use]
    pub fn seq(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].seq
    }

    /// The original node if `n` is a replicated store instance.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of this graph.
    #[must_use]
    pub fn replica_of(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].replica_of
    }

    /// Whether `n` is either an original node or the node itself for
    /// replica-group purposes: returns the group root.
    #[must_use]
    pub fn replica_root(&self, n: NodeId) -> NodeId {
        self.replica_of(n).unwrap_or(n)
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over `(NodeId, &Operation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Operation)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, s)| (NodeId(i as u32), &s.op))
    }

    /// Iterator over memory operations.
    pub fn mem_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().filter(|(_, op)| op.is_memory()).map(|(n, _)| n)
    }

    /// Iterator over store operations.
    pub fn stores(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().filter(|(_, op)| op.is_store()).map(|(n, _)| n)
    }

    /// Iterator over load operations.
    pub fn loads(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().filter(|(_, op)| op.is_load()).map(|(n, _)| n)
    }

    /// Allocates a fresh virtual register, never used by current nodes.
    pub fn fresh_vreg(&mut self) -> VReg {
        let r = VReg(self.next_vreg);
        self.next_vreg += 1;
        r
    }

    /// Allocates a fresh memory access site id.
    pub fn fresh_mem_id(&mut self) -> MemId {
        let m = MemId(self.next_mem);
        self.next_mem += 1;
        m
    }

    /// Appends an operation, assigning it the next sequential order index.
    pub fn add_operation(&mut self, op: Operation) -> NodeId {
        if let Some(d) = op.dest {
            self.next_vreg = self.next_vreg.max(d.0 + 1);
        }
        for s in &op.srcs {
            self.next_vreg = self.next_vreg.max(s.0 + 1);
        }
        if let Some(m) = op.mem {
            self.next_mem = self.next_mem.max(m.mem.0 + 1);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_node(NodeSlot {
            op,
            seq,
            replica_of: None,
        })
    }

    /// Appends a bare clone of `n` (same operation, same memory site, same
    /// sequential order) marked as a replica of `n`, *without* cloning any
    /// edges. The DDGT store replication uses this and then adds exactly
    /// the edges the paper prescribes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of this graph.
    pub fn clone_node(&mut self, n: NodeId) -> NodeId {
        let slot = &self.nodes[n.index()];
        let root = slot.replica_of.unwrap_or(n);
        let new = NodeSlot {
            op: slot.op.clone(),
            seq: slot.seq,
            replica_of: Some(root),
        };
        self.push_node(new)
    }

    /// Appends a clone of `n` together with copies of all its live input
    /// and output edges, including edges to itself (paper Section 3.3:
    /// "Replicating an instruction of the DDG implies the replication of
    /// all its input and output dependences and dependences to itself as
    /// well").
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of this graph.
    pub fn replicate(&mut self, n: NodeId) -> NodeId {
        let new = self.clone_node(n);
        let in_edges: Vec<Dep> = self.in_deps(n).map(|(_, d)| d).collect();
        let out_edges: Vec<Dep> = self.out_deps(n).map(|(_, d)| d).collect();
        for d in in_edges {
            if d.src == n {
                // Self edge: handled once below via out_edges.
                continue;
            }
            self.add_dep(d.src, new, d.kind, d.distance);
        }
        for d in out_edges {
            if d.dst == n {
                // Self edge becomes a self edge on the clone.
                self.add_dep(new, new, d.kind, d.distance);
            } else {
                self.add_dep(new, d.dst, d.kind, d.distance);
            }
        }
        new
    }

    fn push_node(&mut self, slot: NodeSlot) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(slot);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Adds a dependence edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_dep(&mut self, src: NodeId, dst: NodeId, kind: DepKind, distance: u32) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "dangling src {src}");
        assert!(dst.index() < self.nodes.len(), "dangling dst {dst}");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Some(Dep {
            src,
            dst,
            kind,
            distance,
        }));
        self.succ[src.index()].push(id);
        self.pred[dst.index()].push(id);
        id
    }

    /// Removes an edge, returning it if it was still live.
    pub fn remove_dep(&mut self, e: EdgeId) -> Option<Dep> {
        self.edges.get_mut(e.0 as usize).and_then(Option::take)
    }

    /// The edge `e`, if still live.
    #[must_use]
    pub fn dep(&self, e: EdgeId) -> Option<Dep> {
        self.edges.get(e.0 as usize).copied().flatten()
    }

    /// Iterator over all live edges.
    pub fn deps(&self) -> impl Iterator<Item = (EdgeId, Dep)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|d| (EdgeId(i as u32), d)))
    }

    /// Iterator over live memory dependence edges (MF, MA, MO).
    pub fn mem_dep_edges(&self) -> impl Iterator<Item = (EdgeId, Dep)> + '_ {
        self.deps().filter(|(_, d)| d.kind.is_memory())
    }

    /// Live outgoing edges of `n`.
    pub fn out_deps(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, Dep)> + '_ {
        self.succ[n.index()]
            .iter()
            .filter_map(move |&e| self.dep(e).map(|d| (e, d)))
    }

    /// Live incoming edges of `n`.
    pub fn in_deps(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, Dep)> + '_ {
        self.pred[n.index()]
            .iter()
            .filter_map(move |&e| self.dep(e).map(|d| (e, d)))
    }

    /// Whether `n` has any live memory dependence edge (in or out).
    ///
    /// This is the paper's "stores that are memory dependent on any other
    /// instruction" predicate from `transform_DDG()`.
    #[must_use]
    pub fn is_memory_dependent(&self, n: NodeId) -> bool {
        self.out_deps(n).any(|(_, d)| d.kind.is_memory())
            || self.in_deps(n).any(|(_, d)| d.kind.is_memory())
    }

    /// Whether a register-flow edge `src -> dst` with the given distance
    /// exists (the redundancy check of the paper's MA handling).
    #[must_use]
    pub fn has_rf_edge(&self, src: NodeId, dst: NodeId, distance: u32) -> bool {
        self.out_deps(src)
            .any(|(_, d)| d.dst == dst && d.kind == DepKind::RegFlow && d.distance == distance)
    }

    /// Register-flow consumers of `n` at distance 0, i.e. same-iteration
    /// reads of the value `n` produces.
    pub fn consumers(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_deps(n)
            .filter(|(_, d)| d.kind == DepKind::RegFlow && d.distance == 0)
            .map(|(_, d)| d.dst)
    }

    /// Whether `to` is reachable from `from` through live edges whose
    /// distance is zero (same-iteration dependence). `from == to` counts
    /// as reachable only through a (zero-distance) cycle.
    #[must_use]
    pub fn depends_on_zero_dist(&self, to: NodeId, from: NodeId) -> bool {
        let mut queue: VecDeque<NodeId> = self
            .out_deps(from)
            .filter(|(_, d)| d.distance == 0)
            .map(|(_, d)| d.dst)
            .collect();
        let mut seen = vec![false; self.nodes.len()];
        while let Some(n) = queue.pop_front() {
            if n == to {
                return true;
            }
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            for (_, d) in self.out_deps(n) {
                if d.distance == 0 && !seen[d.dst.index()] {
                    queue.push_back(d.dst);
                }
            }
        }
        false
    }

    /// Whether the graph contains a cycle made only of zero-distance
    /// edges. Such a graph cannot be scheduled.
    #[must_use]
    pub fn has_zero_distance_cycle(&self) -> bool {
        // Kahn's algorithm restricted to distance-0 edges.
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for (_, d) in self.deps() {
            if d.distance == 0 {
                indeg[d.dst.index()] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(i) = queue.pop_front() {
            visited += 1;
            for (_, d) in self.out_deps(NodeId(i as u32)) {
                if d.distance == 0 {
                    let j = d.dst.index();
                    indeg[j] -= 1;
                    if indeg[j] == 0 {
                        queue.push_back(j);
                    }
                }
            }
        }
        visited != n
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: dangling edges, inconsistent
    /// memory operations, or an unschedulable zero-distance cycle.
    pub fn validate(&self) -> Result<(), DdgError> {
        for (e, d) in self.deps() {
            if d.src.index() >= self.nodes.len() || d.dst.index() >= self.nodes.len() {
                return Err(DdgError::DanglingEdge(e));
            }
        }
        for (n, op) in self.iter() {
            let needs_mem = op.kind.is_memory();
            if needs_mem != op.mem.is_some() {
                return Err(DdgError::MalformedMemOp(n));
            }
        }
        if self.has_zero_distance_cycle() {
            return Err(DdgError::ZeroDistanceCycle);
        }
        Ok(())
    }
}

/// Convenience builder for hand-written DDGs (tests, examples and the
/// synthetic Mediabench kernels).
///
/// The builder auto-allocates virtual registers and memory site ids and
/// wires register-flow edges from the producing node's destination register
/// to the consuming operation.
#[derive(Debug, Default)]
pub struct DdgBuilder {
    g: Ddg,
}

impl DdgBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        DdgBuilder::default()
    }

    /// Adds a load of width `width` from a fresh memory site.
    pub fn load(&mut self, width: Width) -> NodeId {
        let m = self.g.fresh_mem_id();
        self.load_from(m, width)
    }

    /// Adds a load of width `width` from the given memory site.
    pub fn load_from(&mut self, mem: MemId, width: Width) -> NodeId {
        let dest = self.g.fresh_vreg();
        self.g.add_operation(Operation::load(mem, width, dest))
    }

    /// Adds a store of width `width` to a fresh memory site, consuming the
    /// values produced by `srcs` (register-flow edges are added).
    pub fn store(&mut self, width: Width, srcs: &[NodeId]) -> NodeId {
        let m = self.g.fresh_mem_id();
        self.store_to(m, width, srcs)
    }

    /// Adds a store of width `width` to the given memory site, consuming
    /// the values produced by `srcs`.
    ///
    /// # Panics
    ///
    /// Panics if any source node produces no value.
    pub fn store_to(&mut self, mem: MemId, width: Width, srcs: &[NodeId]) -> NodeId {
        let regs = self.source_regs(srcs);
        let n = self.g.add_operation(Operation::store(mem, width, regs));
        self.flow_edges(srcs, n);
        n
    }

    /// Adds an arithmetic operation consuming the values produced by
    /// `srcs`; produces a fresh register.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not arithmetic or any source produces no value.
    pub fn op(&mut self, kind: OpKind, srcs: &[NodeId]) -> NodeId {
        let regs = self.source_regs(srcs);
        let dest = self.g.fresh_vreg();
        let n = self
            .g
            .add_operation(Operation::arith(kind, Some(dest), regs));
        self.flow_edges(srcs, n);
        n
    }

    /// Adds a loop-carried register-flow edge from `src` to `dst` with the
    /// given distance, wiring `src`'s destination register into `dst`'s
    /// sources (a recurrence).
    ///
    /// # Panics
    ///
    /// Panics if `src` produces no value.
    pub fn recurrence(&mut self, src: NodeId, dst: NodeId, distance: u32) {
        let r = self
            .g
            .node(src)
            .dest
            .expect("recurrence source must produce a value");
        self.g.node_mut(dst).srcs.push(r);
        self.g.add_dep(src, dst, DepKind::RegFlow, distance);
    }

    /// Adds an arbitrary dependence edge.
    pub fn dep(&mut self, src: NodeId, dst: NodeId, kind: DepKind, distance: u32) -> EdgeId {
        self.g.add_dep(src, dst, kind, distance)
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if the graph fails [`Ddg::validate`]; builder-produced graphs
    /// are expected to be well-formed by construction.
    #[must_use]
    pub fn finish(self) -> Ddg {
        self.g.validate().expect("builder produced an invalid DDG");
        self.g
    }

    /// Access to the graph under construction.
    #[must_use]
    pub fn graph(&self) -> &Ddg {
        &self.g
    }

    fn source_regs(&self, srcs: &[NodeId]) -> Vec<VReg> {
        srcs.iter()
            .map(|&s| {
                self.g
                    .node(s)
                    .dest
                    .expect("source node must produce a value")
            })
            .collect()
    }

    fn flow_edges(&mut self, srcs: &[NodeId], dst: NodeId) {
        for &s in srcs {
            self.g.add_dep(s, dst, DepKind::RegFlow, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Figure 3 example DDG.
    fn figure3() -> (Ddg, [NodeId; 5]) {
        let mut b = DdgBuilder::new();
        let n1 = b.load(Width::W4);
        let n2 = b.load(Width::W4);
        let n3 = b.store(Width::W4, &[]);
        let n4 = b.store(Width::W4, &[n1]);
        let n5 = b.op(OpKind::IntAlu, &[n2]);
        // Memory dependences from the figure.
        b.dep(n1, n3, DepKind::MemAnti, 0);
        b.dep(n1, n4, DepKind::MemAnti, 0);
        b.dep(n2, n3, DepKind::MemAnti, 0);
        b.dep(n2, n4, DepKind::MemAnti, 0);
        b.dep(n3, n4, DepKind::MemOut, 0);
        b.dep(n4, n3, DepKind::MemOut, 1);
        b.dep(n3, n1, DepKind::MemFlow, 1);
        b.dep(n3, n2, DepKind::MemFlow, 1);
        b.dep(n4, n1, DepKind::MemFlow, 1);
        b.dep(n4, n2, DepKind::MemFlow, 1);
        (b.finish(), [n1, n2, n3, n4, n5])
    }

    #[test]
    fn figure3_shape() {
        let (g, [n1, n2, n3, n4, n5]) = figure3();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.mem_dep_edges().count(), 10);
        assert!(g.is_memory_dependent(n3));
        assert!(g.is_memory_dependent(n4));
        assert!(g.is_memory_dependent(n1));
        assert!(!g.is_memory_dependent(n5));
        assert_eq!(g.seq(n1), 0);
        assert!(g.seq(n3) < g.seq(n4));
        let _ = n2;
    }

    #[test]
    fn sequential_posterior_and_dependence_checks() {
        let (g, [n1, _n2, n3, n4, _n5]) = figure3();
        // n4 consumes n1's value.
        assert!(g.has_rf_edge(n1, n4, 0));
        assert!(!g.has_rf_edge(n1, n3, 0));
        // n4 is memory dependent on n3 within the iteration (MO d=0).
        assert!(g.depends_on_zero_dist(n4, n3));
        assert!(!g.depends_on_zero_dist(n3, n4)); // only via d=1
    }

    #[test]
    fn consumers_iterator() {
        let (g, [n1, n2, _n3, n4, n5]) = figure3();
        let c1: Vec<_> = g.consumers(n1).collect();
        assert_eq!(c1, vec![n4]);
        let c2: Vec<_> = g.consumers(n2).collect();
        assert_eq!(c2, vec![n5]);
    }

    #[test]
    fn edge_removal_tombstones() {
        let (mut g, _) = figure3();
        let before = g.edge_count();
        let (e, d) = g.mem_dep_edges().next().unwrap();
        assert_eq!(g.remove_dep(e), Some(d));
        assert_eq!(g.remove_dep(e), None);
        assert_eq!(g.edge_count(), before - 1);
        // Adjacency iterators skip the tombstone.
        assert!(g.out_deps(d.src).all(|(id, _)| id != e));
        assert!(g.in_deps(d.dst).all(|(id, _)| id != e));
    }

    #[test]
    fn clone_node_inherits_identity_without_edges() {
        let (mut g, [_, _, n3, _, _]) = figure3();
        let c = g.clone_node(n3);
        assert_eq!(g.replica_of(c), Some(n3));
        assert_eq!(g.replica_root(c), n3);
        assert_eq!(g.seq(c), g.seq(n3));
        assert_eq!(g.node(c).mem_id(), g.node(n3).mem_id());
        assert_eq!(g.out_deps(c).count(), 0);
        assert_eq!(g.in_deps(c).count(), 0);
        // Cloning a clone still points at the root.
        let cc = g.clone_node(c);
        assert_eq!(g.replica_of(cc), Some(n3));
    }

    #[test]
    fn replicate_copies_all_edges_including_self_loops() {
        let mut g = Ddg::new();
        let s = g.add_operation(Operation::store(MemId(0), Width::W4, vec![]));
        let l = g.add_operation(Operation::load(MemId(1), Width::W4, VReg(0)));
        g.add_dep(s, l, DepKind::MemFlow, 0);
        g.add_dep(l, s, DepKind::MemAnti, 1);
        g.add_dep(s, s, DepKind::MemOut, 1); // self loop
        let c = g.replicate(s);
        // Clone has: out MF to l, in MA from l, and a self MO loop.
        assert_eq!(g.out_deps(c).filter(|(_, d)| d.dst == l).count(), 1);
        assert_eq!(g.in_deps(c).filter(|(_, d)| d.src == l).count(), 1);
        assert_eq!(g.out_deps(c).filter(|(_, d)| d.dst == c).count(), 1);
    }

    #[test]
    fn zero_distance_cycle_detection() {
        let mut g = Ddg::new();
        let a = g.add_operation(Operation::arith(OpKind::IntAlu, Some(VReg(0)), vec![]));
        let b = g.add_operation(Operation::arith(
            OpKind::IntAlu,
            Some(VReg(1)),
            vec![VReg(0)],
        ));
        g.add_dep(a, b, DepKind::RegFlow, 0);
        assert!(!g.has_zero_distance_cycle());
        g.add_dep(b, a, DepKind::RegFlow, 1);
        assert!(!g.has_zero_distance_cycle()); // distance 1 breaks the cycle
        g.add_dep(b, a, DepKind::Sync, 0);
        assert!(g.has_zero_distance_cycle());
        assert_eq!(g.validate(), Err(DdgError::ZeroDistanceCycle));
    }

    #[test]
    fn validate_catches_malformed_mem_ops() {
        let mut g = Ddg::new();
        let n = g.add_operation(Operation::arith(OpKind::IntAlu, Some(VReg(0)), vec![]));
        g.node_mut(n).kind = OpKind::Load; // now memory kind without MemRef
        assert_eq!(g.validate(), Err(DdgError::MalformedMemOp(n)));
    }

    #[test]
    fn fresh_ids_do_not_collide_with_explicit_ones() {
        let mut g = Ddg::new();
        g.add_operation(Operation::load(MemId(7), Width::W2, VReg(9)));
        assert!(g.fresh_mem_id().0 > 7);
        assert!(g.fresh_vreg().0 > 9);
    }

    #[test]
    fn builder_recurrence_adds_loop_carried_rf() {
        let mut b = DdgBuilder::new();
        let acc = b.op(OpKind::IntAlu, &[]);
        let add = b.op(OpKind::IntAlu, &[acc]);
        b.recurrence(add, acc, 1);
        let g = b.finish();
        assert!(g.has_rf_edge(add, acc, 1));
        assert!(!g.has_zero_distance_cycle());
    }
}
