//! Operations, virtual registers and memory references.

use std::fmt;

/// A virtual register name.
///
/// Virtual registers carry register-flow values between operations. They
/// are renamed freely by passes (e.g. the fake consumers introduced by the
/// DDGT load–store synchronization read a fresh register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identity of a *memory access site*.
///
/// Replicated store instances produced by the DDGT transformation share the
/// `MemId` of the store they were cloned from: all instances compute the
/// same address stream, and only the instance scheduled in the home cluster
/// commits. Address streams in a [`crate::MemImage`] are keyed by `MemId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemId(pub u32);

impl fmt::Display for MemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 1-byte access.
    W1,
    /// 2-byte access.
    W2,
    /// 4-byte access.
    W4,
    /// 8-byte access.
    W8,
}

impl Width {
    /// The width in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }

    /// Construct from a byte count.
    ///
    /// Returns `None` for anything other than 1, 2, 4 or 8.
    #[must_use]
    pub fn from_bytes(bytes: u64) -> Option<Self> {
        match bytes {
            1 => Some(Width::W1),
            2 => Some(Width::W2),
            4 => Some(Width::W4),
            8 => Some(Width::W8),
            _ => None,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// A memory reference attached to a load or store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// The access site this operation reads or writes.
    pub mem: MemId,
    /// Access width.
    pub width: Width,
}

/// The kind of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Memory load. Produces a value after its assigned latency class.
    Load,
    /// Memory store. Consumes address and data, produces nothing.
    Store,
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Floating-point add/sub/compare.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Inter-cluster register copy, inserted by the scheduler. Occupies a
    /// register-to-register bus rather than a functional unit.
    Copy,
    /// A *fake consumer* (`add r0 = r0 + rX`) created by the DDGT
    /// load–store synchronization when the natural consumer of a load
    /// would close an impossible cycle (paper Section 3.3).
    FakeConsumer,
}

impl OpKind {
    /// Whether this operation accesses memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Whether this operation is an arithmetic (non-memory, non-copy) op.
    #[must_use]
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            OpKind::IntAlu | OpKind::IntMul | OpKind::FpAlu | OpKind::FpMul | OpKind::FakeConsumer
        )
    }

    /// The functional-unit class that executes this operation, or `None`
    /// for copies (which occupy buses, not functional units).
    #[must_use]
    pub fn fu_class(self) -> Option<FuClass> {
        match self {
            OpKind::Load | OpKind::Store => Some(FuClass::Memory),
            OpKind::IntAlu | OpKind::IntMul | OpKind::FakeConsumer => Some(FuClass::Integer),
            OpKind::FpAlu | OpKind::FpMul => Some(FuClass::Fp),
            OpKind::Copy => None,
        }
    }

    /// Default producer latency in cycles for register-flow consumers.
    ///
    /// Loads do not have a fixed latency; the scheduler assigns one of the
    /// architecture's latency classes (paper Section 2.2), so this returns
    /// the optimistic local-hit latency for them.
    #[must_use]
    pub fn base_latency(self) -> u32 {
        match self {
            OpKind::Load => 1,
            OpKind::Store => 1,
            OpKind::IntAlu | OpKind::FakeConsumer => 1,
            OpKind::IntMul => 2,
            OpKind::FpAlu => 2,
            OpKind::FpMul => 4,
            OpKind::Copy => 2,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::IntAlu => "ialu",
            OpKind::IntMul => "imul",
            OpKind::FpAlu => "falu",
            OpKind::FpMul => "fmul",
            OpKind::Copy => "copy",
            OpKind::FakeConsumer => "fake",
        };
        f.write_str(s)
    }
}

/// Functional-unit classes of the clustered VLIW datapath (paper Table 2:
/// one of each per cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Integer unit.
    Integer,
    /// Floating-point unit.
    Fp,
    /// Memory (load/store) unit.
    Memory,
}

impl FuClass {
    /// All functional-unit classes, in a fixed order.
    pub const ALL: [FuClass; 3] = [FuClass::Integer, FuClass::Fp, FuClass::Memory];

    /// Dense index of this class, matching the order of [`FuClass::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FuClass::Integer => 0,
            FuClass::Fp => 1,
            FuClass::Memory => 2,
        }
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Integer => "int",
            FuClass::Fp => "fp",
            FuClass::Memory => "mem",
        };
        f.write_str(s)
    }
}

/// One operation of a loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// What the operation does.
    pub kind: OpKind,
    /// Destination register, if the operation produces a value.
    pub dest: Option<VReg>,
    /// Source registers.
    pub srcs: Vec<VReg>,
    /// Memory reference for loads and stores.
    pub mem: Option<MemRef>,
}

impl Operation {
    /// A load from access site `mem` with width `width` into `dest`.
    #[must_use]
    pub fn load(mem: MemId, width: Width, dest: VReg) -> Self {
        Operation {
            kind: OpKind::Load,
            dest: Some(dest),
            srcs: Vec::new(),
            mem: Some(MemRef { mem, width }),
        }
    }

    /// A store to access site `mem` of width `width`, reading `srcs`.
    #[must_use]
    pub fn store(mem: MemId, width: Width, srcs: Vec<VReg>) -> Self {
        Operation {
            kind: OpKind::Store,
            dest: None,
            srcs,
            mem: Some(MemRef { mem, width }),
        }
    }

    /// An arithmetic operation.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a memory operation or a copy; use the dedicated
    /// constructors for those.
    #[must_use]
    pub fn arith(kind: OpKind, dest: Option<VReg>, srcs: Vec<VReg>) -> Self {
        assert!(
            kind.is_arith(),
            "arith() requires an arithmetic kind, got {kind}"
        );
        Operation {
            kind,
            dest,
            srcs,
            mem: None,
        }
    }

    /// Whether this operation is a memory access.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        self.kind.is_memory()
    }

    /// Whether this operation is a load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        self.kind == OpKind::Load
    }

    /// Whether this operation is a store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        self.kind == OpKind::Store
    }

    /// The memory access site, if this is a memory operation.
    #[must_use]
    pub fn mem_id(&self) -> Option<MemId> {
        self.mem.map(|m| m.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_roundtrip() {
        for w in [Width::W1, Width::W2, Width::W4, Width::W8] {
            assert_eq!(Width::from_bytes(w.bytes()), Some(w));
        }
        assert_eq!(Width::from_bytes(3), None);
        assert_eq!(Width::from_bytes(16), None);
    }

    #[test]
    fn fu_class_mapping() {
        assert_eq!(OpKind::Load.fu_class(), Some(FuClass::Memory));
        assert_eq!(OpKind::Store.fu_class(), Some(FuClass::Memory));
        assert_eq!(OpKind::IntAlu.fu_class(), Some(FuClass::Integer));
        assert_eq!(OpKind::FpMul.fu_class(), Some(FuClass::Fp));
        assert_eq!(OpKind::Copy.fu_class(), None);
        assert_eq!(OpKind::FakeConsumer.fu_class(), Some(FuClass::Integer));
    }

    #[test]
    fn fu_class_indices_are_dense_and_distinct() {
        let mut seen = [false; 3];
        for c in FuClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn operation_constructors() {
        let ld = Operation::load(MemId(3), Width::W2, VReg(7));
        assert!(ld.is_load() && ld.is_memory() && !ld.is_store());
        assert_eq!(ld.mem_id(), Some(MemId(3)));
        assert_eq!(ld.dest, Some(VReg(7)));

        let st = Operation::store(MemId(4), Width::W4, vec![VReg(7)]);
        assert!(st.is_store() && st.is_memory());
        assert_eq!(st.dest, None);

        let add = Operation::arith(OpKind::IntAlu, Some(VReg(9)), vec![VReg(7)]);
        assert!(!add.is_memory());
        assert_eq!(add.mem_id(), None);
    }

    #[test]
    #[should_panic(expected = "arithmetic kind")]
    fn arith_rejects_memory_kind() {
        let _ = Operation::arith(OpKind::Load, None, vec![]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(VReg(4).to_string(), "r4");
        assert_eq!(MemId(2).to_string(), "m2");
        assert_eq!(Width::W8.to_string(), "8B");
        assert_eq!(OpKind::FpMul.to_string(), "fmul");
        assert_eq!(FuClass::Memory.to_string(), "mem");
    }

    #[test]
    fn base_latencies_are_positive() {
        for k in [
            OpKind::Load,
            OpKind::Store,
            OpKind::IntAlu,
            OpKind::IntMul,
            OpKind::FpAlu,
            OpKind::FpMul,
            OpKind::Copy,
            OpKind::FakeConsumer,
        ] {
            assert!(k.base_latency() >= 1);
        }
    }
}
