//! Loop kernels, address streams and benchmark suites.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::ddg::Ddg;
use crate::op::MemId;

/// The sequence of addresses one memory operation touches across the
/// iterations of its loop.
///
/// Streams are the reproduction's stand-in for real program inputs: a
/// [`crate::LoopKernel`] carries one stream per memory site for the
/// *profile* input and one for the *execution* input, mirroring the paper's
/// Table 1 (different data sets for profiling and simulation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddressStream {
    /// `addr(i) = base + stride * i` (wrapping arithmetic on overflow).
    Affine {
        /// Address at iteration 0.
        base: u64,
        /// Per-iteration increment in bytes (may be negative or zero).
        stride: i64,
    },
    /// An explicit address per iteration; cycles if the loop runs longer
    /// than the table.
    Indexed(Arc<[u64]>),
}

impl AddressStream {
    /// The address accessed on iteration `iter`.
    ///
    /// # Panics
    ///
    /// Panics if an [`AddressStream::Indexed`] table is empty.
    #[must_use]
    pub fn addr_at(&self, iter: u64) -> u64 {
        match self {
            AddressStream::Affine { base, stride } => {
                base.wrapping_add_signed(stride.wrapping_mul(iter as i64))
            }
            AddressStream::Indexed(t) => {
                assert!(!t.is_empty(), "indexed address stream must not be empty");
                t[(iter % t.len() as u64) as usize]
            }
        }
    }

    /// The affine stride, if this is an affine stream.
    #[must_use]
    pub fn stride(&self) -> Option<i64> {
        match self {
            AddressStream::Affine { stride, .. } => Some(*stride),
            AddressStream::Indexed(_) => None,
        }
    }
}

/// Address streams for every memory site of a kernel, for one input set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemImage {
    streams: BTreeMap<MemId, AddressStream>,
}

impl MemImage {
    /// Creates an empty image.
    #[must_use]
    pub fn new() -> Self {
        MemImage::default()
    }

    /// Binds the stream for a memory site, returning the previous binding.
    pub fn insert(&mut self, mem: MemId, stream: AddressStream) -> Option<AddressStream> {
        self.streams.insert(mem, stream)
    }

    /// The stream bound to `mem`.
    #[must_use]
    pub fn get(&self, mem: MemId) -> Option<&AddressStream> {
        self.streams.get(&mem)
    }

    /// The address `mem` accesses on iteration `iter`.
    ///
    /// # Panics
    ///
    /// Panics if `mem` has no bound stream.
    #[must_use]
    pub fn addr(&self, mem: MemId, iter: u64) -> u64 {
        self.streams
            .get(&mem)
            .unwrap_or_else(|| panic!("no address stream bound for {mem}"))
            .addr_at(iter)
    }

    /// Iterator over `(MemId, &AddressStream)` bindings.
    pub fn iter(&self) -> impl Iterator<Item = (MemId, &AddressStream)> + '_ {
        self.streams.iter().map(|(&m, s)| (m, s))
    }

    /// Number of bound sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether no site is bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }
}

impl FromIterator<(MemId, AddressStream)> for MemImage {
    fn from_iter<T: IntoIterator<Item = (MemId, AddressStream)>>(iter: T) -> Self {
        MemImage {
            streams: iter.into_iter().collect(),
        }
    }
}

impl Extend<(MemId, AddressStream)> for MemImage {
    fn extend<T: IntoIterator<Item = (MemId, AddressStream)>>(&mut self, iter: T) {
        self.streams.extend(iter);
    }
}

/// Errors reported by [`LoopKernel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A memory operation has no address stream in one of the images.
    MissingStream {
        /// The unbound memory site.
        mem: MemId,
        /// `"profile"` or `"exec"`.
        image: &'static str,
    },
    /// The kernel iterates zero times.
    ZeroTripCount,
    /// The underlying graph is invalid.
    Graph(crate::ddg::DdgError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::MissingStream { mem, image } => {
                write!(f, "memory site {mem} has no {image} address stream")
            }
            KernelError::ZeroTripCount => write!(f, "kernel trip count is zero"),
            KernelError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// A modulo-schedulable loop: its DDG plus the dynamic metadata the
/// evaluation needs.
#[derive(Debug, Clone)]
pub struct LoopKernel {
    /// Human-readable loop name (unique within a suite).
    pub name: String,
    /// The loop body's data dependence graph.
    pub ddg: Ddg,
    /// Iterations per loop invocation.
    pub trip_count: u64,
    /// Number of times the loop is entered over the whole program run.
    pub invocations: u64,
    /// Address streams under the profiling input.
    pub profile: MemImage,
    /// Address streams under the execution input.
    pub exec: MemImage,
}

impl LoopKernel {
    /// Creates a kernel with a single invocation.
    #[must_use]
    pub fn new(name: impl Into<String>, ddg: Ddg, trip_count: u64) -> Self {
        LoopKernel {
            name: name.into(),
            ddg,
            trip_count,
            invocations: 1,
            profile: MemImage::new(),
            exec: MemImage::new(),
        }
    }

    /// Total dynamic iterations (`trip_count × invocations`).
    #[must_use]
    pub fn dyn_iterations(&self) -> u64 {
        self.trip_count.saturating_mul(self.invocations)
    }

    /// Total dynamic memory accesses executed by this loop.
    ///
    /// Replicated store instances are *not* counted separately: a replica
    /// group is a single architectural access.
    #[must_use]
    pub fn dyn_mem_accesses(&self) -> u64 {
        let sites = self
            .ddg
            .mem_nodes()
            .filter(|&n| self.ddg.replica_of(n).is_none())
            .count() as u64;
        sites.saturating_mul(self.dyn_iterations())
    }

    /// Total dynamic operations (memory and non-memory) executed.
    #[must_use]
    pub fn dyn_ops(&self) -> u64 {
        let ops = self
            .ddg
            .node_ids()
            .filter(|&n| self.ddg.replica_of(n).is_none())
            .count() as u64;
        ops.saturating_mul(self.dyn_iterations())
    }

    /// Checks that every memory operation has streams in both images and
    /// that the graph itself is valid.
    ///
    /// # Errors
    ///
    /// Returns the first missing stream or graph defect found.
    pub fn validate(&self) -> Result<(), KernelError> {
        if self.trip_count == 0 {
            return Err(KernelError::ZeroTripCount);
        }
        self.ddg.validate().map_err(KernelError::Graph)?;
        for n in self.ddg.mem_nodes() {
            let mem = self.ddg.node(n).mem_id().expect("memory node has a site");
            if self.profile.get(mem).is_none() {
                return Err(KernelError::MissingStream {
                    mem,
                    image: "profile",
                });
            }
            if self.exec.get(mem).is_none() {
                return Err(KernelError::MissingStream { mem, image: "exec" });
            }
        }
        Ok(())
    }
}

/// A benchmark: a named set of weighted loop kernels plus the cache
/// interleaving factor the paper assigns to it (Table 1: 2 or 4 bytes).
#[derive(Debug, Clone)]
pub struct Suite {
    /// Benchmark name (e.g. `"gsmdec"`).
    pub name: String,
    /// The loops that dominate the benchmark's execution.
    pub kernels: Vec<LoopKernel>,
    /// Cache interleaving factor in bytes used for this benchmark.
    pub interleave_bytes: u64,
}

impl Suite {
    /// Creates a suite.
    #[must_use]
    pub fn new(name: impl Into<String>, interleave_bytes: u64) -> Self {
        Suite {
            name: name.into(),
            kernels: Vec::new(),
            interleave_bytes,
        }
    }

    /// Total dynamic memory accesses across all kernels.
    #[must_use]
    pub fn dyn_mem_accesses(&self) -> u64 {
        self.kernels.iter().map(LoopKernel::dyn_mem_accesses).sum()
    }

    /// Total dynamic operations across all kernels.
    #[must_use]
    pub fn dyn_ops(&self) -> u64 {
        self.kernels.iter().map(LoopKernel::dyn_ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::DdgBuilder;
    use crate::op::Width;

    #[test]
    fn affine_stream_walks_stride() {
        let s = AddressStream::Affine {
            base: 1000,
            stride: 4,
        };
        assert_eq!(s.addr_at(0), 1000);
        assert_eq!(s.addr_at(3), 1012);
        assert_eq!(s.stride(), Some(4));
    }

    #[test]
    fn affine_stream_negative_stride() {
        let s = AddressStream::Affine {
            base: 1000,
            stride: -8,
        };
        assert_eq!(s.addr_at(2), 984);
    }

    #[test]
    fn indexed_stream_cycles() {
        let s = AddressStream::Indexed(Arc::from([10u64, 20, 30]));
        assert_eq!(s.addr_at(0), 10);
        assert_eq!(s.addr_at(4), 20);
        assert_eq!(s.stride(), None);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn indexed_stream_rejects_empty() {
        let s = AddressStream::Indexed(Arc::from(Vec::<u64>::new()));
        let _ = s.addr_at(0);
    }

    fn tiny_kernel() -> LoopKernel {
        let mut b = DdgBuilder::new();
        let ld = b.load(Width::W4);
        let st = b.store(Width::W4, &[ld]);
        let g = b.finish();
        let mem_ld = g.node(ld).mem_id().unwrap();
        let mem_st = g.node(st).mem_id().unwrap();
        let mut k = LoopKernel::new("tiny", g, 100);
        for img in [&mut k.profile, &mut k.exec] {
            img.insert(mem_ld, AddressStream::Affine { base: 0, stride: 4 });
            img.insert(
                mem_st,
                AddressStream::Affine {
                    base: 4096,
                    stride: 4,
                },
            );
        }
        k
    }

    #[test]
    fn kernel_validation_and_counts() {
        let k = tiny_kernel();
        assert!(k.validate().is_ok());
        assert_eq!(k.dyn_iterations(), 100);
        assert_eq!(k.dyn_mem_accesses(), 200);
        assert_eq!(k.dyn_ops(), 200);
    }

    #[test]
    fn kernel_validation_catches_missing_stream() {
        let mut k = tiny_kernel();
        let first = k.exec.iter().next().map(|(m, _)| m).unwrap();
        let mut stripped = MemImage::new();
        for (m, s) in k.exec.iter() {
            if m != first {
                stripped.insert(m, s.clone());
            }
        }
        k.exec = stripped;
        assert!(matches!(
            k.validate(),
            Err(KernelError::MissingStream { image: "exec", .. })
        ));
    }

    #[test]
    fn kernel_validation_catches_zero_trip() {
        let mut k = tiny_kernel();
        k.trip_count = 0;
        assert_eq!(k.validate(), Err(KernelError::ZeroTripCount));
    }

    #[test]
    fn replicas_do_not_inflate_dynamic_counts() {
        let mut k = tiny_kernel();
        let st = k.ddg.stores().next().unwrap();
        let before = k.dyn_mem_accesses();
        let _ = k.ddg.clone_node(st);
        assert_eq!(k.dyn_mem_accesses(), before);
    }

    #[test]
    fn suite_aggregates() {
        let mut s = Suite::new("toy", 4);
        s.kernels.push(tiny_kernel());
        s.kernels.push(tiny_kernel());
        assert_eq!(s.dyn_mem_accesses(), 400);
        assert_eq!(s.dyn_ops(), 400);
        assert_eq!(s.interleave_bytes, 4);
    }

    #[test]
    fn mem_image_collects() {
        let img: MemImage = vec![
            (MemId(0), AddressStream::Affine { base: 0, stride: 2 }),
            (
                MemId(1),
                AddressStream::Affine {
                    base: 64,
                    stride: 2,
                },
            ),
        ]
        .into_iter()
        .collect();
        assert_eq!(img.len(), 2);
        assert_eq!(img.addr(MemId(1), 1), 66);
    }
}
