//! End-to-end tests of the HTTP service: a real server on an ephemeral
//! loopback port, driven through the bundled client.
//!
//! The acceptance property of the serving layer is pinned here: warm
//! (cached) responses are **byte-identical** to cold ones, repeated
//! requests are served without recomputing any cell (verified through
//! `/stats`), and `/matrix` cells agree exactly with a direct
//! `Pipeline::run_matrix` on the same configurations.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use distvliw_arch::MachineConfig;
use distvliw_core::{Heuristic, Pipeline, Solution};
use distvliw_serve::client::{self, Client};
use distvliw_serve::engine::ServeEngine;
use distvliw_serve::event::EventConfig;
use distvliw_serve::json;
use distvliw_serve::Server;

/// Spawns a server on an ephemeral port; returns its base URL and the
/// event-loop thread (joined after `/shutdown`).
fn spawn_server() -> (String, std::thread::JoinHandle<()>) {
    spawn_server_with(EventConfig::default())
}

/// Spawns a server with explicit connection-layer sizing.
fn spawn_server_with(config: EventConfig) -> (String, std::thread::JoinHandle<()>) {
    let engine = ServeEngine::new(MachineConfig::paper_baseline(), 256);
    let server = Server::bind_with("127.0.0.1:0", engine, config).expect("bind ephemeral port");
    let base = format!("http://{}", server.local_addr());
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (base, handle)
}

fn shutdown(base: &str, handle: std::thread::JoinHandle<()>) {
    let resp = client::post(base, "/shutdown", "").expect("shutdown");
    assert_eq!(resp.status, 200);
    handle.join().expect("server thread");
}

fn stats_field(base: &str, path: &[&str]) -> u64 {
    let resp = client::get(base, "/stats").expect("stats");
    assert_eq!(resp.status, 200);
    let v = json::parse(std::str::from_utf8(&resp.body).unwrap()).expect("stats json");
    let mut cur = &v;
    for key in path {
        cur = cur.get(key).unwrap_or_else(|| panic!("missing {key}"));
    }
    cur.as_u64().expect("integer stat")
}

#[test]
fn health_stats_and_unknown_routes() {
    let (base, handle) = spawn_server();

    let resp = client::get(&base, "/healthz").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.starts_with(b"{\"status\":\"ok\"}"));

    let resp = client::get(&base, "/nope").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client::post(&base, "/fig6", "").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client::post(&base, "/matrix", "{not json").unwrap();
    assert_eq!(resp.status, 400);
    let resp = client::post(&base, "/matrix", r#"{"suites":["wat"]}"#).unwrap();
    assert_eq!(resp.status, 400);
    let resp = client::post(
        &base,
        "/matrix",
        r#"{"suites":["gsmdec"],"machine":{"interleave_bytes":16}}"#,
    )
    .unwrap();
    assert_eq!(resp.status, 400, "invalid machine must be rejected");

    // Index lists the routes.
    let resp = client::get(&base, "/").unwrap();
    assert_eq!(resp.status, 200);
    assert!(String::from_utf8_lossy(&resp.body).contains("/matrix"));

    shutdown(&base, handle);
}

#[test]
fn keep_alive_serves_sequential_requests() {
    let (base, handle) = spawn_server();
    let mut client = Client::connect(&base).unwrap();
    for _ in 0..3 {
        let resp = client.get("/healthz").unwrap();
        assert_eq!(resp.status, 200);
    }
    shutdown(&base, handle);
}

#[test]
fn matrix_is_cached_byte_identical_and_matches_run_matrix() {
    let (base, handle) = spawn_server();
    let body =
        r#"{"suites":["gsmdec","jpegenc"],"solutions":["mdc","ddgt"],"heuristics":["prefclus"]}"#;

    let cold = client::post(&base, "/matrix", body).unwrap();
    assert_eq!(cold.status, 200);
    let computed_after_cold = stats_field(&base, &["computed_cells"]);
    assert_eq!(
        computed_after_cold, 4,
        "2 suites × 2 solutions × 1 heuristic"
    );

    // Warm repeat: byte-identical, all hits, no recompute.
    let hits_before = stats_field(&base, &["cache", "hits"]);
    let warm = client::post(&base, "/matrix", body).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(
        warm.body, cold.body,
        "cached response must be byte-identical"
    );
    assert_eq!(
        stats_field(&base, &["computed_cells"]),
        computed_after_cold,
        "repeat must not recompute"
    );
    assert!(stats_field(&base, &["cache", "hits"]) >= hits_before + 4);

    // The served numbers equal a direct cold run_matrix.
    let suites = vec![
        distvliw_mediabench::suite("gsmdec").unwrap(),
        distvliw_mediabench::suite("jpegenc").unwrap(),
    ];
    let direct = Pipeline::new(MachineConfig::paper_baseline()).run_matrix(
        &suites,
        &[Solution::Mdc, Solution::Ddgt],
        &[Heuristic::PrefClus],
    );
    let served = json::parse(std::str::from_utf8(&warm.body).unwrap()).unwrap();
    let cells = served.get("cells").unwrap().as_array().unwrap();
    assert_eq!(cells.len(), direct.len());
    for (cell, direct_cell) in cells.iter().zip(&direct) {
        assert_eq!(
            cell.get("suite").unwrap().as_str().unwrap(),
            direct_cell.suite
        );
        assert_eq!(
            cell.get("solution").unwrap().as_str().unwrap(),
            direct_cell.solution.to_string()
        );
        assert_eq!(cell.get("ok").unwrap().as_bool(), Some(true));
        let direct_stats = direct_cell.stats.as_ref().expect("direct cell runs");
        assert_eq!(
            cell.get("total_cycles").unwrap().as_u64().unwrap(),
            direct_stats.total_cycles(),
            "{}/{}",
            direct_cell.suite,
            direct_cell.solution
        );
        assert_eq!(
            cell.get("comm_ops").unwrap().as_u64().unwrap(),
            direct_stats.total.comm_ops
        );
        assert_eq!(
            cell.get("kernels").unwrap().as_array().unwrap().len(),
            direct_stats.kernels.len()
        );
    }
    shutdown(&base, handle);
}

#[test]
fn figure_endpoint_repeat_is_a_pure_cache_hit() {
    let (base, handle) = spawn_server();

    // Use a machine override via /matrix first to prove distinct keys
    // coexist, then the figure path. (Keeps this test to one server.)
    let cold = client::get(&base, "/table4").unwrap();
    assert_eq!(cold.status, 200);
    let computed = stats_field(&base, &["computed_cells"]);
    assert!(computed > 0);

    let warm = client::get(&base, "/table4").unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.body, cold.body);
    assert_eq!(
        stats_field(&base, &["computed_cells"]),
        computed,
        "warm /table4 must be assembled purely from cache"
    );

    // /stats surfaces the per-cluster counters of everything computed.
    let resp = client::get(&base, "/stats").unwrap();
    let v = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let cluster = v.get("cluster").unwrap();
    let accesses = cluster.get("accesses").unwrap().as_array().unwrap();
    assert_eq!(accesses.len(), 4, "four clusters on the paper machine");
    let total: u64 = accesses.iter().map(|a| a.as_u64().unwrap()).sum();
    assert!(total > 0, "computed cells accumulate cluster usage");
    assert!(cluster.get("imbalance").unwrap().as_f64().unwrap() >= 1.0);
    assert!(cluster.get("mem_bus_grants").unwrap().as_u64().unwrap() > 0);

    shutdown(&base, handle);
}

#[test]
fn matrix_interleave_override_changes_the_run() {
    let (base, handle) = spawn_server();
    let body = |interleave: &str| {
        format!(
            r#"{{"suites":["epicdec"],"solutions":["mdc"],"heuristics":["prefclus"]{interleave}}}"#
        )
    };
    let plain = client::post(&base, "/matrix", &body("")).unwrap();
    assert_eq!(plain.status, 200);
    let overridden = client::post(
        &base,
        "/matrix",
        &body(r#","machine":{"interleave_bytes":2}"#),
    )
    .unwrap();
    assert_eq!(overridden.status, 200);

    // The override must reach the pipeline, matching a direct run on a
    // re-interleaved suite (not merely perturb the cache key).
    let mut suite = distvliw_mediabench::suite("epicdec").unwrap();
    suite.interleave_bytes = 2;
    let direct = Pipeline::new(MachineConfig::paper_baseline())
        .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
        .unwrap();
    let v = json::parse(std::str::from_utf8(&overridden.body).unwrap()).unwrap();
    let cell = &v.get("cells").unwrap().as_array().unwrap()[0];
    assert_eq!(
        cell.get("total_cycles").unwrap().as_u64().unwrap(),
        direct.total_cycles()
    );
    assert_ne!(
        overridden.body, plain.body,
        "a different interleave must change the results"
    );
    shutdown(&base, handle);
}

#[test]
fn sweep_is_cached_and_matches_a_direct_pipeline_sweep() {
    use distvliw_core::experiments::{sweep, sweep_default_suites, SweepSpec, SWEEP_SOLUTIONS};

    let (base, handle) = spawn_server();

    let cold = client::get(&base, "/sweep").unwrap();
    assert_eq!(cold.status, 200);
    let computed = stats_field(&base, &["computed_cells"]);
    assert!(computed > 0);

    // Warm repeat: byte-identical, assembled purely from cache hits.
    let hits_before = stats_field(&base, &["cache", "hits"]);
    let warm = client::get(&base, "/sweep").unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.body, cold.body, "warm /sweep must be byte-identical");
    assert_eq!(
        stats_field(&base, &["computed_cells"]),
        computed,
        "warm /sweep must not recompute any cell"
    );
    assert_eq!(
        stats_field(&base, &["cache", "hits"]),
        hits_before + computed,
        "every cell of the warm sweep is a cache hit"
    );

    // The served rows equal a direct (uncached) pipeline sweep.
    let spec = SweepSpec::default();
    let direct = sweep(
        &MachineConfig::paper_baseline(),
        &sweep_default_suites(),
        &spec,
    )
    .unwrap()
    .rows;
    let served = json::parse(std::str::from_utf8(&warm.body).unwrap()).unwrap();
    let rows = served.get("rows").unwrap().as_array().unwrap();
    assert_eq!(
        rows.len(),
        spec.cluster_counts.len() * spec.mem_buses.len() * SWEEP_SOLUTIONS.len()
    );
    assert_eq!(rows.len(), direct.len());
    for (row, want) in rows.iter().zip(&direct) {
        let ctx = format!(
            "{} clusters, {}@{} buses, {}",
            want.n_clusters, want.mem_buses.count, want.mem_buses.latency, want.solution
        );
        assert_eq!(
            row.get("n_clusters").unwrap().as_u64().unwrap(),
            want.n_clusters as u64,
            "{ctx}"
        );
        assert_eq!(
            row.get("solution").unwrap().as_str().unwrap(),
            want.solution.to_string(),
            "{ctx}"
        );
        assert_eq!(
            row.get("total_cycles").unwrap().as_u64().unwrap(),
            want.total_cycles,
            "{ctx}"
        );
        assert_eq!(
            row.get("bus_busy_cycles").unwrap().as_u64().unwrap(),
            want.bus_busy_cycles,
            "{ctx}"
        );
        assert_eq!(
            row.get("violations").unwrap().as_u64().unwrap(),
            want.violations,
            "{ctx}"
        );
        assert_eq!(
            row.get("imbalance").unwrap().as_f64().unwrap(),
            want.imbalance(),
            "{ctx}"
        );
        let shares = row.get("accesses_by_cluster").unwrap().as_array().unwrap();
        assert_eq!(shares.len(), want.n_clusters, "{ctx}");
        for (c, share) in shares.iter().enumerate() {
            assert_eq!(
                share.as_u64().unwrap(),
                want.cluster.accesses_of(c),
                "{ctx} cluster {c}"
            );
        }
    }
    shutdown(&base, handle);
}

#[test]
fn matrix_accepts_bundled_trace_suites() {
    let (base, handle) = spawn_server();
    let body =
        r#"{"suites":["fir8","ptrchase"],"solutions":["free","mdc"],"heuristics":["prefclus"]}"#;
    let resp = client::post(&base, "/matrix", body).unwrap();
    assert_eq!(resp.status, 200);
    let v = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let cells = v.get("cells").unwrap().as_array().unwrap();
    assert_eq!(cells.len(), 4);
    for cell in cells {
        assert_eq!(cell.get("ok").unwrap().as_bool(), Some(true));
        assert!(cell.get("total_cycles").unwrap().as_u64().unwrap() > 0);
    }
    // Direct parity for one trace cell.
    let suite = distvliw_mediabench::trace_suites()
        .into_iter()
        .find(|s| s.name == "fir8")
        .unwrap();
    let direct = Pipeline::new(MachineConfig::paper_baseline())
        .run_suite(&suite, Solution::Free, Heuristic::PrefClus)
        .unwrap();
    assert_eq!(
        cells[0].get("total_cycles").unwrap().as_u64().unwrap(),
        direct.total_cycles()
    );
    shutdown(&base, handle);
}

/// Collects `(name, dur_us)` over a `?trace=1` span tree.
fn walk_spans(span: &json::Json, out: &mut Vec<(String, u64)>) {
    let name = span.get("name").unwrap().as_str().unwrap().to_string();
    let dur = span.get("dur_us").unwrap().as_u64().unwrap();
    out.push((name, dur));
    if let Some(children) = span.get("children").and_then(json::Json::as_array) {
        for child in children {
            walk_spans(child, out);
        }
    }
}

#[test]
fn trace_query_reports_phase_spans_and_cache_hits_skip_compute() {
    let (base, handle) = spawn_server();

    // Cold: the tree must show the compute phases under the request
    // root, and the wrapped response must equal the plain one.
    let cold = client::post(
        &base,
        "/matrix?trace=1",
        r#"{"suites":["gsmdec"],"solutions":["mdc"],"heuristics":["prefclus"]}"#,
    )
    .unwrap();
    assert_eq!(cold.status, 200);
    let v = json::parse(std::str::from_utf8(&cold.body).unwrap()).unwrap();
    assert!(v.get("dropped_spans").unwrap().as_u64().unwrap() == 0);
    let tree = v.get("trace").unwrap().as_array().unwrap();
    let mut spans = Vec::new();
    for root in tree {
        walk_spans(root, &mut spans);
    }
    let total = |name: &str| -> u64 {
        spans
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .sum()
    };
    let count = |name: &str| spans.iter().filter(|(n, _)| n == name).count();
    assert_eq!(count("request"), 1, "exactly one root request span");
    assert_eq!(count("parse"), 1);
    assert!(count("cache_lookup") >= 1);
    assert!(count("compile") >= 1, "cold run must compile");
    assert!(count("sim") >= 1, "cold run must simulate");
    assert!(total("compile") > 0 && total("sim") > 0);

    // Warm repeat of the same body: pure cache hit — zero compile/sim
    // time, and the inner response byte-identical to the cold inner.
    let warm = client::post(
        &base,
        "/matrix?trace=1",
        r#"{"suites":["gsmdec"],"solutions":["mdc"],"heuristics":["prefclus"]}"#,
    )
    .unwrap();
    assert_eq!(warm.status, 200);
    let w = json::parse(std::str::from_utf8(&warm.body).unwrap()).unwrap();
    let tree = w.get("trace").unwrap().as_array().unwrap();
    let mut spans = Vec::new();
    for root in tree {
        walk_spans(root, &mut spans);
    }
    assert!(
        !spans.iter().any(|(n, _)| n == "compile" || n == "sim"),
        "cache hit must not compile or simulate, got {spans:?}"
    );
    assert!(
        spans
            .iter()
            .any(|(n, _)| n == "cache_lookup" || n == "flight_wait"),
        "cache hit must record its lookup"
    );
    assert_eq!(
        v.get("response").unwrap().render(),
        w.get("response").unwrap().render(),
        "traced warm response must wrap the identical inner body"
    );

    // Without ?trace=1 the body is NOT wrapped.
    let plain = client::post(
        &base,
        "/matrix",
        r#"{"suites":["gsmdec"],"solutions":["mdc"],"heuristics":["prefclus"]}"#,
    )
    .unwrap();
    let p = json::parse(std::str::from_utf8(&plain.body).unwrap()).unwrap();
    assert!(p.get("trace").is_none());
    assert!(p.get("cells").is_some());

    shutdown(&base, handle);
}

#[test]
fn metrics_exposition_has_families_from_every_layer() {
    let (base, handle) = spawn_server();

    // Drive one computing request so sched/sim counters exist.
    let resp = client::post(
        &base,
        "/matrix",
        r#"{"suites":["fir8"],"solutions":["mdc"],"heuristics":["prefclus"]}"#,
    )
    .unwrap();
    assert_eq!(resp.status, 200);

    let resp = client::get(&base, "/metrics").unwrap();
    assert_eq!(resp.status, 200);
    let text = std::str::from_utf8(&resp.body).unwrap();

    let mut families = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            families.push(parts.next().unwrap().to_string());
            assert!(
                matches!(parts.next(), Some("counter" | "gauge" | "histogram")),
                "bad TYPE line: {line}"
            );
        } else if !line.starts_with('#') && !line.is_empty() {
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample line: {line}"
            );
        }
    }
    for required in [
        // serve layer
        "serve_http_requests_total",
        "serve_http_request_duration_us",
        "serve_cache_hits_total",
        "serve_cache_misses_total",
        "serve_cache_entries",
        "serve_cells_computed_total",
        "serve_uptime_seconds",
        // sched layer
        "sched_schedules_total",
        "sched_iis_tried_total",
        "sched_schedule_duration_us",
        // sim layer
        "sim_kernels_total",
        "sim_cycles_total",
        "sim_kernel_duration_us",
    ] {
        assert!(
            families.iter().any(|f| f == required),
            "missing family {required}; have {families:?}"
        );
    }
    assert!(families.len() >= 15, "want >=15 families, got {families:?}");

    // The snapshot is deterministic: two scrapes expose the same
    // families in the same order (sample values may advance).
    let again = client::get(&base, "/metrics").unwrap();
    let families_again: Vec<&str> = std::str::from_utf8(&again.body)
        .unwrap()
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|r| r.split_whitespace().next())
        .collect();
    assert_eq!(families, families_again);

    // GET only.
    let resp = client::post(&base, "/metrics", "").unwrap();
    assert_eq!(resp.status, 405);

    shutdown(&base, handle);
}

#[test]
fn debug_trace_returns_recent_spans() {
    let (base, handle) = spawn_server();

    for _ in 0..3 {
        let resp = client::get(&base, "/healthz").unwrap();
        assert_eq!(resp.status, 200);
    }
    let resp = client::get(&base, "/debug/trace?n=8").unwrap();
    assert_eq!(resp.status, 200);
    let v = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let spans = v.get("spans").unwrap().as_array().unwrap();
    assert!(!spans.is_empty() && spans.len() <= 8);
    assert_eq!(
        v.get("count").unwrap().as_u64().unwrap(),
        spans.len() as u64
    );
    for span in spans {
        assert!(span.get("id").unwrap().as_u64().unwrap() > 0);
        assert!(span.get("name").unwrap().as_str().is_some());
        assert!(span.get("start_us").unwrap().as_u64().is_some());
    }
    // The request spans recorded by the pings above are visible.
    let has_request = spans
        .iter()
        .any(|s| s.get("name").unwrap().as_str() == Some("request"));
    assert!(has_request, "global rings must hold the request spans");

    shutdown(&base, handle);
}

#[test]
fn stats_reports_uptime_build_and_counters() {
    let (base, handle) = spawn_server();

    let resp = client::get(&base, "/stats").unwrap();
    assert_eq!(resp.status, 200);
    let v = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert!(v.get("uptime_secs").unwrap().as_u64().is_some());
    let build = v.get("build").unwrap();
    assert_eq!(
        build.get("version").unwrap().as_str(),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(build.get("git").unwrap().as_str().is_some());
    // The registry snapshot is an object of integer counters.
    let counters = v.get("counters").unwrap();
    assert!(
        counters
            .get("serve_connections_total")
            .and_then(json::Json::as_u64)
            .is_some_and(|n| n >= 1),
        "this very request rode an accepted connection"
    );

    shutdown(&base, handle);
}

#[test]
fn connection_cap_answers_503_with_retry_after_and_bounded_threads() {
    let (base, handle) = spawn_server_with(EventConfig {
        workers: 2,
        max_conns: 4,
        queue_depth: 8,
    });

    // Fill the connection table with admitted keep-alive clients; a
    // completed request on each proves the server has accepted all
    // four (connect alone only reaches the backlog).
    let mut admitted: Vec<Client> = (0..4).map(|_| Client::connect(&base).unwrap()).collect();
    let reference = admitted[0].get("/table3").unwrap();
    assert_eq!(reference.status, 200);
    for conn in admitted.iter_mut().skip(1) {
        let resp = conn.get("/table3").unwrap();
        assert_eq!(resp.status, 200);
    }

    let threads_before = distvliw_obs::process_threads();

    // Every connection beyond the cap is answered an immediate 503
    // with retry-after and closed — without reading a request.
    let host = client::host_of(&base);
    for _ in 0..8 {
        let mut raw = TcpStream::connect(&host).unwrap();
        let mut bytes = Vec::new();
        raw.read_to_end(&mut bytes).unwrap();
        let text = String::from_utf8_lossy(&bytes);
        assert!(
            text.starts_with("HTTP/1.1 503 "),
            "overflow connection must be answered 503, got: {text}"
        );
        assert!(text.contains("retry-after: 1"), "{text}");
        assert!(text.contains("connection: close"), "{text}");
    }

    // The admitted connections are untouched by the overflow and keep
    // serving byte-identical responses.
    for conn in &mut admitted {
        let resp = conn.get("/table3").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers, reference.headers);
        assert_eq!(resp.body, reference.body);
    }

    // No thread-per-connection: 8 overflow + 4 admitted connections
    // must not have grown the process thread budget (loop + workers
    // are fixed at startup; a small tolerance absorbs unrelated churn
    // from tests running in parallel in this process).
    let threads_after = distvliw_obs::process_threads();
    assert!(
        threads_after <= threads_before + 4,
        "thread count grew with connections: {threads_before} -> {threads_after}"
    );

    // Free the table before /shutdown needs a fresh connection, and
    // give the loop a beat to observe the closes.
    drop(admitted);
    let mut ok = false;
    for _ in 0..100 {
        if let Ok(resp) = client::post(&base, "/shutdown", "") {
            if resp.status == 200 {
                ok = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(ok, "shutdown must be admitted once the table drains");
    handle.join().expect("server thread");
}

#[test]
fn queue_overflow_is_answered_503_and_the_connection_survives() {
    let (base, handle) = spawn_server_with(EventConfig {
        workers: 1,
        max_conns: 64,
        queue_depth: 1,
    });

    // Occupy the single worker with a slow cold sweep and the single
    // queue slot with a cold matrix cell.
    let base_a = base.clone();
    let slow = std::thread::spawn(move || client::get(&base_a, "/sweep").unwrap());
    std::thread::sleep(Duration::from_millis(200));
    let base_b = base.clone();
    let queued = std::thread::spawn(move || {
        client::post(
            &base_b,
            "/matrix",
            r#"{"suites":["gsmdec"],"solutions":["mdc"],"heuristics":["prefclus"]}"#,
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(200));

    // The next request finds the queue full: 503, retry-after, and the
    // connection stays usable for the retry.
    let mut probe = Client::connect(&base).unwrap();
    let resp = probe.get("/healthz").unwrap();
    if resp.status == 503 {
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(
            !resp.closes(),
            "queue-full rejection must keep the connection open"
        );
        let mut ok = false;
        for _ in 0..100 {
            std::thread::sleep(Duration::from_millis(100));
            let retry = probe.get("/healthz").unwrap();
            if retry.status == 200 {
                ok = true;
                break;
            }
            assert_eq!(retry.status, 503, "only overload 503s are acceptable");
        }
        assert!(ok, "the probe must eventually be admitted");
    } else {
        // The compute won the race and drained the queue first; the
        // request must then simply have succeeded.
        assert_eq!(resp.status, 200);
    }

    assert_eq!(slow.join().expect("sweep client").status, 200);
    assert_eq!(queued.join().expect("matrix client").status, 200);
    shutdown(&base, handle);
}

/// Occurrences of `needle` in `haystack` (responses are counted by
/// their status-line prefix; the JSON bodies never contain it).
fn count_occurrences(haystack: &[u8], needle: &[u8]) -> usize {
    haystack
        .windows(needle.len())
        .filter(|w| *w == needle)
        .count()
}

#[test]
fn pipelined_inline_responses_are_answered_iteratively() {
    let (base, handle) = spawn_server_with(EventConfig {
        workers: 1,
        max_conns: 64,
        queue_depth: 1,
    });

    // Occupy the single worker with a slow cold sweep and the single
    // queue slot with a cold matrix cell, so pipelined requests are
    // answered inline (queue-full 503) by the loop thread itself.
    let base_a = base.clone();
    let slow = std::thread::spawn(move || client::get(&base_a, "/sweep").unwrap());
    std::thread::sleep(Duration::from_millis(200));
    let base_b = base.clone();
    let queued = std::thread::spawn(move || {
        client::post(
            &base_b,
            "/matrix",
            r#"{"suites":["gsmdec"],"solutions":["mdc"],"heuristics":["prefclus"]}"#,
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(200));

    // One burst of pipelined keep-alive requests. The loop must answer
    // every one of them — iteratively, not one stack frame per
    // buffered request (the old recursive flush→dispatch chain grew
    // the loop thread's stack with each inline answer).
    const N: usize = 1000;
    let host = client::host_of(&base);
    let mut raw = TcpStream::connect(&host).unwrap();
    let mut burst = Vec::new();
    for _ in 0..N {
        burst.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
    }
    raw.write_all(&burst).unwrap();

    raw.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    while count_occurrences(&bytes, b"HTTP/1.1 ") < N {
        let n = raw.read(&mut chunk).unwrap();
        assert!(
            n > 0,
            "server closed the connection after {} of {N} responses",
            count_occurrences(&bytes, b"HTTP/1.1 ")
        );
        bytes.extend_from_slice(&chunk[..n]);
    }
    let ok = count_occurrences(&bytes, b"HTTP/1.1 200 ");
    let rejected = count_occurrences(&bytes, b"HTTP/1.1 503 ");
    assert_eq!(
        ok + rejected,
        N,
        "every pipelined request must be answered 200 or overload-503"
    );
    assert_eq!(
        count_occurrences(&bytes, b"connection: close"),
        0,
        "inline answers on a keep-alive connection must not close it"
    );

    drop(raw);
    assert_eq!(slow.join().expect("sweep client").status, 200);
    assert_eq!(queued.join().expect("matrix client").status, 200);
    shutdown(&base, handle);
}

#[test]
fn bare_crlf_stream_is_skipped_before_a_real_request() {
    let (base, handle) = spawn_server();
    let host = client::host_of(&base);

    // Stray blank lines between requests are skipped per RFC 7230
    // §3.5 — including a large run split across many reads (the event
    // loop drains them instead of buffering them for the whole
    // request window).
    let mut raw = TcpStream::connect(&host).unwrap();
    for _ in 0..16 {
        raw.write_all(&b"\r\n".repeat(2048)).unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    raw.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let mut bytes = Vec::new();
    raw.read_to_end(&mut bytes).unwrap();
    let text = String::from_utf8_lossy(&bytes);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");

    shutdown(&base, handle);
}

#[test]
fn http_1_0_and_chunked_requests_are_answered_correctly_end_to_end() {
    let (base, handle) = spawn_server();
    let host = client::host_of(&base);

    // An HTTP/1.0 request without `Connection: keep-alive` is answered
    // and the connection closed (it used to hang until the idle reap).
    let mut raw = TcpStream::connect(&host).unwrap();
    raw.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let mut bytes = Vec::new();
    raw.read_to_end(&mut bytes).unwrap();
    let text = String::from_utf8_lossy(&bytes);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(text.contains("connection: close"), "{text}");

    // `Connection: keep-alive, close` must close per RFC 7230 §6.1.
    let mut raw = TcpStream::connect(&host).unwrap();
    raw.write_all(b"GET /healthz HTTP/1.1\r\nconnection: keep-alive, close\r\n\r\n")
        .unwrap();
    let mut bytes = Vec::new();
    raw.read_to_end(&mut bytes).unwrap();
    let text = String::from_utf8_lossy(&bytes);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(text.contains("connection: close"), "{text}");

    // Chunked request bodies are rejected up front with 501.
    let mut raw = TcpStream::connect(&host).unwrap();
    raw.write_all(
        b"POST /matrix HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n4\r\nwat!\r\n0\r\n\r\n",
    )
    .unwrap();
    let mut bytes = Vec::new();
    raw.read_to_end(&mut bytes).unwrap();
    let text = String::from_utf8_lossy(&bytes);
    assert!(text.starts_with("HTTP/1.1 501 "), "{text}");
    assert!(text.contains("connection: close"), "{text}");

    shutdown(&base, handle);
}

#[test]
fn fig6_fractions_match_experiments_module() {
    // The serve-side figure assembly must agree with the reference
    // implementation in distvliw_core::experiments. Comparing one
    // benchmark keeps the test fast.
    let (base, handle) = spawn_server();
    let body =
        r#"{"suites":["pgpdec"],"solutions":["free","mdc","ddgt"],"heuristics":["prefclus"]}"#;
    let resp = client::post(&base, "/matrix", body).unwrap();
    assert_eq!(resp.status, 200);
    let v = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let cells = v.get("cells").unwrap().as_array().unwrap();

    let pipeline = Pipeline::new(MachineConfig::paper_baseline());
    let suite = distvliw_mediabench::suite("pgpdec").unwrap();
    for (cell, solution) in cells
        .iter()
        .zip([Solution::Free, Solution::Mdc, Solution::Ddgt])
    {
        let direct = pipeline
            .run_suite(&suite, solution, Heuristic::PrefClus)
            .unwrap();
        assert_eq!(
            cell.get("local_hit_ratio").unwrap().as_f64().unwrap(),
            direct.local_hit_ratio(),
            "{solution}"
        );
        assert_eq!(
            cell.get("imbalance").unwrap().as_f64().unwrap(),
            direct.cluster.imbalance(),
            "{solution}"
        );
    }
    shutdown(&base, handle);
}
