//! Property tests of the persistence layer's recovery and round-trip
//! guarantees.
//!
//! Corruption properties: for *any* truncation point, *any* single bit
//! flip, and stale-era or duplicate records, loading a store must never
//! panic, must never surface a value that was not written, and must
//! report exactly what it recovered versus discarded. (FNV-1a's
//! per-byte xor-then-multiply steps are bijective on the 64-bit state,
//! so a single bit flip anywhere in a hashed frame always changes the
//! checksum — detection is certain, not probabilistic.)
//!
//! Round-trip property: an arbitrary insert/get/evict/compact sequence
//! driven through the same append-on-insert / compact-on-eviction
//! protocol the engine uses, then decoded and replayed into a fresh
//! cache, restores exactly the live key→value map — the LRU-survivor
//! set — of an independently maintained model.

use std::collections::HashMap;

use distvliw_core::cachekey::CacheKey;
use distvliw_serve::cache::ResultCache;
use distvliw_serve::persist::{decode_store, encode_header, encode_record, era_bytes, KIND_CELLS};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Arbitrary small records: keys collide often (exercising last-wins),
/// values vary in length (exercising framing).
fn arb_records() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    pvec((pvec(any::<u8>(), 0..6), pvec(any::<u8>(), 0..20)), 0..12)
}

/// A store image holding `records` under the current era.
fn store_bytes(records: &[(Vec<u8>, Vec<u8>)], era: &[u8]) -> Vec<u8> {
    let mut bytes = encode_header(KIND_CELLS, era);
    for (k, v) in records {
        bytes.extend_from_slice(&encode_record(k, v));
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncation_at_any_offset_recovers_a_clean_prefix(
        records in arb_records(),
        cut_seed in any::<u64>(),
    ) {
        let era = era_bytes();
        let full = store_bytes(&records, &era);
        let cut = (cut_seed as usize) % (full.len() + 1);
        let (recovered, report) = decode_store(&full[..cut], KIND_CELLS, &era);

        // Never a record that wasn't written, in order, values intact.
        prop_assert!(recovered.len() <= records.len());
        for (got, want) in recovered.iter().zip(&records) {
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(report.recovered, recovered.len() as u64);
        if cut == 0 {
            // An empty file is a fresh store, not a damaged one.
            prop_assert!(!report.stale);
            prop_assert_eq!(report.discarded_bytes, 0);
        } else if report.stale {
            // The cut landed inside the header: nothing is trusted.
            prop_assert!(cut < store_bytes(&[], &era).len());
            prop_assert_eq!(recovered.len(), 0);
        } else {
            // Recovered + discarded account for every byte of the cut
            // image: the recovered prefix re-encodes to exactly the
            // bytes before the torn tail.
            let prefix = store_bytes(&recovered, &era);
            prop_assert_eq!(report.discarded_bytes as usize, cut - prefix.len());
            prop_assert_eq!(&full[..prefix.len()], &prefix[..]);
        }
    }

    #[test]
    fn a_single_bit_flip_never_yields_a_wrong_value(
        records in arb_records(),
        flip_seed in any::<u64>(),
    ) {
        let era = era_bytes();
        let mut bytes = store_bytes(&records, &era);
        if bytes.is_empty() {
            return Ok(());
        }
        let bit = (flip_seed as usize) % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);

        let (recovered, report) = decode_store(&bytes, KIND_CELLS, &era);
        if report.stale {
            // Header flip: the whole store is rejected.
            prop_assert_eq!(recovered.len(), 0);
            prop_assert_eq!(report.discarded_bytes, bytes.len() as u64);
        } else {
            // Record flip: the checksum catches it; everything before
            // the damaged frame is intact, nothing after survives —
            // and above all, no recovered value differs from what was
            // written.
            prop_assert!(recovered.len() < records.len().max(1));
            for (got, want) in recovered.iter().zip(&records) {
                prop_assert_eq!(got, want);
            }
            prop_assert!(report.discarded_bytes > 0);
        }
    }

    #[test]
    fn stale_era_stores_are_counted_and_discarded(records in arb_records()) {
        let era = era_bytes();
        let mut old_era = era;
        old_era[0] ^= 0x5a;
        let bytes = store_bytes(&records, &old_era);

        let (recovered, report) = decode_store(&bytes, KIND_CELLS, &era);
        prop_assert!(recovered.is_empty(), "stale records must never be trusted");
        prop_assert!(report.stale);
        prop_assert_eq!(report.discarded_records, records.len() as u64);
        prop_assert_eq!(report.discarded_bytes, bytes.len() as u64);
        prop_assert_eq!(report.recovered, 0);
    }

    #[test]
    fn duplicate_records_replay_last_wins(
        key in pvec(any::<u8>(), 1..4),
        values in pvec(pvec(any::<u8>(), 0..8), 1..6),
    ) {
        let era = era_bytes();
        let records: Vec<(Vec<u8>, Vec<u8>)> =
            values.iter().map(|v| (key.clone(), v.clone())).collect();
        let (recovered, report) = decode_store(&store_bytes(&records, &era), KIND_CELLS, &era);
        prop_assert_eq!(report.recovered, values.len() as u64);
        // File-order replay with last-wins lands on the final value.
        let mut map: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for (k, v) in recovered {
            map.insert(k, v);
        }
        prop_assert_eq!(map.len(), 1);
        prop_assert_eq!(&map[&key], values.last().unwrap());
    }

    #[test]
    fn insert_evict_compact_round_trips_against_a_model(
        capacity in 1usize..5,
        ops in pvec((any::<bool>(), any::<u8>(), any::<u8>()), 0..40),
    ) {
        let era = era_bytes();
        // The engine's protocol, driven in miniature: a bounded LRU
        // cache whose log gets one appended record per non-evicting
        // insert and an atomic compact (LRU-first snapshot) whenever an
        // insert evicts.
        let mut cache: ResultCache<Vec<u8>> = ResultCache::new(capacity);
        let mut log = store_bytes(&[], &era);
        // Reference model: the live key→value map, maintained naively.
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();

        for (is_get, key_byte, val_byte) in ops {
            let key_bytes = vec![key_byte % 8];
            let key = CacheKey::from_bytes(key_bytes.clone());
            if is_get {
                // Gets shuffle recency; recency drift between
                // compactions is invisible to the live-set guarantee.
                let cached = cache.get(&key);
                prop_assert_eq!(cached, model.get(&key_bytes).cloned());
                continue;
            }
            let value = vec![val_byte; 3];
            let evicted = cache.insert(key.clone(), value.clone());
            model.insert(key_bytes, value.clone());
            if let Some(victim) = evicted {
                prop_assert!(model.remove(victim.bytes()).is_some());
                // Compact: the log becomes an exact LRU-first snapshot.
                log = store_bytes(
                    &cache
                        .entries_by_recency()
                        .iter()
                        .map(|(k, v)| (k.bytes().to_vec(), v.clone()))
                        .collect::<Vec<_>>(),
                    &era,
                );
            } else {
                log.extend_from_slice(&encode_record(key.bytes(), &value));
            }
        }

        // Reload: decode, replay in file order into a fresh cache.
        let (records, report) = decode_store(&log, KIND_CELLS, &era);
        prop_assert!(!report.stale);
        prop_assert_eq!(report.discarded_bytes, 0);
        let mut restored: ResultCache<Vec<u8>> = ResultCache::new(capacity);
        for (k, v) in records {
            restored.preload(CacheKey::from_bytes(k), v);
        }

        // The restored cache holds exactly the model's live map: same
        // LRU-survivor key set, same values. (Replay can never
        // overflow capacity: the log is a snapshot of at most
        // `capacity` live entries plus appends that did not evict.)
        prop_assert_eq!(restored.len(), model.len());
        for (k, v) in &model {
            let got = restored.get(&CacheKey::from_bytes(k.clone()));
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }
}
