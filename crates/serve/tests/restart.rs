//! Kill-and-restart test of the durable warm state: a real `serve`
//! daemon process on an ephemeral port with a temp `--state-dir`,
//! warmed through HTTP, killed with SIGKILL (no shutdown hook runs),
//! and rebooted on the same state dir.
//!
//! The acceptance properties pinned here:
//!
//! - the first post-restart `/fig7` and `/sweep` responses are served
//!   entirely from the restored cache — zero cells computed — and are
//!   **byte-identical** to the pre-kill responses;
//! - nothing is discarded at recovery (every append is crash-safe);
//! - a post-restart cell that *does* schedule (a fresh cell key via a
//!   simulation-only machine override) resumes its II search from the
//!   persisted seed store, observable as a nonzero `seeded_kernels`;
//! - a stale-era state dir is discarded wholesale, not trusted.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use distvliw_serve::client;
use distvliw_serve::json::{self, Json};

/// A unique temp dir per test, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("distvliw-restart-{tag}-{}", std::process::id()));
        // A leftover from a previous crashed run must not leak state in.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp state dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A `serve` child process; killed (SIGKILL) on drop unless already
/// waited for.
struct Daemon {
    child: Child,
    base: String,
}

impl Daemon {
    /// Spawns the real `serve` binary on `addr` with the given state
    /// dir and waits until `/healthz` answers.
    fn spawn(addr: &str, state_dir: &Path) -> Daemon {
        let child = Command::new(env!("CARGO_BIN_EXE_serve"))
            .args(["--addr", addr, "--state-dir"])
            .arg(state_dir)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn serve daemon");
        let daemon = Daemon {
            child,
            base: format!("http://{addr}"),
        };
        for _ in 0..200 {
            if let Ok(resp) = client::get(&daemon.base, "/healthz") {
                assert_eq!(resp.status, 200);
                return daemon;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("daemon did not become healthy within 10s");
    }

    /// SIGKILL — the process gets no chance to flush or compact.
    fn kill(mut self) {
        self.child.kill().expect("kill daemon");
        self.child.wait().expect("reap daemon");
    }

    /// Clean shutdown via `POST /shutdown` (runs the flush hook).
    fn shutdown(mut self) {
        let resp = client::post(&self.base, "/shutdown", "").expect("shutdown");
        assert_eq!(resp.status, 200);
        let status = self.child.wait().expect("reap daemon");
        assert!(status.success(), "clean shutdown exits zero");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Picks an ephemeral loopback address by binding port 0 and releasing
/// it (a small race with other tests, which is why each test uses its
/// own pick).
fn free_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
    let addr = listener.local_addr().expect("probe addr");
    addr.to_string()
}

fn get_ok(base: &str, path: &str) -> Vec<u8> {
    let resp = client::get(base, path).unwrap_or_else(|e| panic!("GET {path}: {e}"));
    assert_eq!(resp.status, 200, "GET {path}");
    resp.body
}

fn stats(base: &str) -> Json {
    let body = get_ok(base, "/stats");
    json::parse(std::str::from_utf8(&body).expect("utf-8 stats")).expect("stats json")
}

fn field(v: &Json, path: &[&str]) -> u64 {
    let mut cur = v;
    for key in path {
        cur = cur.get(key).unwrap_or_else(|| panic!("missing {key}"));
    }
    cur.as_u64().expect("integer stat")
}

#[test]
fn sigkilled_daemon_restarts_with_warm_cache_and_seeds() {
    let state = TempDir::new("warm");
    let addr = free_addr();

    // --- First life: warm the cache over HTTP, then SIGKILL. ---
    let daemon = Daemon::spawn(&addr, state.path());
    let fig7_cold = get_ok(&daemon.base, "/fig7");
    let sweep_cold = get_ok(&daemon.base, "/sweep");
    let s = stats(&daemon.base);
    let computed_cold = field(&s, &["computed_cells"]);
    assert!(computed_cold > 0, "first life computed cells");
    assert!(
        field(&s, &["persist", "appended_records"]) > 0,
        "inserts reach the log as they happen, not at shutdown"
    );
    daemon.kill();

    // --- Second life, same state dir: everything is already there. ---
    let addr = free_addr();
    let daemon = Daemon::spawn(&addr, state.path());
    let s = stats(&daemon.base);
    assert!(
        field(&s, &["persist", "loaded_cells"]) > 0,
        "cells restored at boot"
    );
    assert!(
        field(&s, &["persist", "loaded_seeds"]) > 0,
        "II seeds restored at boot"
    );
    assert_eq!(
        field(&s, &["persist", "discarded_bytes"]),
        0,
        "every record survived the SIGKILL (appends are crash-safe)"
    );
    assert_eq!(field(&s, &["persist", "stale_stores"]), 0);

    let fig7_warm = get_ok(&daemon.base, "/fig7");
    assert_eq!(
        fig7_warm, fig7_cold,
        "first post-restart /fig7 is byte-identical to the pre-kill response"
    );
    let sweep_warm = get_ok(&daemon.base, "/sweep");
    assert_eq!(
        sweep_warm, sweep_cold,
        "first post-restart /sweep is byte-identical to the pre-kill response"
    );
    let s = stats(&daemon.base);
    assert_eq!(
        field(&s, &["computed_cells"]),
        0,
        "warm boot serves both figures without recomputing a single cell"
    );
    assert!(field(&s, &["cache", "hits"]) > 0);

    // A fresh cell key (memory-bus count is a simulation-only override,
    // so the cache misses) with an unchanged scheduler projection: the
    // II search must resume from the *persisted* seeds. jpegenc/DDGT is
    // part of the /fig7 grid that warmed the store and schedules above
    // MII + slack, which makes the resumption observable.
    let resp = client::post(
        &daemon.base,
        "/matrix",
        r#"{"suites":["jpegenc"],"solutions":["ddgt"],"heuristics":["prefclus"],
            "machine":{"mem_buses":{"count":3}}}"#,
    )
    .expect("matrix");
    assert_eq!(resp.status, 200);
    let s = stats(&daemon.base);
    assert_eq!(
        field(&s, &["computed_cells"]),
        1,
        "the override is a fresh cell"
    );
    assert!(
        field(&s, &["seeded_kernels"]) > 0,
        "the fresh cell's II search resumed from a persisted seed (seeded_at set)"
    );

    daemon.shutdown();
}

#[test]
fn clean_shutdown_then_restart_preserves_recency_and_state() {
    let state = TempDir::new("clean");
    let addr = free_addr();

    let daemon = Daemon::spawn(&addr, state.path());
    let body = r#"{"suites":["gsmdec"],"solutions":["mdc"],"heuristics":["prefclus"]}"#;
    let cold = client::post(&daemon.base, "/matrix", body).expect("matrix");
    assert_eq!(cold.status, 200);
    daemon.shutdown();

    // The shutdown flush compacts: the log is one clean snapshot.
    let addr = free_addr();
    let daemon = Daemon::spawn(&addr, state.path());
    let s = stats(&daemon.base);
    assert_eq!(field(&s, &["persist", "loaded_cells"]), 1);
    assert_eq!(field(&s, &["persist", "discarded_records"]), 0);
    assert_eq!(field(&s, &["persist", "discarded_bytes"]), 0);
    let warm = client::post(&daemon.base, "/matrix", body).expect("matrix");
    assert_eq!(warm.body, cold.body, "restored cell renders byte-identical");
    assert_eq!(field(&stats(&daemon.base), &["computed_cells"]), 0);
    daemon.shutdown();
}

#[test]
fn stale_era_state_is_discarded_not_trusted() {
    let state = TempDir::new("stale");
    let addr = free_addr();

    let daemon = Daemon::spawn(&addr, state.path());
    let body = r#"{"suites":["gsmdec"],"solutions":["mdc"],"heuristics":["prefclus"]}"#;
    assert_eq!(
        client::post(&daemon.base, "/matrix", body)
            .expect("matrix")
            .status,
        200
    );
    daemon.shutdown();

    // Flip the era fingerprint inside both headers, as if the stores
    // had been written by a binary with different canonical encodings.
    for name in ["cells.log", "seeds.log"] {
        let path = state.path().join(name);
        let mut bytes = std::fs::read(&path).expect("read log");
        bytes[16] ^= 0xff; // first era byte
        std::fs::write(&path, bytes).expect("write log");
    }

    let addr = free_addr();
    let daemon = Daemon::spawn(&addr, state.path());
    let s = stats(&daemon.base);
    assert_eq!(field(&s, &["persist", "stale_stores"]), 2);
    assert_eq!(field(&s, &["persist", "loaded_cells"]), 0);
    assert_eq!(field(&s, &["persist", "loaded_seeds"]), 0);
    assert!(field(&s, &["persist", "discarded_bytes"]) > 0);
    // The stale store was healed away: the cell recomputes and the
    // *next* boot is clean.
    assert_eq!(
        client::post(&daemon.base, "/matrix", body)
            .expect("matrix")
            .status,
        200
    );
    assert_eq!(field(&stats(&daemon.base), &["computed_cells"]), 1);
    daemon.shutdown();

    let addr = free_addr();
    let daemon = Daemon::spawn(&addr, state.path());
    let s = stats(&daemon.base);
    assert_eq!(
        field(&s, &["persist", "stale_stores"]),
        0,
        "healed at the previous boot"
    );
    assert_eq!(field(&s, &["persist", "loaded_cells"]), 1);
    daemon.shutdown();
}
