//! Minimal JSON value, writer and parser.
//!
//! The build container has no crates.io access, so — like the
//! `third_party/` stand-ins — the subset of JSON this workspace needs
//! is hand-rolled: enough to render every endpoint response and to
//! parse `POST /matrix` bodies. Rendering is deterministic (object
//! fields keep insertion order, numbers use Rust's shortest-roundtrip
//! formatting), which is what makes cached responses byte-identical to
//! cold ones.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (kept exact; counters exceed `f64`'s 53
    /// bits long before they exceed `u64`).
    U64(u64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value of object field `key`, if this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The number content as `f64` (integers convert losslessly up to
    /// 2^53).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                // JSON has no NaN/Infinity; degrade to null rather than
                // emit an unparsable token.
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Json`] value.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos = end;
                            // Surrogates are not combined; out of scope
                            // for config bodies.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                b if b < 0x80 => out.push(char::from(b)),
                _ => {
                    // Multi-byte UTF-8: re-decode from the slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_ordered() {
        let v = Json::obj(vec![
            ("b", Json::U64(2)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s", Json::str("hi\n\"there\"")),
            ("x", Json::F64(0.5)),
        ]);
        let text = v.render();
        assert_eq!(
            text,
            r#"{"b":2,"a":[null,true],"s":"hi\n\"there\"","x":0.5}"#
        );
        assert_eq!(text, v.render());
    }

    #[test]
    fn large_u64_survives_roundtrip() {
        let n = u64::MAX - 1;
        let text = Json::U64(n).render();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn parse_roundtrips_composites() {
        let text = r#" {"suites": ["gsmdec", "epicdec"], "n": 42, "f": -1.5,
                        "nested": {"ok": true, "nil": null}} "#;
        let v = parse(text).unwrap();
        let suites = v.get("suites").unwrap().as_array().unwrap();
        assert_eq!(suites[1].as_str(), Some("epicdec"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(-1.5));
        assert_eq!(
            v.get("nested").unwrap().get("ok").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(v.get("nested").unwrap().get("nil"), Some(&Json::Null));
        // Re-render → re-parse is stable.
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let v = parse(r#""aA\t\\\"""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\t\\\""));
        let nonascii = Json::str("héllo → wörld");
        assert_eq!(parse(&nonascii.render()).unwrap(), nonascii);
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }
}
