//! `distvliw-serve`: the long-running experiment service.
//!
//! Exposes the end-to-end pipeline behind an HTTP/1.1 service built on
//! `std::net` only (the build container has no crates.io access, so the
//! HTTP framing and JSON are hand-rolled, mirroring the `third_party/`
//! dependency stand-ins). The engine memoizes experiment cells in a
//! content-addressed [`cache::ResultCache`] keyed by
//! [`distvliw_core::cachekey::cell_key`], collapses concurrent identical
//! requests with [`cache::SingleFlight`], and shards each request's
//! cells across worker threads via `distvliw_core::par` — so repeated
//! figure regenerations are incremental instead of recomputing the
//! whole grid.
//!
//! Endpoints: `GET /fig6 /fig7 /fig9 /table3 /table4 /table5 /nobal
//! /sweep /healthz /stats`, `POST /matrix` (arbitrary grids, with
//! machine overrides) and `POST /shutdown`. `GET /sweep` serves the
//! cluster-count × memory-bus sensitivity sweep, sharded through the
//! same cache. See `docs/serving.md` and `docs/workloads.md` for the
//! reference.
//!
//! ```no_run
//! use distvliw_arch::MachineConfig;
//! use distvliw_serve::{engine::ServeEngine, Server};
//!
//! let engine = ServeEngine::new(MachineConfig::paper_baseline(), 256);
//! let server = Server::bind("127.0.0.1:7411", engine).expect("bind");
//! println!("listening on {}", server.local_addr());
//! server.run().expect("serve");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod endpoints;
pub mod engine;
pub mod http;
pub mod json;
pub mod persist;

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use engine::ServeEngine;
use http::{read_request, write_response, Response};

/// The accept loop: owns the listener and the engine, serves until a
/// `POST /shutdown` arrives.
pub struct Server {
    listener: TcpListener,
    engine: Arc<ServeEngine>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7411`; port 0 picks an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, engine: ServeEngine) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine: Arc::new(engine),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    ///
    /// # Panics
    ///
    /// Panics if the listener has no local address (cannot happen after
    /// a successful bind).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// The shared engine (for tests and embedding).
    #[must_use]
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }

    /// Serves connections until shutdown. Each connection gets a thread;
    /// requests on one connection are served in order with keep-alive.
    ///
    /// # Errors
    ///
    /// Propagates accept failures (per-connection I/O errors only end
    /// that connection).
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr();
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        // Periodic state flush: dirty II seeds reach the log (and both
        // logs reach disk) within a few seconds even if the process is
        // later killed uncleanly. Exits with the shutdown flag.
        let flusher = {
            let engine = self.engine.clone();
            let shutdown = self.shutdown.clone();
            std::thread::spawn(move || {
                let mut ticks = 0u32;
                while !shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(250));
                    ticks += 1;
                    if ticks.is_multiple_of(20) {
                        engine.flush_state(false);
                    }
                }
            })
        };
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let conn = match conn {
                Ok(conn) => conn,
                Err(e) => {
                    // Transient accept failure (e.g. EMFILE under fd
                    // exhaustion): back off instead of busy-spinning
                    // the accept loop at full CPU.
                    distvliw_obs::global()
                        .counter(
                            "serve_accept_errors_total",
                            "Accept failures answered with a 20ms backoff",
                        )
                        .inc();
                    distvliw_obs::logger::event(
                        "warn",
                        "accept_error",
                        &[
                            ("error", e.to_string().into()),
                            ("backoff_ms", 20u64.into()),
                        ],
                    );
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    continue;
                }
            };
            distvliw_obs::global()
                .counter("serve_connections_total", "Connections accepted")
                .inc();
            let engine = self.engine.clone();
            let shutdown = self.shutdown.clone();
            handlers.retain(|h| !h.is_finished());
            handlers.push(std::thread::spawn(move || {
                let _ = serve_connection(&engine, conn, &shutdown, addr);
            }));
        }
        // Drain: in-flight requests finish writing their responses
        // before the process exits; idle keep-alive connections notice
        // the shutdown flag within one read-timeout tick.
        for handler in handlers {
            let _ = handler.join();
        }
        let _ = flusher.join();
        // Clean shutdown compacts the cell log, so recency drift from
        // cache hits since the last eviction survives the restart.
        self.engine.flush_state(true);
        Ok(())
    }
}

/// Serves one connection until close, error, or server shutdown.
fn serve_connection(
    engine: &ServeEngine,
    conn: TcpStream,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) -> io::Result<()> {
    // Responses are written as one buffered burst; Nagle would otherwise
    // pair with the peer's delayed ACK and add tens of milliseconds to
    // every cached exchange.
    conn.set_nodelay(true)?;
    // Between requests the socket ticks every second, so an idle
    // keep-alive connection both notices a shutdown promptly and is
    // reaped after `IDLE_LIMIT` rather than pinning its handler thread
    // (and two fds) forever. `fill_buf` consumes nothing, so a tick
    // can never corrupt framing; once a request's first bytes arrive,
    // the per-read window widens to `REQUEST_WINDOW` and a stall
    // mid-request closes the connection instead of resuming mid-stream.
    const READ_TICK: std::time::Duration = std::time::Duration::from_secs(1);
    const IDLE_LIMIT: std::time::Duration = std::time::Duration::from_secs(60);
    const REQUEST_WINDOW: std::time::Duration = std::time::Duration::from_secs(30);
    let timeouts = conn.try_clone()?;
    let mut writer = io::BufWriter::new(conn.try_clone()?);
    let mut reader = BufReader::new(conn);
    loop {
        // Idle phase: wait for the first bytes of the next request.
        timeouts.set_read_timeout(Some(READ_TICK))?;
        let idle_since = std::time::Instant::now();
        loop {
            use std::io::BufRead as _;
            match reader.fill_buf() {
                Ok([]) => return Ok(()), // clean close between requests
                Ok(_) => break,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    if idle_since.elapsed() >= IDLE_LIMIT {
                        distvliw_obs::global()
                            .counter(
                                "serve_connections_reaped_total",
                                "Idle keep-alive connections reaped at the idle limit",
                            )
                            .inc();
                        distvliw_obs::logger::event(
                            "info",
                            "conn_reaped",
                            &[("idle_secs", IDLE_LIMIT.as_secs().into())],
                        );
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        // Request phase: the whole exchange reads under the wider
        // window; a timeout here ends the connection.
        timeouts.set_read_timeout(Some(REQUEST_WINDOW))?;
        let parse_start = std::time::Instant::now();
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let resp = Response::json(
                    400,
                    json::Json::obj(vec![("error", json::Json::str(e.to_string()))]).render(),
                );
                let _ = write_response(&mut writer, &resp, true);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        // Shutdown is handled at the connection layer: the engine stays
        // a pure request → response function.
        if request.path == "/shutdown" {
            let resp = if request.method == "POST" {
                shutdown.store(true, Ordering::SeqCst);
                Response::json(
                    200,
                    json::Json::obj(vec![("status", json::Json::str("shutting down"))]).render(),
                )
            } else {
                Response::json(
                    405,
                    json::Json::obj(vec![("error", json::Json::str("method not allowed"))])
                        .render(),
                )
            };
            write_response(&mut writer, &resp, true)?;
            if shutdown.load(Ordering::SeqCst) {
                // Poke the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
            }
            return Ok(());
        }
        let response =
            endpoints::serve_request(engine, &request, parse_start, parse_start.elapsed());
        let close = request.wants_close();
        write_response(&mut writer, &response, close)?;
        if close {
            return Ok(());
        }
    }
}
