//! `distvliw-serve`: the long-running experiment service.
//!
//! Exposes the end-to-end pipeline behind an HTTP/1.1 service built on
//! `std::net` only (the build container has no crates.io access, so the
//! HTTP framing and JSON are hand-rolled, mirroring the `third_party/`
//! dependency stand-ins). The engine memoizes experiment cells in a
//! content-addressed [`cache::ResultCache`] keyed by
//! [`distvliw_core::cachekey::cell_key`], collapses concurrent identical
//! requests with [`cache::SingleFlight`], and shards each request's
//! cells across worker threads via `distvliw_core::par` — so repeated
//! figure regenerations are incremental instead of recomputing the
//! whole grid.
//!
//! Connections are served by an event-driven layer ([`event`]): one
//! poll(2) readiness loop owns every socket, a fixed worker pool pulls
//! parsed requests from a bounded queue, and overload is answered `503`
//! with `retry-after` instead of unbounded thread growth. Sizing is a
//! [`event::EventConfig`] (`--workers`, `--max-conns`, `--queue-depth`
//! on the `serve` bin).
//!
//! Endpoints: `GET /fig6 /fig7 /fig9 /table3 /table4 /table5 /nobal
//! /sweep /healthz /stats`, `POST /matrix` (arbitrary grids, with
//! machine overrides) and `POST /shutdown`. `GET /sweep` serves the
//! cluster-count × memory-bus sensitivity sweep, sharded through the
//! same cache. See `docs/serving.md` and `docs/workloads.md` for the
//! reference.
//!
//! ```no_run
//! use distvliw_arch::MachineConfig;
//! use distvliw_serve::{engine::ServeEngine, Server};
//!
//! let engine = ServeEngine::new(MachineConfig::paper_baseline(), 256);
//! let server = Server::bind("127.0.0.1:7411", engine).expect("bind");
//! println!("listening on {}", server.local_addr());
//! server.run().expect("serve");
//! ```

// `deny`, not `forbid`: the one `#[allow(unsafe_code)]` in the
// workspace is the poll(2) FFI declaration in `event::sys`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod endpoints;
pub mod engine;
pub mod event;
pub mod http;
pub mod json;
pub mod persist;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use engine::ServeEngine;
use event::EventConfig;

/// The serving front door: owns the listener and the engine, runs the
/// event loop until a `POST /shutdown` arrives.
pub struct Server {
    listener: TcpListener,
    engine: Arc<ServeEngine>,
    shutdown: Arc<AtomicBool>,
    config: EventConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7411`; port 0 picks an ephemeral
    /// port) with default [`EventConfig`] sizing.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, engine: ServeEngine) -> io::Result<Server> {
        Server::bind_with(addr, engine, EventConfig::default())
    }

    /// Binds `addr` with explicit connection-layer sizing.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_with(addr: &str, engine: ServeEngine, config: EventConfig) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine: Arc::new(engine),
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The bound address.
    ///
    /// # Panics
    ///
    /// Panics if the listener has no local address (cannot happen after
    /// a successful bind).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// The shared engine (for tests and embedding).
    #[must_use]
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }

    /// The connection-layer sizing this server runs with.
    #[must_use]
    pub fn config(&self) -> EventConfig {
        self.config
    }

    /// Serves connections until shutdown: runs the [`event`] readiness
    /// loop on the calling thread with `config.workers` compute threads
    /// behind the bounded queue.
    ///
    /// # Errors
    ///
    /// Propagates listener failures (an escalated accept failure ends
    /// the loop; per-connection I/O errors only end that connection).
    pub fn run(self) -> io::Result<()> {
        // Periodic state flush: dirty II seeds reach the log (and both
        // logs reach disk) within a few seconds even if the process is
        // later killed uncleanly. Exits with the shutdown flag.
        let flusher = {
            let engine = self.engine.clone();
            let shutdown = self.shutdown.clone();
            std::thread::spawn(move || {
                let mut ticks = 0u32;
                while !shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(250));
                    ticks += 1;
                    if ticks.is_multiple_of(20) {
                        engine.flush_state(false);
                    }
                }
            })
        };
        let result = event::run(&self.listener, &self.engine, &self.shutdown, &self.config);
        // The loop only returns once drained (in-flight responses
        // written, workers joined); make sure the flusher sees the
        // flag even when the loop exited on an error.
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = flusher.join();
        // Clean shutdown compacts the cell log, so recency drift from
        // cache hits since the last eviction survives the restart.
        self.engine.flush_state(true);
        result
    }
}
