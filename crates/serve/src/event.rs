//! The event-driven connection layer: a poll(2) readiness loop,
//! per-connection state machines, and a fixed worker pool behind a
//! bounded request queue.
//!
//! This is stage 1 of the ROADMAP's scale-out item. The previous
//! connection layer spawned one thread per accepted socket and kept an
//! unbounded handler vector, so a connection flood grew the process
//! until it died. Here the thread budget is fixed up front —
//! **one** loop thread owning every socket plus `workers` compute
//! threads — and admission is explicit:
//!
//! * connections beyond `max_conns` are answered `503` with
//!   `retry-after` at accept time and closed;
//! * parsed requests land in a bounded [`mpsc::sync_channel`]; when it
//!   is full the loop answers `503 retry-after` immediately instead of
//!   queueing without bound (the connection stays open so the client
//!   can back off and retry).
//!
//! Each connection walks an explicit state machine:
//!
//! ```text
//!           readable              complete request
//!   Idle ───────────▶ Reading ───────────────────▶ Computing
//!    ▲                   │ parse error → 4xx/501        │ worker finishes
//!    │                   ▼                              ▼
//!    └────────────── Writing ◀──────────────────────────┘
//!      response flushed (or close)
//! ```
//!
//! While a connection is `Computing` the loop polls no events for it —
//! pipelined bytes wait in the kernel buffer — so one slow request
//! cannot make the loop busy-spin. Workers hand finished responses back
//! through a completion list and wake the loop via a loopback
//! socketpair (std has no pipes). Responses are rendered with the same
//! [`render_response`] bytes the threaded layer wrote, so warm
//! responses stay byte-identical across the migration.
//!
//! Timeout semantics are preserved from the threaded layer: idle
//! keep-alive connections are reaped after 60 s, a connection stalling
//! mid-request (or mid-response) is closed after 30 s, and shutdown
//! drains — in-flight computations finish and their responses are
//! written before the loop exits.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::endpoints;
use crate::engine::ServeEngine;
use crate::http::{parse_request, render_response, Parse, Request, Response};
use crate::json::Json;

/// Idle keep-alive connections are reaped after this long.
const IDLE_LIMIT: Duration = Duration::from_secs(60);
/// A connection stalled mid-request or mid-response is closed after
/// this long.
const REQUEST_WINDOW: Duration = Duration::from_secs(30);
/// Upper bound on one poll(2) sleep, so an externally-set shutdown
/// flag is noticed within one tick (the threaded layer's read-timeout
/// tick gave the same guarantee).
const MAX_TICK: Duration = Duration::from_millis(500);
/// Consecutive hard accept failures before the loop gives up instead
/// of retrying every `ACCEPT_BACKOFF` forever (a permanently broken
/// listener — e.g. closed out from under us — used to spin the accept
/// loop for the life of the process).
const ACCEPT_FAILURE_LIMIT: u32 = 25;
/// Backoff after one transient accept failure (EMFILE under fd
/// exhaustion recovers; the backoff keeps the loop off 100% CPU).
const ACCEPT_BACKOFF: Duration = Duration::from_millis(20);
/// `retry-after` seconds advertised on backpressure 503s.
const RETRY_AFTER_SECS: u32 = 1;

/// Sizing knobs for the connection layer (`serve --workers
/// --max-conns --queue-depth`).
#[derive(Debug, Clone, Copy)]
pub struct EventConfig {
    /// Compute threads pulling parsed requests from the queue.
    pub workers: usize,
    /// Maximum concurrently open connections; excess accepts are
    /// answered 503 and closed.
    pub max_conns: usize,
    /// Bound on parsed requests waiting for a worker; overflow is
    /// answered 503 immediately.
    pub queue_depth: usize,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            workers: std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
            max_conns: 4096,
            queue_depth: 256,
        }
    }
}

/// poll(2) via a minimal hand-rolled FFI declaration — libc is already
/// linked into every std binary, so this adds no dependency. The one
/// `unsafe` block in the workspace lives here.
#[cfg(unix)]
mod sys {
    #![allow(unsafe_code)]

    use std::io;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` (layout fixed by POSIX).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    #[cfg(target_os = "linux")]
    type NFds = core::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = core::ffi::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: core::ffi::c_int) -> core::ffi::c_int;
    }

    /// Blocks until an fd is ready or `timeout_ms` elapses. EINTR is
    /// reported as zero ready fds (the loop re-evaluates and re-polls).
    pub fn poll_wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `PollFd` is layout-compatible with `struct pollfd`,
        // the slice stays alive across the call, and the kernel writes
        // only the `revents` fields within its bounds.
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }

    pub fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
        t.as_raw_fd()
    }
}

/// Degraded fallback where poll(2) is unavailable: a short sleep with
/// every registered fd marked ready. Spurious readiness is safe — all
/// sockets are non-blocking, so a not-actually-ready fd just returns
/// `WouldBlock` — it only costs wasted syscalls, and non-unix targets
/// are not a serving platform for this workspace anyway.
#[cfg(not(unix))]
mod sys {
    use std::io;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub fn poll_wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let ms = if timeout_ms < 0 { 5 } else { timeout_ms.min(5) };
        std::thread::sleep(std::time::Duration::from_millis(ms as u64));
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }

    pub fn raw_fd<T>(_t: &T) -> i32 {
        0
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One parsed request in flight to (or inside) the worker pool.
struct Job {
    token: usize,
    generation: u64,
    request: Request,
    /// Close-after-response decision, captured at parse time.
    close: bool,
    parse_start: Instant,
    parse_dur: Duration,
}

/// One finished response on its way back to the loop.
struct Done {
    token: usize,
    generation: u64,
    response: Response,
    close: bool,
}

/// Connection FSM states. `Computing` connections are absent from the
/// poll set entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Between requests, waiting for first bytes (reaped after
    /// [`IDLE_LIMIT`]).
    Idle,
    /// Mid-request: bytes buffered, frame incomplete.
    Reading,
    /// Request handed to the worker pool; no events polled.
    Computing,
    /// Response bytes pending in the out buffer.
    Writing,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Unparsed request bytes (bounded by the framing caps: one
    /// request line + headers + body, plus at most one read chunk).
    buf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    close_after_write: bool,
    /// When the current state was entered (idle reap / stall close).
    since: Instant,
    /// First-byte time of the request currently being read.
    read_started: Option<Instant>,
}

/// Slab slot: `generation` increments on every free, so completions
/// for a connection that died mid-compute can never be written to a
/// reused slot.
struct Slot {
    generation: u64,
    conn: Option<Conn>,
}

/// What to do with a connection after handling one readiness event.
enum After {
    Keep,
    Close,
}

/// Outcome of one write-flush attempt inside [`Loop::pump`].
enum FlushStep {
    /// The socket's send buffer is full; wait for `POLLOUT`.
    Blocked,
    Close,
    /// Out buffer fully flushed; the connection was recycled to
    /// `Idle` and buffered pipelined bytes may be dispatchable.
    Done,
}

/// Outcome of one dispatch attempt inside [`Loop::pump`].
enum DispatchStep {
    /// Nothing further to drive right now: request incomplete, or
    /// handed to the worker pool (`Computing`).
    Wait,
    /// Answer inline — parse error, `/shutdown`, queue-full 503 —
    /// with the given close-after-write flag.
    Respond(Response, bool),
    Close,
}

/// All loop-owned mutable state, factored so helpers can borrow it
/// without fighting the borrow checker over `self`-splitting.
struct Loop {
    slots: Vec<Slot>,
    free: Vec<usize>,
    open: usize,
    job_tx: mpsc::SyncSender<Job>,
    queue_depth: distvliw_obs::Gauge,
    shutdown: Arc<AtomicBool>,
}

impl Loop {
    fn conn_mut(&mut self, token: usize) -> Option<&mut Conn> {
        self.slots.get_mut(token).and_then(|s| s.conn.as_mut())
    }

    fn insert(&mut self, stream: TcpStream) -> usize {
        let conn = Conn {
            stream,
            state: ConnState::Idle,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            close_after_write: false,
            since: Instant::now(),
            read_started: None,
        };
        self.open += 1;
        match self.free.pop() {
            Some(token) => {
                self.slots[token].conn = Some(conn);
                token
            }
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    conn: Some(conn),
                });
                self.slots.len() - 1
            }
        }
    }

    fn close(&mut self, token: usize) {
        if let Some(slot) = self.slots.get_mut(token) {
            if slot.conn.take().is_some() {
                slot.generation += 1;
                self.open -= 1;
                self.free.push(token);
            }
        }
    }

    /// Queues `response` on the connection's write buffer and pumps
    /// the connection (the common case: the whole response fits in the
    /// send buffer and the connection goes straight back to `Idle`
    /// without another poll round-trip).
    fn start_write(&mut self, token: usize, response: &Response, close: bool) {
        self.queue_response(token, response, close);
        if matches!(self.pump(token), After::Close) {
            self.close(token);
        }
    }

    fn queue_response(&mut self, token: usize, response: &Response, close: bool) {
        let Some(conn) = self.conn_mut(token) else {
            return;
        };
        conn.out = render_response(response, close);
        conn.out_pos = 0;
        conn.close_after_write = close;
        conn.state = ConnState::Writing;
        conn.since = Instant::now();
    }

    /// Drives one connection as far as it can go without fresh
    /// readiness: flushes pending response bytes and dispatches
    /// buffered pipelined requests, alternating **iteratively**. Each
    /// inline-answered request (queue-full 503, parse 4xx/501) loops
    /// back here rather than recursing, so a client that pipelines
    /// thousands of tiny requests cannot grow the loop thread's stack
    /// by one frame per buffered request.
    fn pump(&mut self, token: usize) -> After {
        loop {
            let conn_state = match self.conn_mut(token) {
                Some(c) => c.state,
                None => return After::Keep,
            };
            match conn_state {
                ConnState::Writing => match self.flush_step(token) {
                    FlushStep::Blocked => return After::Keep,
                    FlushStep::Close => return After::Close,
                    FlushStep::Done => {}
                },
                ConnState::Idle | ConnState::Reading => match self.dispatch_step(token) {
                    DispatchStep::Wait => return After::Keep,
                    DispatchStep::Respond(resp, close) => {
                        self.queue_response(token, &resp, close);
                    }
                    DispatchStep::Close => return After::Close,
                },
                ConnState::Computing => return After::Keep,
            }
        }
    }

    /// Writes pending out-buffer bytes until done or `WouldBlock`; on
    /// completion the connection is recycled to `Idle`.
    fn flush_step(&mut self, token: usize) -> FlushStep {
        let Some(conn) = self.conn_mut(token) else {
            return FlushStep::Blocked;
        };
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => return FlushStep::Close,
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return FlushStep::Blocked,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return FlushStep::Close,
            }
        }
        if conn.close_after_write {
            return FlushStep::Close;
        }
        conn.out.clear();
        conn.out_pos = 0;
        conn.state = ConnState::Idle;
        conn.since = Instant::now();
        conn.read_started = None;
        FlushStep::Done
    }

    /// Drains readable bytes into the connection buffer, then tries to
    /// dispatch a complete request.
    fn handle_readable(&mut self, token: usize) -> After {
        let Some(conn) = self.conn_mut(token) else {
            return After::Keep;
        };
        let mut tmp = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut tmp) {
                Ok(0) => {
                    // Peer closed. Clean between requests; mid-request
                    // there is nobody left to answer anyway.
                    return After::Close;
                }
                Ok(n) => {
                    if conn.state == ConnState::Idle {
                        conn.state = ConnState::Reading;
                        conn.read_started = Some(Instant::now());
                        conn.since = Instant::now();
                    }
                    conn.buf.extend_from_slice(&tmp[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return After::Close,
            }
        }
        self.pump(token)
    }

    /// Parses the front of the connection buffer; on a complete
    /// request, hands it to the worker queue (or asks [`Loop::pump`]
    /// to answer 503/4xx/501 inline). `/shutdown` is handled here at
    /// the connection layer, exactly like the threaded layer did — the
    /// engine stays a pure request → response function.
    fn dispatch_step(&mut self, token: usize) -> DispatchStep {
        let generation = match self.slots.get(token) {
            Some(slot) => slot.generation,
            None => return DispatchStep::Wait,
        };
        let Some(conn) = self.conn_mut(token) else {
            return DispatchStep::Wait;
        };
        let (request, used) = match parse_request(&conn.buf) {
            Ok(Parse::Partial) => {
                // Drain the blank-line prefix parse_request skips
                // (stray CRLFs between pipelined requests): left in
                // place, a client streaming bare CRLFs would grow the
                // buffer for the whole request window and every
                // readiness event would re-scan it from the start.
                let blank = conn
                    .buf
                    .iter()
                    .take_while(|&&b| b == b'\r' || b == b'\n')
                    .count();
                conn.buf.drain(..blank);
                if conn.state == ConnState::Idle && !conn.buf.is_empty() {
                    conn.state = ConnState::Reading;
                    conn.since = Instant::now();
                    conn.read_started = Some(Instant::now());
                }
                return DispatchStep::Wait;
            }
            Ok(Parse::Complete(request, used)) => (request, used),
            Err(e) => {
                let resp = Response::json(
                    e.status,
                    Json::obj(vec![("error", Json::str(e.msg))]).render(),
                );
                return DispatchStep::Respond(resp, true);
            }
        };
        conn.buf.drain(..used);
        let parse_start = conn.read_started.unwrap_or_else(Instant::now);
        let parse_dur = parse_start.elapsed();
        // This request is consumed; the next one (if pipelined) gets
        // its own first-byte clock.
        conn.read_started = None;

        if request.path == "/shutdown" {
            let resp = if request.method == "POST" {
                self.shutdown.store(true, Ordering::SeqCst);
                Response::json(
                    200,
                    Json::obj(vec![("status", Json::str("shutting down"))]).render(),
                )
            } else {
                Response::json(
                    405,
                    Json::obj(vec![("error", Json::str("method not allowed"))]).render(),
                )
            };
            return DispatchStep::Respond(resp, true);
        }

        let close = request.wants_close();
        let job = Job {
            token,
            generation,
            request,
            close,
            parse_start,
            parse_dur,
        };
        // Count the job before the send: the worker decrements after
        // its recv, so incrementing afterwards would let a fast worker
        // (one possibly rendering /metrics for this very request) read
        // the gauge below zero.
        self.queue_depth.add(1);
        match self.job_tx.try_send(job) {
            Ok(()) => {
                if let Some(conn) = self.conn_mut(token) {
                    conn.state = ConnState::Computing;
                    conn.since = Instant::now();
                }
                DispatchStep::Wait
            }
            Err(TrySendError::Full(job)) => {
                // Backpressure: the queue is the admission bound. The
                // threaded layer would have spawned another thread
                // here; instead the front door says "later".
                self.queue_depth.add(-1);
                distvliw_obs::global()
                    .counter_with(
                        "serve_rejected_total",
                        "Requests rejected 503 at the front door, by reason",
                        &[("reason", "queue_full")],
                    )
                    .inc();
                distvliw_obs::logger::event(
                    "warn",
                    "overload_rejected",
                    &[
                        ("reason", "queue_full".into()),
                        ("path", job.request.path.as_str().into()),
                        ("retry_after_secs", u64::from(RETRY_AFTER_SECS).into()),
                    ],
                );
                let resp = Response::overloaded("request queue full", RETRY_AFTER_SECS);
                DispatchStep::Respond(resp, job.close)
            }
            // Workers only exit after the loop drops the sender.
            Err(TrySendError::Disconnected(_)) => {
                self.queue_depth.add(-1);
                DispatchStep::Close
            }
        }
    }
}

/// Creates the loopback waker socketpair (std exposes no pipes): the
/// write end wakes the poll loop from worker threads, the read end
/// sits in the poll set.
fn waker_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let local = tx.local_addr()?;
    // Guard against a foreign connection racing onto the ephemeral
    // port between bind and accept.
    for _ in 0..16 {
        let (rx, peer) = listener.accept()?;
        if peer == local {
            tx.set_nodelay(true)?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            return Ok((tx, rx));
        }
    }
    Err(io::Error::other("could not establish waker socketpair"))
}

fn wake(tx: &TcpStream) {
    // A full send buffer means wakes are already pending; losing this
    // byte is fine.
    let _ = (&*tx).write(&[1u8]);
}

/// Runs the event loop until shutdown. Owns the listener and every
/// connection; spawns exactly `config.workers` compute threads.
///
/// # Errors
///
/// Propagates listener setup failures and escalated accept failures
/// ([`ACCEPT_FAILURE_LIMIT`] consecutive hard errors).
pub(crate) fn run(
    listener: &TcpListener,
    engine: &Arc<ServeEngine>,
    shutdown: &Arc<AtomicBool>,
    config: &EventConfig,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let (wake_tx, wake_rx) = waker_pair()?;
    let workers = config.workers.max(1);
    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));
    let done: Arc<Mutex<Vec<Done>>> = Arc::new(Mutex::new(Vec::new()));

    let reg = distvliw_obs::global();
    let queue_depth = reg.gauge(
        "serve_queue_depth",
        "Parsed requests waiting in the bounded worker queue",
    );
    // Register the rejection/state families eagerly so /metrics shows
    // them (at zero) before the first overload.
    for reason in ["queue_full", "max_conns"] {
        let _ = reg.counter_with(
            "serve_rejected_total",
            "Requests rejected 503 at the front door, by reason",
            &[("reason", reason)],
        );
    }
    let state_gauges: Vec<(ConnState, distvliw_obs::Gauge)> = [
        (ConnState::Idle, "idle"),
        (ConnState::Reading, "reading"),
        (ConnState::Computing, "computing"),
        (ConnState::Writing, "writing"),
    ]
    .into_iter()
    .map(|(state, name)| {
        (
            state,
            reg.gauge_with(
                "serve_connections_state",
                "Open connections by FSM state",
                &[("state", name)],
            ),
        )
    })
    .collect();
    let open_gauge = reg.gauge("serve_connections_open", "Currently open connections");

    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let engine = engine.clone();
        let job_rx = job_rx.clone();
        let done = done.clone();
        let wake_tx = wake_tx.try_clone()?;
        let queue_depth = queue_depth.clone();
        let handle = std::thread::Builder::new()
            .name(format!("serve-worker-{i}"))
            .spawn(move || loop {
                let job = match lock(&job_rx).recv() {
                    Ok(job) => job,
                    Err(_) => break,
                };
                queue_depth.add(-1);
                let response =
                    endpoints::serve_request(&engine, &job.request, job.parse_start, job.parse_dur);
                lock(&done).push(Done {
                    token: job.token,
                    generation: job.generation,
                    response,
                    close: job.close,
                });
                wake(&wake_tx);
            })?;
        worker_handles.push(handle);
    }

    let mut state = Loop {
        slots: Vec::new(),
        free: Vec::new(),
        open: 0,
        job_tx,
        queue_depth,
        shutdown: shutdown.clone(),
    };
    let mut draining = false;
    let mut accept_failures: u32 = 0;
    let mut fds: Vec<sys::PollFd> = Vec::new();
    // Parallel to `fds`: the slot token each pollfd belongs to plus
    // the slot generation at poll time, so readiness captured for a
    // connection that was closed and its slot reused within the same
    // iteration is never applied to the new occupant.
    let mut tokens: Vec<(usize, u64)> = Vec::new();
    let result = loop {
        if shutdown.load(Ordering::SeqCst) && !draining {
            draining = true;
            // Drain: stop accepting, shed idle/partial connections;
            // Computing and Writing connections finish their exchange.
            for token in 0..state.slots.len() {
                if state
                    .conn_mut(token)
                    .is_some_and(|c| matches!(c.state, ConnState::Idle | ConnState::Reading))
                {
                    state.close(token);
                }
            }
        }
        if draining && state.open == 0 {
            break Ok(());
        }

        for (st, gauge) in &state_gauges {
            let n = state
                .slots
                .iter()
                .filter(|s| s.conn.as_ref().is_some_and(|c| c.state == *st))
                .count();
            gauge.set(n as i64);
        }
        open_gauge.set(state.open as i64);

        // Poll set: waker, listener (while accepting), and every
        // connection with the interest its state implies.
        fds.clear();
        tokens.clear();
        fds.push(sys::PollFd {
            fd: sys::raw_fd(&wake_rx),
            events: sys::POLLIN,
            revents: 0,
        });
        tokens.push((usize::MAX, 0));
        if !draining {
            fds.push(sys::PollFd {
                fd: sys::raw_fd(listener),
                events: sys::POLLIN,
                revents: 0,
            });
            tokens.push((usize::MAX - 1, 0));
        }
        let mut next_deadline: Option<Instant> = None;
        for (token, slot) in state.slots.iter().enumerate() {
            let Some(conn) = &slot.conn else { continue };
            let (events, deadline) = match conn.state {
                ConnState::Idle => (sys::POLLIN, Some(conn.since + IDLE_LIMIT)),
                ConnState::Reading => (sys::POLLIN, Some(conn.since + REQUEST_WINDOW)),
                ConnState::Writing => (sys::POLLOUT, Some(conn.since + REQUEST_WINDOW)),
                ConnState::Computing => (0, None),
            };
            if let Some(d) = deadline {
                next_deadline = Some(next_deadline.map_or(d, |cur| cur.min(d)));
            }
            if events != 0 {
                fds.push(sys::PollFd {
                    fd: sys::raw_fd(&conn.stream),
                    events,
                    revents: 0,
                });
                tokens.push((token, slot.generation));
            }
        }
        let now = Instant::now();
        let timeout =
            next_deadline.map_or(MAX_TICK, |d| d.saturating_duration_since(now).min(MAX_TICK));
        sys::poll_wait(&mut fds, timeout.as_millis() as i32)?;

        // 1. Waker: drain the pending wake bytes.
        if fds[0].revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0 {
            let mut sink = [0u8; 64];
            while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }

        // 2. Finished computations → start writing responses.
        let finished: Vec<Done> = std::mem::take(&mut *lock(&done));
        for d in finished {
            let live = state
                .slots
                .get(d.token)
                .is_some_and(|s| s.generation == d.generation && s.conn.is_some());
            if live {
                state.start_write(d.token, &d.response, d.close);
            }
        }

        // 3. Accept, bounded by max_conns.
        if !draining {
            let listener_ready = tokens
                .iter()
                .position(|&(t, _)| t == usize::MAX - 1)
                .is_some_and(|i| fds[i].revents != 0);
            if listener_ready {
                match accept_ready(listener, &mut state, config) {
                    // Backlog drained without a hard error: the
                    // listener is healthy, so the consecutive-failure
                    // count starts over (scattered transient failures
                    // across a long uptime must never add up to the
                    // fatal limit).
                    Ok(()) => accept_failures = 0,
                    Err(e) => {
                        accept_failures += 1;
                        reg.counter(
                            "serve_accept_errors_total",
                            "Accept failures answered with a 20ms backoff",
                        )
                        .inc();
                        distvliw_obs::logger::event(
                            "warn",
                            "accept_error",
                            &[
                                ("error", e.to_string().into()),
                                ("backoff_ms", (ACCEPT_BACKOFF.as_millis() as u64).into()),
                                ("consecutive", u64::from(accept_failures).into()),
                            ],
                        );
                        if accept_failures >= ACCEPT_FAILURE_LIMIT {
                            // A permanent accept failure used to spin
                            // here every 20 ms forever; escalate.
                            distvliw_obs::logger::event(
                                "error",
                                "accept_fatal",
                                &[
                                    ("error", e.to_string().into()),
                                    ("consecutive", u64::from(accept_failures).into()),
                                ],
                            );
                            break Err(e);
                        }
                        std::thread::sleep(ACCEPT_BACKOFF);
                    }
                }
            }
        }

        // 4. Connection readiness.
        for i in 0..fds.len() {
            let (token, generation) = tokens[i];
            if token >= usize::MAX - 1 || fds[i].revents == 0 {
                continue;
            }
            // Steps 2–3 may have closed this connection and reused its
            // slot (completion write that closed, or a fresh accept in
            // this very iteration); the generation pins the captured
            // readiness to the connection it was polled for.
            if state.slots.get(token).map(|s| s.generation) != Some(generation) {
                continue;
            }
            let revents = fds[i].revents;
            if revents & sys::POLLNVAL != 0 {
                state.close(token);
                continue;
            }
            let conn_state = match state.conn_mut(token) {
                Some(c) => c.state,
                None => continue,
            };
            let after = match conn_state {
                ConnState::Idle | ConnState::Reading
                    if revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0 =>
                {
                    state.handle_readable(token)
                }
                ConnState::Writing if revents & (sys::POLLOUT | sys::POLLHUP) != 0 => {
                    state.pump(token)
                }
                ConnState::Writing if revents & sys::POLLERR != 0 => After::Close,
                _ => After::Keep,
            };
            if matches!(after, After::Close) {
                state.close(token);
            }
        }

        // 5. Deadlines: reap idle keep-alives, close stalled requests
        // and stalled writes.
        let now = Instant::now();
        for token in 0..state.slots.len() {
            let Some(conn) = state.conn_mut(token) else {
                continue;
            };
            let expired = match conn.state {
                ConnState::Idle => now.duration_since(conn.since) >= IDLE_LIMIT,
                ConnState::Reading | ConnState::Writing => {
                    now.duration_since(conn.since) >= REQUEST_WINDOW
                }
                ConnState::Computing => false,
            };
            if !expired {
                continue;
            }
            if conn.state == ConnState::Idle {
                reg.counter(
                    "serve_connections_reaped_total",
                    "Idle keep-alive connections reaped at the idle limit",
                )
                .inc();
                distvliw_obs::logger::event(
                    "info",
                    "conn_reaped",
                    &[("idle_secs", IDLE_LIMIT.as_secs().into())],
                );
            }
            state.close(token);
        }
    };

    // Teardown: dropping the sender lets workers drain any queued jobs
    // (their connections are gone; completions are discarded) and exit.
    drop(state.job_tx);
    for handle in worker_handles {
        let _ = handle.join();
    }
    for (_, gauge) in &state_gauges {
        gauge.set(0);
    }
    open_gauge.set(0);
    state.queue_depth.set(0);
    result
}

/// Accepts every pending connection; connections over `max_conns` are
/// answered an immediate 503 with `retry-after` and closed. `Ok(())`
/// means the backlog was drained (accept returned `WouldBlock`);
/// `Err` is a hard accept failure.
fn accept_ready(listener: &TcpListener, state: &mut Loop, config: &EventConfig) -> io::Result<()> {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) => return Err(e),
        };
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        if state.open >= config.max_conns {
            distvliw_obs::global()
                .counter_with(
                    "serve_rejected_total",
                    "Requests rejected 503 at the front door, by reason",
                    &[("reason", "max_conns")],
                )
                .inc();
            distvliw_obs::logger::event(
                "warn",
                "overload_rejected",
                &[
                    ("reason", "max_conns".into()),
                    ("max_conns", (config.max_conns as u64).into()),
                    ("retry_after_secs", u64::from(RETRY_AFTER_SECS).into()),
                ],
            );
            let resp = Response::overloaded("connection table full", RETRY_AFTER_SECS);
            // Best-effort: the few hundred bytes fit the fresh socket
            // buffer; a client that raced a request in may see a reset
            // instead, which it must treat the same as a 503.
            let _ = (&stream).write(&render_response(&resp, true));
            drop(stream);
            continue;
        }
        distvliw_obs::global()
            .counter("serve_connections_total", "Connections accepted")
            .inc();
        let token = state.insert(stream);
        // Bytes may already be waiting (client sent the request with
        // the SYN-ACK data); read them now rather than next tick.
        if matches!(state.handle_readable(token), After::Close) {
            state.close(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_bounded() {
        let c = EventConfig::default();
        assert!(c.workers >= 1);
        assert!(c.max_conns >= 64);
        assert!(c.queue_depth >= 1);
    }

    #[test]
    fn waker_wakes_poll() {
        let (tx, rx) = waker_pair().unwrap();
        let mut fds = [sys::PollFd {
            fd: sys::raw_fd(&rx),
            events: sys::POLLIN,
            revents: 0,
        }];
        // Nothing pending: poll times out with no readiness.
        sys::poll_wait(&mut fds, 0).unwrap();
        #[cfg(unix)]
        assert_eq!(fds[0].revents & sys::POLLIN, 0);
        wake(&tx);
        let mut fds = [sys::PollFd {
            fd: sys::raw_fd(&rx),
            events: sys::POLLIN,
            revents: 0,
        }];
        sys::poll_wait(&mut fds, 1000).unwrap();
        assert_ne!(fds[0].revents & sys::POLLIN, 0);
    }
}
