//! Minimal HTTP/1.1 framing over `std::net`.
//!
//! Hand-rolled like the `third_party/` dependency stand-ins: request
//! parsing (request line, headers, `Content-Length` bodies) and
//! response writing, with persistent connections per HTTP/1.1 defaults.
//! No chunked encoding, no TLS — the service binds loopback or sits
//! behind a real proxy.

use std::io::{self, BufRead, Read, Write};

/// Hard caps keeping a misbehaving client from ballooning memory.
const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum number of request headers.
const MAX_HEADERS: usize = 64;
/// Maximum request-body size in bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the request target (query string stripped).
    pub path: String,
    /// The query string (text after `?`, empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of `name`, matched case-insensitively.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The value of query parameter `name` (`""` for a bare `?name`),
    /// or `None` when absent. No percent-decoding — the service's
    /// parameters are plain tokens.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// One response to write.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content-Type header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one line (up to CRLF or LF), rejecting oversized lines.
fn read_line<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_HEADER_LINE as u64 + 1)
        .read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > MAX_HEADER_LINE {
        return Err(bad("header line too long"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Reads the next request off a persistent connection. `Ok(None)` means
/// the peer closed cleanly between requests.
///
/// # Errors
///
/// I/O errors pass through; malformed framing surfaces as
/// [`io::ErrorKind::InvalidData`] (the server answers 400 and closes).
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    if request_line.is_empty() {
        return Ok(None);
    }
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let version = parts.next().ok_or_else(|| bad("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or_else(|| bad("eof in headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if let Some(len) = request.header("content-length") {
        let len: usize = len.parse().map_err(|_| bad("bad content-length"))?;
        if len > MAX_BODY {
            return Err(bad("body too large"));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        request.body = body;
    }
    Ok(Some(request))
}

/// Writes `response`; `close` controls the `Connection` header.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    close: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if close { "close" } else { "keep-alive" }
    )?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_get_with_query_and_headers() {
        let raw = b"GET /fig6?x=1 HTTP/1.1\r\nHost: a\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/fig6");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("y"), None);
        assert_eq!(req.header("host"), Some("a"));
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_and_next_request() {
        let raw =
            b"POST /matrix HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"GET /healthz HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let first = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.body, b"{\"a\"");
        assert!(!first.wants_close());
        let second = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(second.path, "/healthz");
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_framing() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            &b"GET / SPDY/3\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbadheader\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nContent-Length: wat\r\n\r\n"[..],
        ] {
            let err = read_request(&mut BufReader::new(raw)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{raw:?}");
        }
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = read_request(&mut BufReader::new(raw.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".to_string()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
