//! Minimal HTTP/1.x framing over `std::net`.
//!
//! Hand-rolled like the `third_party/` dependency stand-ins: request
//! parsing (request line, headers, `Content-Length` bodies) and
//! response writing, with persistent connections per HTTP/1.1 defaults
//! (HTTP/1.0 closes unless the client sent `Connection: keep-alive`).
//! No chunked encoding (a chunked request body is rejected with 501 at
//! the first request), no TLS — the service binds loopback or sits
//! behind a real proxy.
//!
//! The core parser, [`parse_request`], is *incremental*: it consumes a
//! byte slice and either produces one complete request plus the number
//! of bytes it spans, or reports that more bytes are needed. The
//! non-blocking event loop (`crate::event`) feeds it straight from its
//! per-connection read buffers; the blocking [`read_request`] used by
//! tests wraps the same parser over a `BufRead`, so the two paths
//! cannot drift apart on framing decisions.

use std::io::{self, BufRead, Write};

/// Hard caps keeping a misbehaving client from ballooning memory.
const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum number of request headers.
const MAX_HEADERS: usize = 64;
/// Maximum request-body size in bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// A framing-level failure: the HTTP status the server should answer
/// before closing the connection, plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Response status (400 for malformed framing, 501 for
    /// unimplemented transfer codings).
    pub status: u16,
    /// Error message (becomes the JSON `error` field).
    pub msg: String,
}

impl HttpError {
    fn bad(msg: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            msg: msg.into(),
        }
    }

    fn not_implemented(msg: impl Into<String>) -> HttpError {
        HttpError {
            status: 501,
            msg: msg.into(),
        }
    }

    /// Maps onto [`io::ErrorKind::InvalidData`] for the blocking
    /// reader (which predates status-aware errors).
    #[must_use]
    pub fn into_io(self) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, self.msg)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.msg)
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the request target (query string stripped).
    pub path: String,
    /// The query string (text after `?`, empty when absent).
    pub query: String,
    /// Minor HTTP version: `0` for `HTTP/1.0`, `1` for `HTTP/1.1`.
    pub minor: u8,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of `name`, matched case-insensitively.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The value of query parameter `name` (`""` for a bare `?name`),
    /// or `None` when absent. No percent-decoding — the service's
    /// parameters are plain tokens.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }

    /// Whether the connection should close after this exchange.
    ///
    /// `Connection` is a comma-separated option list (RFC 7230 §6.1):
    /// every value of every `Connection` header is split on commas and
    /// the tokens matched case-insensitively after trimming, so
    /// `Connection: keep-alive, Close` closes. A `close` token always
    /// wins; otherwise HTTP/1.0 requests default to closing unless the
    /// client sent a `keep-alive` token (HTTP/1.1 defaults to
    /// persistent).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        let mut close = false;
        let mut keep_alive = false;
        for (name, value) in &self.headers {
            if !name.eq_ignore_ascii_case("connection") {
                continue;
            }
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
        close || (self.minor == 0 && !keep_alive)
    }
}

/// One response to write.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content-Type header value.
    pub content_type: &'static str,
    /// Extra headers appended after the standard three (name must be
    /// lowercase; used for `retry-after` on backpressure 503s).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// The backpressure response: `503` with a `retry-after` header,
    /// answered immediately when the request queue (or the connection
    /// table) is full.
    #[must_use]
    pub fn overloaded(reason: &str, retry_after_secs: u32) -> Self {
        let mut resp = Response::json(
            503,
            crate::json::Json::obj(vec![
                (
                    "error",
                    crate::json::Json::str(format!("overloaded: {reason}")),
                ),
                (
                    "retry_after_secs",
                    crate::json::Json::U64(u64::from(retry_after_secs)),
                ),
            ])
            .render(),
        );
        resp.extra_headers
            .push(("retry-after", retry_after_secs.to_string()));
        resp
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Outcome of one [`parse_request`] call.
#[derive(Debug)]
pub enum Parse {
    /// The buffer does not yet hold one complete request; read more.
    Partial,
    /// One complete request spanning the first `usize` bytes of the
    /// buffer (including any leading blank lines it skipped).
    Complete(Request, usize),
}

/// Locates the next LF in `buf[start..]` and returns the line (CR/LF
/// trimmed) plus the index one past the LF, or `None` if no full line
/// is buffered yet.
fn next_line(buf: &[u8], start: usize) -> Result<Option<(&[u8], usize)>, HttpError> {
    match buf[start..].iter().position(|&b| b == b'\n') {
        Some(rel) => {
            if rel > MAX_HEADER_LINE {
                return Err(HttpError::bad("header line too long"));
            }
            let mut line = &buf[start..start + rel];
            while let [rest @ .., b'\r'] = line {
                line = rest;
            }
            Ok(Some((line, start + rel + 1)))
        }
        None => {
            if buf.len() - start > MAX_HEADER_LINE {
                return Err(HttpError::bad("header line too long"));
            }
            Ok(None)
        }
    }
}

/// Tries to parse one complete request from the front of `buf`.
///
/// Leading blank lines (stray CRLFs between pipelined requests) are
/// skipped per RFC 7230 §3.5. Returns [`Parse::Partial`] when the
/// buffer ends mid-request — the caller reads more bytes and retries
/// with the grown buffer.
///
/// # Errors
///
/// Malformed framing yields an [`HttpError`] carrying the status the
/// server should answer before closing: 400 for bad request lines,
/// header overflows and oversized bodies, 501 for `Transfer-Encoding`
/// request bodies (chunked framing is not implemented; silently
/// skipping the body would misparse the chunk stream as the next
/// request line).
pub fn parse_request(buf: &[u8]) -> Result<Parse, HttpError> {
    // Skip leading empty lines between requests.
    let mut pos = 0;
    let request_line = loop {
        match next_line(buf, pos)? {
            None => return Ok(Parse::Partial),
            Some(([], next)) => pos = next,
            Some((line, next)) => {
                pos = next;
                break line;
            }
        }
    };
    let request_line = std::str::from_utf8(request_line)
        .map_err(|_| HttpError::bad("request line is not utf-8"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing HTTP version"))?;
    let minor = match version {
        "HTTP/1.0" => 0,
        "HTTP/1.1" => 1,
        v if v.starts_with("HTTP/1.") => 1,
        _ => return Err(HttpError::bad("unsupported HTTP version")),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let Some((line, next)) = next_line(buf, pos)? else {
            return Ok(Parse::Partial);
        };
        pos = next;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::bad("too many headers"));
        }
        let line = std::str::from_utf8(line).map_err(|_| HttpError::bad("header is not utf-8"))?;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::bad("malformed header"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        path,
        query,
        minor,
        headers,
        body: Vec::new(),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.trim().is_empty())
    {
        // Without chunked decoding the body bytes would be misparsed
        // as the next request line, surfacing as a confusing 400 on a
        // later read; reject explicitly up front instead.
        return Err(HttpError::not_implemented(
            "transfer-encoding request bodies are not supported",
        ));
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::bad("bad content-length"))?;
        if len > MAX_BODY {
            return Err(HttpError::bad("body too large"));
        }
        if buf.len() - pos < len {
            return Ok(Parse::Partial);
        }
        request.body = buf[pos..pos + len].to_vec();
        pos += len;
    }
    Ok(Parse::Complete(request, pos))
}

/// Reads the next request off a persistent connection (blocking path:
/// tests and tooling). `Ok(None)` means the peer closed cleanly
/// between requests. Framing decisions are delegated to
/// [`parse_request`], so this cannot disagree with the event loop.
///
/// # Errors
///
/// I/O errors pass through; malformed framing surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk_len = {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                // EOF: clean close only if nothing but blank lines
                // arrived since the previous request.
                return if buf.iter().all(|&b| b == b'\r' || b == b'\n') {
                    Ok(None)
                } else {
                    Err(HttpError::bad("eof mid-request").into_io())
                };
            }
            buf.extend_from_slice(chunk);
            chunk.len()
        };
        match parse_request(&buf) {
            Ok(Parse::Complete(request, used)) => {
                // Only the bytes this request spans are consumed; the
                // rest stays buffered for the next call (pipelining).
                let already = buf.len() - chunk_len;
                reader.consume(used - already);
                return Ok(Some(request));
            }
            Ok(Parse::Partial) => reader.consume(chunk_len),
            Err(e) => {
                reader.consume(chunk_len);
                return Err(e.into_io());
            }
        }
    }
}

/// Renders the full wire bytes of `response`; `close` controls the
/// `Connection` header. The event loop queues these bytes on the
/// connection's write buffer; [`write_response`] writes them directly.
#[must_use]
pub fn render_response(response: &Response, close: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(response.body.len() + 160);
    let _ = write!(
        out,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if close { "close" } else { "keep-alive" }
    );
    for (name, value) in &response.extra_headers {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&response.body);
    out
}

/// Writes `response`; `close` controls the `Connection` header.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    close: bool,
) -> io::Result<()> {
    writer.write_all(&render_response(response, close))?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_get_with_query_and_headers() {
        let raw = b"GET /fig6?x=1 HTTP/1.1\r\nHost: a\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/fig6");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.minor, 1);
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("y"), None);
        assert_eq!(req.header("host"), Some("a"));
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_and_next_request() {
        let raw =
            b"POST /matrix HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"GET /healthz HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let first = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.body, b"{\"a\"");
        assert!(!first.wants_close());
        let second = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(second.path, "/healthz");
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_framing() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            &b"GET / SPDY/3\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbadheader\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nContent-Length: wat\r\n\r\n"[..],
        ] {
            let err = read_request(&mut BufReader::new(raw)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{raw:?}");
        }
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = read_request(&mut BufReader::new(raw.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn http_1_0_defaults_to_close() {
        // A 1.0 client without `Connection: keep-alive` must be closed
        // after the exchange — answering `keep-alive` left it hanging
        // until the idle reap.
        let raw = b"GET / HTTP/1.0\r\nHost: a\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.minor, 0);
        assert!(req.wants_close());

        let raw = b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert!(!req.wants_close(), "explicit 1.0 keep-alive persists");

        // HTTP/1.1 still defaults to persistent.
        let raw = b"GET / HTTP/1.1\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert!(!req.wants_close());
    }

    #[test]
    fn connection_header_is_a_comma_separated_list() {
        for (value, close) in [
            ("close", true),
            ("Close", true),
            ("keep-alive, close", true),
            ("Keep-Alive ,  CLOSE", true),
            ("te, close", true),
            ("keep-alive", false),
            ("te, keep-alive", false),
            ("closed", false), // not the `close` token
        ] {
            let raw = format!("GET / HTTP/1.1\r\nConnection: {value}\r\n\r\n");
            let req = read_request(&mut BufReader::new(raw.as_bytes()))
                .unwrap()
                .unwrap();
            assert_eq!(req.wants_close(), close, "Connection: {value:?}");
        }
    }

    #[test]
    fn chunked_bodies_are_rejected_with_501() {
        let raw =
            b"POST /matrix HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwat!\r\n0\r\n\r\n";
        let err = parse_request(&raw[..]).unwrap_err();
        assert_eq!(err.status, 501);
        // The blocking reader surfaces it as InvalidData like any
        // other framing failure.
        assert_eq!(
            read_request(&mut BufReader::new(&raw[..]))
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidData
        );
        // Ordinary requests with a TE header and no body are equally
        // rejected — the header itself signals unsupported framing.
        let raw = b"GET / HTTP/1.1\r\nTransfer-Encoding: gzip, chunked\r\n\r\n";
        assert_eq!(parse_request(&raw[..]).unwrap_err().status, 501);
    }

    #[test]
    fn incremental_parse_reports_partial_until_complete() {
        let full = b"POST /matrix HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        for cut in 0..full.len() {
            assert!(
                matches!(parse_request(&full[..cut]), Ok(Parse::Partial)),
                "cut at {cut}"
            );
        }
        match parse_request(full) {
            Ok(Parse::Complete(req, used)) => {
                assert_eq!(used, full.len());
                assert_eq!(req.body, b"body");
            }
            other => panic!("expected complete parse, got {other:?}"),
        }
        // Leading stray CRLFs between pipelined requests are skipped
        // and counted into the consumed span.
        let padded = [&b"\r\n\r\n"[..], &full[..]].concat();
        match parse_request(&padded) {
            Ok(Parse::Complete(req, used)) => {
                assert_eq!(used, padded.len());
                assert_eq!(req.path, "/matrix");
            }
            other => panic!("expected complete parse, got {other:?}"),
        }
    }

    #[test]
    fn oversized_header_lines_fail_even_unterminated() {
        let mut raw = b"GET / HTTP/1.1\r\nx: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_LINE + 2));
        assert!(parse_request(&raw).is_err(), "unterminated overlong line");
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(parse_request(&raw).is_err(), "terminated overlong line");
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".to_string()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn overloaded_response_carries_retry_after() {
        let resp = Response::overloaded("request queue full", 1);
        let text = String::from_utf8(render_response(&resp, false)).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("request queue full"));
    }
}
