//! Route dispatch: assembles every experiment endpoint from cached
//! cells and renders JSON.
//!
//! The figure/table assembly mirrors `distvliw_core::experiments` —
//! same cells, same arithmetic — but goes through
//! [`ServeEngine::run_cells`] so repeated and overlapping requests are
//! served from the result cache.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use distvliw_arch::{AccessClass, AttractionBufferConfig, MachineConfig};
use distvliw_core::experiments::{
    sweep_machine, sweep_row, table3, table5, SweepSpec, SWEEP_DEFAULT_SUITE_NAMES, SWEEP_SOLUTIONS,
};
use distvliw_core::{derive_hybrid, Heuristic, PipelineError, Solution, SuiteStats};
use distvliw_ir::Suite;
use distvliw_obs::logger;
use distvliw_obs::trace::{self, SpanRecord, TraceCtx, TraceSink};

use crate::engine::{machine_with_overrides, CellSpec, ServeEngine};
use crate::http::{Request, Response};
use crate::json::{self, Json};

/// Requests slower than this (total wall millis) emit a `slow_request`
/// warning through the structured logger. `u64::MAX` disables the
/// check; `serve --slow-ms` sets it.
static SLOW_REQUEST_MS: AtomicU64 = AtomicU64::new(u64::MAX);

/// Sets the slow-request warning threshold in milliseconds.
pub fn set_slow_request_ms(ms: u64) {
    SLOW_REQUEST_MS.store(ms, Ordering::Relaxed);
}

/// Handles one request with full observability: a per-request trace
/// context (so every phase span lands in this request's tree), the
/// HTTP-layer metrics, the JSON access-log line, the slow-request
/// warning, and — with `?trace=1` — the request's own span tree wrapped
/// around the response body. `parse_start`/`parse_dur` time the framing
/// read, which happened before this function could open a context.
#[must_use]
pub fn serve_request(
    engine: &ServeEngine,
    request: &Request,
    parse_start: Instant,
    parse_dur: Duration,
) -> Response {
    let start = Instant::now();
    let wants_trace = request.query_param("trace").is_some_and(|v| v == "1");
    // The sink is only needed when somebody will read the collected
    // spans; without it, spans still reach the global rings.
    let sink = (wants_trace || logger::access_enabled()).then(TraceSink::new);
    let ctx = sink
        .as_ref()
        .map_or_else(TraceCtx::default, TraceCtx::for_sink);
    let mut response = trace::with_ctx(ctx, || {
        let mut root = trace::Span::enter("request");
        root.field_str("method", request.method.clone());
        root.field_str("path", request.path.clone());
        trace::record("parse", parse_start, parse_dur, Vec::new());
        let response = handle(engine, request);
        root.field_u64("status", u64::from(response.status));
        response
    });
    let total = parse_dur + start.elapsed();

    let reg = distvliw_obs::global();
    let label = route_label(&request.path);
    reg.counter_with(
        "serve_http_requests_total",
        "Requests served, by (normalized) path",
        &[("path", &label)],
    )
    .inc();
    reg.histogram(
        "serve_http_request_duration_us",
        "Total request wall time (parse through render) in microseconds",
    )
    .record_micros(total);
    reg.counter(
        "serve_http_response_bytes_total",
        "Response body bytes written",
    )
    .add(response.body.len() as u64);

    let slow_ms = SLOW_REQUEST_MS.load(Ordering::Relaxed);
    if total.as_millis() as u64 >= slow_ms {
        reg.counter(
            "serve_http_slow_requests_total",
            "Requests slower than the configured threshold",
        )
        .inc();
        logger::event(
            "warn",
            "slow_request",
            &[
                ("method", request.method.as_str().into()),
                ("path", request.path.as_str().into()),
                ("total_ms", (total.as_millis() as u64).into()),
                ("threshold_ms", slow_ms.into()),
            ],
        );
    }

    if let Some(sink) = sink {
        let (records, dropped) = sink.take();
        let phase = |name: &str| -> u64 {
            records
                .iter()
                .filter(|r| r.name == name)
                .map(|r| r.dur_ns / 1_000)
                .sum()
        };
        if logger::access_enabled() {
            let outcome = if records.iter().any(|r| r.name == "compile") {
                "computed"
            } else if records.iter().any(|r| r.name == "flight_wait") {
                "flight"
            } else if records.iter().any(|r| {
                r.name == "cache_lookup"
                    && r.fields.iter().any(|(k, v)| {
                        *k == "outcome" && matches!(v, trace::FieldValue::Str(s) if s == "hit")
                    })
            }) {
                "hit"
            } else {
                "none"
            };
            logger::access(&[
                ("method", request.method.as_str().into()),
                ("path", request.path.as_str().into()),
                ("status", u64::from(response.status).into()),
                ("cache", outcome.into()),
                ("bytes", (response.body.len() as u64).into()),
                ("total_us", (total.as_micros() as u64).into()),
                ("parse_us", phase("parse").into()),
                ("cache_lookup_us", phase("cache_lookup").into()),
                ("flight_wait_us", phase("flight_wait").into()),
                ("compile_us", phase("compile").into()),
                ("sim_us", phase("sim").into()),
                ("persist_us", phase("persist").into()),
            ]);
        }
        if wants_trace && response.content_type == "application/json" {
            let tree = span_tree(&records);
            let mut body = Vec::with_capacity(response.body.len() + 256);
            body.extend_from_slice(b"{\"trace\":");
            body.extend_from_slice(tree.render().as_bytes());
            body.extend_from_slice(b",\"dropped_spans\":");
            body.extend_from_slice(dropped.to_string().as_bytes());
            body.extend_from_slice(b",\"response\":");
            body.extend_from_slice(&response.body);
            body.push(b'}');
            response.body = body;
        }
    }
    response
}

/// Collapses request paths onto the route set so the per-path counter
/// stays bounded under 404 scans.
fn route_label(path: &str) -> String {
    match path {
        "/" | "/healthz" | "/stats" | "/metrics" | "/debug/trace" | "/fig6" | "/fig7" | "/fig9"
        | "/table3" | "/table4" | "/table5" | "/nobal" | "/sweep" | "/matrix" | "/shutdown" => {
            path.to_string()
        }
        _ => "other".to_string(),
    }
}

/// Renders one span as JSON (durations in microseconds).
fn span_json(r: &SpanRecord, children: Json) -> Json {
    let fields: Vec<(String, Json)> = r
        .fields
        .iter()
        .map(|(k, v)| {
            let v = match v {
                trace::FieldValue::U64(n) => Json::U64(*n),
                trace::FieldValue::Str(s) => Json::str(s.clone()),
            };
            ((*k).to_string(), v)
        })
        .collect();
    let mut pairs = vec![
        ("name", Json::str(r.name)),
        ("start_us", Json::U64(r.start_us)),
        ("dur_us", Json::U64(r.dur_ns / 1_000)),
    ];
    if !fields.is_empty() {
        pairs.push(("fields", Json::Obj(fields)));
    }
    match children {
        Json::Arr(c) if c.is_empty() => {}
        c => pairs.push(("children", c)),
    }
    Json::obj(pairs)
}

/// Assembles one request's flat span records into a parent→child tree,
/// children ordered by start time, roots at the top level.
fn span_tree(records: &[SpanRecord]) -> Json {
    let known: std::collections::BTreeSet<u64> = records.iter().map(|r| r.id).collect();
    let mut by_parent: std::collections::BTreeMap<u64, Vec<&SpanRecord>> =
        std::collections::BTreeMap::new();
    for r in records {
        let parent = if known.contains(&r.parent) {
            r.parent
        } else {
            0
        };
        by_parent.entry(parent).or_default().push(r);
    }
    for children in by_parent.values_mut() {
        children.sort_by_key(|r| (r.start_us, r.id));
    }
    fn render(id: u64, by_parent: &std::collections::BTreeMap<u64, Vec<&SpanRecord>>) -> Json {
        Json::Arr(
            by_parent
                .get(&id)
                .map(|children| {
                    children
                        .iter()
                        .map(|r| span_json(r, render(r.id, by_parent)))
                        .collect()
                })
                .unwrap_or_default(),
        )
    }
    render(0, &by_parent)
}

/// Handles one request against the engine. Unknown paths get 404,
/// wrong methods 405, malformed bodies 400.
#[must_use]
pub fn handle(engine: &ServeEngine, request: &Request) -> Response {
    if request.path == "/metrics" {
        return if request.method == "GET" {
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: metrics_text(engine).into_bytes(),
                extra_headers: Vec::new(),
            }
        } else {
            ApiError::MethodNotAllowed.into_response()
        };
    }
    let result = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/") => Ok(index()),
        ("GET", "/healthz") => Ok(healthz()),
        ("GET", "/stats") => Ok(stats(engine)),
        ("GET", "/debug/trace") => Ok(debug_trace(request)),
        ("GET", "/fig6") => fig6(engine),
        ("GET", "/fig7") => exec_rows(engine, engine.machine(), "fig7"),
        ("GET", "/fig9") => {
            let machine = engine
                .machine()
                .clone()
                .with_attraction_buffers(AttractionBufferConfig::paper());
            exec_rows(engine, &machine, "fig9")
        }
        ("GET", "/table3") => Ok(table3_json()),
        ("GET", "/table4") => table4_json(engine),
        ("GET", "/table5") => Ok(table5_json()),
        ("GET", "/nobal") => nobal_json(engine),
        ("GET", "/sweep") => sweep_json(engine),
        ("POST", "/matrix") => matrix(engine, &request.body),
        (
            _,
            "/" | "/healthz" | "/stats" | "/debug/trace" | "/fig6" | "/fig7" | "/fig9" | "/table3"
            | "/table4" | "/table5" | "/nobal" | "/sweep" | "/matrix",
        ) => Err(ApiError::MethodNotAllowed),
        _ => Err(ApiError::NotFound),
    };
    match result {
        Ok(body) => Response::json(200, body.render()),
        Err(e) => e.into_response(),
    }
}

/// Endpoint-level failures.
enum ApiError {
    NotFound,
    MethodNotAllowed,
    BadRequest(String),
    Internal(String),
}

impl ApiError {
    fn into_response(self) -> Response {
        let (status, msg) = match self {
            ApiError::NotFound => (404, "not found".to_string()),
            ApiError::MethodNotAllowed => (405, "method not allowed".to_string()),
            ApiError::BadRequest(msg) => (400, msg),
            ApiError::Internal(msg) => (500, msg),
        };
        Response::json(status, Json::obj(vec![("error", Json::str(msg))]).render())
    }
}

fn pipeline_err(e: &PipelineError) -> ApiError {
    ApiError::Internal(e.to_string())
}

fn index() -> Json {
    Json::obj(vec![
        ("service", Json::str("distvliw-serve")),
        (
            "endpoints",
            Json::Arr(
                [
                    "GET /healthz",
                    "GET /stats",
                    "GET /metrics",
                    "GET /debug/trace",
                    "GET /fig6",
                    "GET /fig7",
                    "GET /fig9",
                    "GET /table3",
                    "GET /table4",
                    "GET /table5",
                    "GET /nobal",
                    "GET /sweep",
                    "POST /matrix",
                    "POST /shutdown",
                ]
                .iter()
                .map(|s| Json::str(*s))
                .collect(),
            ),
        ),
    ])
}

fn healthz() -> Json {
    Json::obj(vec![("status", Json::str("ok"))])
}

/// Appends one counter-style family in Prometheus text format.
fn push_family(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    );
}

/// The `/metrics` exposition: the process-global registry (sched, sim,
/// sweep and HTTP families, in deterministic sorted order) followed by
/// the engine-owned families, collected from [`ServeEngine::stats`] at
/// scrape time so they have exactly one source of truth.
fn metrics_text(engine: &ServeEngine) -> String {
    let mut out = distvliw_obs::global().render_prometheus();
    let s = engine.stats();
    let c = |out: &mut String, name, help, value| push_family(out, name, "counter", help, value);
    let g = |out: &mut String, name, help, value| push_family(out, name, "gauge", help, value);
    c(
        &mut out,
        "serve_cache_hits_total",
        "Cell-cache lookup hits",
        s.cache.hits,
    );
    c(
        &mut out,
        "serve_cache_misses_total",
        "Cell-cache lookup misses",
        s.cache.misses,
    );
    c(
        &mut out,
        "serve_cache_evictions_total",
        "Cell-cache LRU evictions",
        s.cache.evictions,
    );
    c(
        &mut out,
        "serve_cache_insertions_total",
        "Cell-cache insertions",
        s.cache.insertions,
    );
    g(
        &mut out,
        "serve_cache_entries",
        "Resident cell-cache entries",
        s.cache_entries as u64,
    );
    g(
        &mut out,
        "serve_cache_capacity",
        "Configured cell-cache capacity",
        s.cache_capacity as u64,
    );
    c(
        &mut out,
        "serve_cells_computed_total",
        "Cells computed by the pipeline (cache misses that led the flight)",
        s.computed_cells,
    );
    c(
        &mut out,
        "serve_flight_deduped_requests_total",
        "Requests served by piggybacking on an identical in-flight computation",
        s.deduped_requests,
    );
    c(
        &mut out,
        "serve_seeded_kernels_total",
        "Kernels whose II search opened from a profitable seed",
        s.seeded_kernels,
    );
    if let Some(p) = s.persist {
        c(
            &mut out,
            "serve_persist_appended_records_total",
            "Records appended to the state logs",
            p.appended_records,
        );
        c(
            &mut out,
            "serve_persist_compactions_total",
            "Atomic compact-and-rewrite passes of the cell log",
            p.compactions,
        );
        c(
            &mut out,
            "serve_persist_flushes_total",
            "Explicit state flushes (periodic and shutdown)",
            p.flushes,
        );
        c(
            &mut out,
            "serve_persist_write_errors_total",
            "State-log writes that failed with an I/O error",
            p.write_errors,
        );
    }
    g(
        &mut out,
        "serve_uptime_seconds",
        "Seconds since the engine started",
        s.uptime_ms / 1000,
    );
    g(
        &mut out,
        "serve_process_threads",
        "OS threads in this process (loop + workers + flusher; 0 without procfs)",
        distvliw_obs::process_threads(),
    );
    out
}

/// `GET /debug/trace?n=K`: the `K` most recently finished spans across
/// all threads (default 64), oldest first.
fn debug_trace(request: &Request) -> Json {
    let n = request
        .query_param("n")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(64)
        .min(65_536);
    let spans = trace::recent(n);
    Json::obj(vec![
        ("count", Json::U64(spans.len() as u64)),
        (
            "spans",
            Json::Arr(
                spans
                    .iter()
                    .map(|r| {
                        let mut pairs = vec![
                            ("id", Json::U64(r.id)),
                            ("parent", Json::U64(r.parent)),
                            ("trace", Json::U64(r.trace)),
                        ];
                        if let Json::Obj(more) = span_json(r, Json::Arr(Vec::new())) {
                            pairs.extend(more.iter().map(|(k, v)| (k.as_str(), v.clone())));
                            Json::obj(pairs)
                        } else {
                            Json::obj(pairs)
                        }
                    })
                    .collect(),
            ),
        ),
    ])
}

fn stats(engine: &ServeEngine) -> Json {
    let s = engine.stats();
    let counters: Vec<(String, Json)> = distvliw_obs::global()
        .counter_snapshot()
        .into_iter()
        .map(|(name, value)| (name, Json::U64(value)))
        .collect();
    let accesses: Vec<Json> = (0..s.cluster.accesses.len())
        .map(|c| Json::U64(s.cluster.accesses_of(c)))
        .collect();
    let violations: Vec<Json> = s
        .cluster
        .violations
        .as_slice()
        .iter()
        .map(|&v| Json::U64(v))
        .collect();
    Json::obj(vec![
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::U64(s.cache.hits)),
                ("misses", Json::U64(s.cache.misses)),
                ("evictions", Json::U64(s.cache.evictions)),
                ("insertions", Json::U64(s.cache.insertions)),
                ("entries", Json::U64(s.cache_entries as u64)),
                ("capacity", Json::U64(s.cache_capacity as u64)),
            ]),
        ),
        ("computed_cells", Json::U64(s.computed_cells)),
        ("deduped_requests", Json::U64(s.deduped_requests)),
        ("seeded_kernels", Json::U64(s.seeded_kernels)),
        (
            "persist",
            match s.persist {
                None => Json::Null,
                Some(p) => Json::obj(vec![
                    ("loaded_cells", Json::U64(p.loaded_cells)),
                    ("loaded_seeds", Json::U64(p.loaded_seeds)),
                    ("discarded_records", Json::U64(p.discarded_records)),
                    ("discarded_bytes", Json::U64(p.discarded_bytes)),
                    ("stale_stores", Json::U64(p.stale_stores)),
                    ("appended_records", Json::U64(p.appended_records)),
                    ("compactions", Json::U64(p.compactions)),
                    ("flushes", Json::U64(p.flushes)),
                    ("write_errors", Json::U64(p.write_errors)),
                ]),
            },
        ),
        (
            "cluster",
            Json::obj(vec![
                ("accesses", Json::Arr(accesses)),
                ("violations", Json::Arr(violations)),
                ("imbalance", Json::F64(s.cluster.imbalance())),
                ("mem_bus_grants", Json::U64(s.cluster.mem_bus_grants)),
                ("next_level_grants", Json::U64(s.cluster.next_level_grants)),
            ]),
        ),
        ("uptime_ms", Json::U64(s.uptime_ms)),
        ("uptime_secs", Json::U64(s.uptime_ms / 1000)),
        ("threads", Json::U64(distvliw_obs::process_threads())),
        (
            "build",
            Json::obj(vec![
                ("version", Json::str(env!("CARGO_PKG_VERSION"))),
                (
                    "git",
                    Json::str(option_env!("DISTVLIW_GIT_DESCRIBE").unwrap_or("unknown")),
                ),
            ]),
        ),
        ("counters", Json::Obj(counters)),
    ])
}

/// Unwraps a batch of cell results, surfacing the first failure.
fn all_ok(results: &[crate::engine::CellResult]) -> Result<Vec<&SuiteStats>, ApiError> {
    results
        .iter()
        .map(|r| r.as_ref().as_ref().map_err(pipeline_err))
        .collect()
}

fn breakdown(stats: &SuiteStats) -> Json {
    let field = |class: AccessClass| Json::F64(stats.total.accesses.fraction(class));
    Json::obj(vec![
        ("local_hit", field(AccessClass::LocalHit)),
        ("remote_hit", field(AccessClass::RemoteHit)),
        ("local_miss", field(AccessClass::LocalMiss)),
        ("remote_miss", field(AccessClass::RemoteMiss)),
        ("combined", field(AccessClass::Combined)),
    ])
}

/// The Free/MDC/DDGT × PrefClus grid over the figure suites — the cell
/// set `/fig6` and `/table4` are both assembled from (shared through
/// the cache).
fn prefclus_grid<'a>(engine: &'a ServeEngine, suites: &[&'a Suite]) -> Vec<CellSpec<'a>> {
    let mut specs = Vec::with_capacity(suites.len() * 3);
    for suite in suites {
        for solution in [Solution::Free, Solution::Mdc, Solution::Ddgt] {
            specs.push(CellSpec {
                suite,
                machine: engine.machine(),
                solution,
                heuristic: Heuristic::PrefClus,
            });
        }
    }
    specs
}

/// Figure 6: per-suite access classification for Free/MDC/DDGT under
/// PrefClus.
fn fig6(engine: &ServeEngine) -> Result<Json, ApiError> {
    let suites: Vec<&Suite> = engine.figure_suites().collect();
    let results = engine.run_cells(&prefclus_grid(engine, &suites));
    let cells = all_ok(&results)?;
    let rows: Vec<Json> = suites
        .iter()
        .zip(cells.chunks(3))
        .map(|(suite, chunk)| {
            Json::obj(vec![
                ("benchmark", Json::str(suite.name.clone())),
                ("free", breakdown(chunk[0])),
                ("mdc", breakdown(chunk[1])),
                ("ddgt", breakdown(chunk[2])),
            ])
        })
        .collect();
    Ok(Json::obj(vec![
        ("figure", Json::str("fig6")),
        ("heuristic", Json::str("PrefClus")),
        ("rows", Json::Arr(rows)),
    ]))
}

fn bar(stats: &SuiteStats, baseline_total: u64) -> Json {
    let b = baseline_total.max(1) as f64;
    let compute = stats.total.compute_cycles as f64 / b;
    let stall = stats.total.stall_cycles as f64 / b;
    Json::obj(vec![
        ("compute", Json::F64(compute)),
        ("stall", Json::F64(stall)),
        ("total", Json::F64(compute + stall)),
    ])
}

/// Figure 7 / Figure 9: normalized execution time on `machine`.
fn exec_rows(
    engine: &ServeEngine,
    machine: &MachineConfig,
    figure: &str,
) -> Result<Json, ApiError> {
    const COMBOS: [(Solution, Heuristic); 4] = [
        (Solution::Mdc, Heuristic::PrefClus),
        (Solution::Mdc, Heuristic::MinComs),
        (Solution::Ddgt, Heuristic::PrefClus),
        (Solution::Ddgt, Heuristic::MinComs),
    ];
    let suites: Vec<&Suite> = engine.figure_suites().collect();
    let mut specs = Vec::with_capacity(suites.len() * 5);
    for suite in &suites {
        specs.push(CellSpec {
            suite,
            machine,
            solution: Solution::Free,
            heuristic: Heuristic::MinComs,
        });
        for (solution, heuristic) in COMBOS {
            specs.push(CellSpec {
                suite,
                machine,
                solution,
                heuristic,
            });
        }
    }
    let results = engine.run_cells(&specs);
    let cells = all_ok(&results)?;
    let rows: Vec<Json> = suites
        .iter()
        .zip(cells.chunks(5))
        .map(|(suite, chunk)| {
            let base = chunk[0].total_cycles();
            Json::obj(vec![
                ("benchmark", Json::str(suite.name.clone())),
                ("mdc_prefclus", bar(chunk[1], base)),
                ("mdc_mincoms", bar(chunk[2], base)),
                ("ddgt_prefclus", bar(chunk[3], base)),
                ("ddgt_mincoms", bar(chunk[4], base)),
            ])
        })
        .collect();
    Ok(Json::obj(vec![
        ("figure", Json::str(figure)),
        ("baseline", Json::str("Free/MinComs")),
        ("rows", Json::Arr(rows)),
    ]))
}

fn table3_json() -> Json {
    let rows: Vec<Json> = table3()
        .into_iter()
        .map(|row| {
            let (pc, pa) = match row.paper {
                Some((c, a)) => (Json::F64(c), Json::F64(a)),
                None => (Json::Null, Json::Null),
            };
            Json::obj(vec![
                ("benchmark", Json::str(row.benchmark)),
                ("cmr", Json::F64(row.stats.cmr)),
                ("car", Json::F64(row.stats.car)),
                ("paper_cmr", pc),
                ("paper_car", pa),
            ])
        })
        .collect();
    Json::obj(vec![
        ("table", Json::str("table3")),
        ("rows", Json::Arr(rows)),
    ])
}

/// Table 4: DDGT/MDC communication ratio and selected-loop speedups.
fn table4_json(engine: &ServeEngine) -> Result<Json, ApiError> {
    let suites: Vec<&Suite> = engine.figure_suites().collect();
    let results = engine.run_cells(&prefclus_grid(engine, &suites));
    let cells = all_ok(&results)?;
    let rows: Vec<Json> = suites
        .iter()
        .zip(cells.chunks(3))
        .map(|(suite, chunk)| {
            // The row arithmetic (including the ≥10%-slowdown loop
            // selection) is shared with the `table4` bin.
            let row = distvliw_core::experiments::Table4Row::from_stats(
                suite.name.clone(),
                chunk[0],
                chunk[1],
                chunk[2],
            );
            Json::obj(vec![
                ("benchmark", Json::str(row.benchmark)),
                ("comm_ratio", Json::F64(row.comm_ratio)),
                (
                    "selected_speedup",
                    row.selected_speedup.map_or(Json::Null, Json::F64),
                ),
            ])
        })
        .collect();
    Ok(Json::obj(vec![
        ("table", Json::str("table4")),
        ("rows", Json::Arr(rows)),
    ]))
}

fn table5_json() -> Json {
    let rows: Vec<Json> = table5()
        .into_iter()
        .map(|row| {
            let (poc, poa, pnc, pna) = row.paper;
            Json::obj(vec![
                ("benchmark", Json::str(row.benchmark)),
                ("old_cmr", Json::F64(row.old.cmr)),
                ("old_car", Json::F64(row.old.car)),
                ("new_cmr", Json::F64(row.new.cmr)),
                ("new_car", Json::F64(row.new.car)),
                (
                    "paper",
                    Json::Arr(vec![
                        Json::F64(poc),
                        Json::F64(poa),
                        Json::F64(pnc),
                        Json::F64(pna),
                    ]),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("table", Json::str("table5")),
        ("rows", Json::Arr(rows)),
    ])
}

/// The NOBAL bus-configuration study on both machine variants.
fn nobal_json(engine: &ServeEngine) -> Result<Json, ApiError> {
    let mut out = Vec::new();
    let suites: Vec<&Suite> = engine.figure_suites().collect();
    for (machine, title) in [
        (MachineConfig::nobal_mem(), "nobal_mem"),
        (MachineConfig::nobal_reg(), "nobal_reg"),
    ] {
        let mut specs = Vec::with_capacity(suites.len() * 3);
        for suite in &suites {
            for (solution, heuristic) in [
                (Solution::Mdc, Heuristic::PrefClus),
                (Solution::Mdc, Heuristic::MinComs),
                (Solution::Ddgt, Heuristic::PrefClus),
            ] {
                specs.push(CellSpec {
                    suite,
                    machine: &machine,
                    solution,
                    heuristic,
                });
            }
        }
        let results = engine.run_cells(&specs);
        let cells = all_ok(&results)?;
        let rows: Vec<Json> = suites
            .iter()
            .zip(cells.chunks(3))
            .map(|(suite, chunk)| {
                let best_mdc = chunk[0].total_cycles().min(chunk[1].total_cycles());
                let ddgt_pref = chunk[2].total_cycles();
                Json::obj(vec![
                    ("benchmark", Json::str(suite.name.clone())),
                    ("best_mdc", Json::U64(best_mdc)),
                    ("ddgt_prefclus", Json::U64(ddgt_pref)),
                    (
                        "ddgt_speedup",
                        Json::F64(best_mdc as f64 / ddgt_pref.max(1) as f64 - 1.0),
                    ),
                ])
            })
            .collect();
        out.push((title, Json::Arr(rows)));
    }
    Ok(Json::obj(
        std::iter::once(("study", Json::str("nobal")))
            .chain(out)
            .collect::<Vec<_>>(),
    ))
}

/// `GET /sweep`: the default cluster-count × memory-bus sensitivity
/// sweep over [`distvliw_core::experiments::sweep_default_suites`],
/// assembled from cached cells. The aggregation goes through the same
/// [`sweep_row`] fold as `distvliw_core::experiments::sweep`, so the
/// served numbers are identical to a direct pipeline sweep — the only
/// difference is that every `(suite, machine, solution)` cell is
/// memoized, deduplicated and sharded like any other request. Like the
/// factored sweep runner, only the three concrete solutions are
/// computed; the Hybrid rows are derived per loop from the MDC and
/// DDGT cells ([`derive_hybrid`]), which drops a quarter of the grid's
/// compile+simulate work without changing a byte of the response.
fn sweep_json(engine: &ServeEngine) -> Result<Json, ApiError> {
    const CONCRETE: [Solution; 3] = [Solution::Free, Solution::Mdc, Solution::Ddgt];
    let spec = SweepSpec::default();
    let suites: Vec<&Suite> = SWEEP_DEFAULT_SUITE_NAMES
        .iter()
        .map(|name| {
            engine
                .suite(name)
                .expect("default sweep suites are bundled")
        })
        .collect();

    // Grid machines first (specs borrow them), in sweep nesting order.
    let mut machines = Vec::with_capacity(spec.cluster_counts.len() * spec.mem_buses.len());
    for &n_clusters in &spec.cluster_counts {
        for &mem_buses in &spec.mem_buses {
            machines.push((
                n_clusters,
                mem_buses,
                sweep_machine(engine.machine(), n_clusters, mem_buses),
            ));
        }
    }
    let mut specs = Vec::with_capacity(machines.len() * CONCRETE.len() * suites.len());
    for (_, _, machine) in &machines {
        for solution in CONCRETE {
            for suite in &suites {
                specs.push(CellSpec {
                    suite,
                    machine,
                    solution,
                    heuristic: spec.heuristic,
                });
            }
        }
    }
    let results = engine.run_cells(&specs);
    let cells = all_ok(&results)?;

    let mut rows = Vec::new();
    for ((n_clusters, mem_buses, _), point) in machines
        .iter()
        .zip(cells.chunks(CONCRETE.len() * suites.len()))
    {
        // The derived hybrid suites must outlive the row loop below.
        let hybrid: Vec<SuiteStats> = point[suites.len()..2 * suites.len()]
            .iter()
            .zip(&point[2 * suites.len()..])
            .map(|(mdc, ddgt)| derive_hybrid(mdc, ddgt))
            .collect();
        let mut point_rows: Vec<(Solution, Vec<&SuiteStats>)> = CONCRETE
            .iter()
            .zip(point.chunks(suites.len()))
            .map(|(&solution, chunk)| (solution, chunk.to_vec()))
            .collect();
        point_rows.push((Solution::Hybrid, hybrid.iter().collect()));
        debug_assert_eq!(point_rows.len(), SWEEP_SOLUTIONS.len());
        for (solution, per_suite) in &point_rows {
            let row = sweep_row(*n_clusters, *mem_buses, *solution, per_suite);
            let shares: Vec<Json> = (0..row.n_clusters)
                .map(|c| Json::U64(row.cluster.accesses_of(c)))
                .collect();
            rows.push(Json::obj(vec![
                ("n_clusters", Json::U64(row.n_clusters as u64)),
                ("mem_bus_count", Json::U64(row.mem_buses.count as u64)),
                (
                    "mem_bus_latency",
                    Json::U64(u64::from(row.mem_buses.latency)),
                ),
                ("solution", Json::str(row.solution.to_string())),
                ("total_cycles", Json::U64(row.total_cycles)),
                ("stall_cycles", Json::U64(row.stall_cycles)),
                ("bus_busy_cycles", Json::U64(row.bus_busy_cycles)),
                ("bus_drain_cycles", Json::U64(row.bus_drain_cycles)),
                ("bus_occupancy", Json::F64(row.bus_occupancy())),
                ("violations", Json::U64(row.violations)),
                ("accesses", Json::U64(row.accesses)),
                ("imbalance", Json::F64(row.imbalance())),
                ("accesses_by_cluster", Json::Arr(shares)),
            ]));
        }
    }
    Ok(Json::obj(vec![
        ("sweep", Json::str("default")),
        ("heuristic", Json::str(spec.heuristic.to_string())),
        (
            "suites",
            Json::Arr(suites.iter().map(|s| Json::str(s.name.clone())).collect()),
        ),
        ("rows", Json::Arr(rows)),
    ]))
}

/// One cell of a `/matrix` response.
fn cell_json(
    suite: &str,
    solution: Solution,
    heuristic: Heuristic,
    result: &Result<SuiteStats, PipelineError>,
) -> Json {
    let mut pairs = vec![
        ("suite", Json::str(suite)),
        ("solution", Json::str(solution.to_string())),
        ("heuristic", Json::str(heuristic.to_string())),
    ];
    match result {
        Err(e) => {
            pairs.push(("ok", Json::Bool(false)));
            pairs.push(("error", Json::str(e.to_string())));
        }
        Ok(stats) => {
            pairs.push(("ok", Json::Bool(true)));
            pairs.push(("total_cycles", Json::U64(stats.total_cycles())));
            pairs.push(("compute_cycles", Json::U64(stats.total.compute_cycles)));
            pairs.push(("stall_cycles", Json::U64(stats.total.stall_cycles)));
            pairs.push(("local_hit_ratio", Json::F64(stats.local_hit_ratio())));
            pairs.push(("comm_ops", Json::U64(stats.total.comm_ops)));
            pairs.push((
                "coherence_violations",
                Json::U64(stats.total.coherence_violations),
            ));
            pairs.push(("bus_busy_cycles", Json::U64(stats.total.bus_busy_cycles)));
            pairs.push(("imbalance", Json::F64(stats.cluster.imbalance())));
            pairs.push((
                "kernels",
                Json::Arr(
                    stats
                        .kernels
                        .iter()
                        .map(|k| {
                            Json::obj(vec![
                                ("name", Json::str(k.name.clone())),
                                ("ii", Json::U64(u64::from(k.ii))),
                                ("span", Json::U64(u64::from(k.span))),
                                ("total_cycles", Json::U64(k.stats.total_cycles())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
    }
    Json::obj(pairs)
}

/// `POST /matrix`: run an arbitrary experiment grid.
///
/// Body: `{"suites": [...], "solutions": [...], "heuristics": [...],
/// "machine": {...}}`. Suites are required; solutions default to
/// `["mdc","ddgt"]`, heuristics to `["prefclus"]`, the machine to the
/// server's configured machine plus any overrides.
fn matrix(engine: &ServeEngine, body: &[u8]) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::BadRequest("body is not utf-8".to_string()))?;
    let parsed = json::parse(text).map_err(|e| ApiError::BadRequest(format!("bad json: {e}")))?;

    let suite_names: Vec<&str> = parsed
        .get("suites")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::BadRequest("`suites` must be an array".to_string()))?
        .iter()
        .map(|v| {
            v.as_str()
                .ok_or_else(|| ApiError::BadRequest("suite names must be strings".to_string()))
        })
        .collect::<Result<_, _>>()?;
    if suite_names.is_empty() {
        return Err(ApiError::BadRequest(
            "`suites` must be nonempty".to_string(),
        ));
    }
    let suites: Vec<&Suite> = suite_names
        .iter()
        .map(|name| {
            engine
                .suite(name)
                .ok_or_else(|| ApiError::BadRequest(format!("unknown suite `{name}`")))
        })
        .collect::<Result<_, _>>()?;

    fn parse_list<T: std::str::FromStr<Err = String>>(
        parsed: &Json,
        field: &str,
        default: Vec<T>,
    ) -> Result<Vec<T>, ApiError> {
        match parsed.get(field) {
            None => Ok(default),
            Some(v) => v
                .as_array()
                .ok_or_else(|| ApiError::BadRequest(format!("`{field}` must be an array")))?
                .iter()
                .map(|item| {
                    item.as_str()
                        .ok_or_else(|| {
                            ApiError::BadRequest(format!("`{field}` entries must be strings"))
                        })?
                        .parse::<T>()
                        .map_err(ApiError::BadRequest)
                })
                .collect(),
        }
    }
    let solutions = parse_list(&parsed, "solutions", vec![Solution::Mdc, Solution::Ddgt])?;
    let heuristics = parse_list(&parsed, "heuristics", vec![Heuristic::PrefClus])?;
    if solutions.is_empty() || heuristics.is_empty() {
        return Err(ApiError::BadRequest(
            "`solutions` and `heuristics` must be nonempty".to_string(),
        ));
    }

    let machine = match parsed.get("machine") {
        None => engine.machine().clone(),
        Some(overrides) => {
            machine_with_overrides(engine.machine(), overrides).map_err(ApiError::BadRequest)?
        }
    };

    // The pipeline always runs a suite at the *suite's* interleave
    // (paper Table 1), so an `interleave_bytes` override must be
    // applied to the suites themselves or it would silently change
    // nothing but the cache key.
    let override_interleave = parsed
        .get("machine")
        .and_then(|m| m.get("interleave_bytes"))
        .and_then(Json::as_u64);
    let reinterleaved: Option<Vec<Suite>> = override_interleave.map(|bytes| {
        suites
            .iter()
            .map(|s| {
                let mut s = (*s).clone();
                s.interleave_bytes = bytes;
                s
            })
            .collect()
    });
    let suites: Vec<&Suite> = match &reinterleaved {
        Some(owned) => owned.iter().collect(),
        None => suites,
    };

    // The same (suite, solution, heuristic) nesting order as
    // `Pipeline::run_matrix`, sharded the same way.
    let mut specs = Vec::new();
    for suite in &suites {
        for &solution in &solutions {
            for &heuristic in &heuristics {
                specs.push(CellSpec {
                    suite,
                    machine: &machine,
                    solution,
                    heuristic,
                });
            }
        }
    }
    let results = engine.run_cells(&specs);
    let cells: Vec<Json> = specs
        .iter()
        .zip(&results)
        .map(|(spec, result)| {
            cell_json(
                &spec.suite.name,
                spec.solution,
                spec.heuristic,
                result.as_ref(),
            )
        })
        .collect();
    Ok(Json::obj(vec![("cells", Json::Arr(cells))]))
}
