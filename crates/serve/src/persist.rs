//! Crash-safe on-disk persistence for the serving layer's warm state.
//!
//! Two stores survive restarts: the content-addressed cell cache
//! ([`crate::cache::ResultCache`], keyed by
//! [`distvliw_core::cachekey::cell_key`] bytes) and the pipeline's
//! profile-guided II-seed store ([`distvliw_core::IiSeedStore`], keyed
//! by its 128-bit configuration fingerprints). Both use the same
//! log-structured format (see `docs/persistence.md` for the spec):
//!
//! ```text
//! header:  magic "DVLS" · kind (4 bytes) · format version (u32 LE)
//!          · era length (u32 LE) · era bytes
//! record:  key length (u32 LE) · value length (u32 LE) · key · value
//!          · checksum (u64 LE, FNV-1a over the four preceding fields)
//! ```
//!
//! The format is append-friendly: a new entry (or a fresh value for an
//! existing key) is one appended record, and replaying records in file
//! order with last-wins semantics reconstructs the store. Loading
//! validates every frame and **truncates at the first torn or corrupt
//! record instead of failing the boot**: everything before the bad
//! frame is recovered, everything from it on is reported as discarded.
//! A header whose era fingerprint does not match the running binary's
//! [`era_bytes`] marks the whole store stale — its records are counted
//! and discarded, never trusted (a `canonical_bytes` encoding change
//! silently changes every key, so stale entries could alias fresh
//! ones).
//!
//! Compaction (on LRU eviction, and on shutdown flush) atomically
//! rewrites the live entries: write a temp file, fsync, rename over the
//! log. A crash at any point leaves either the old log or the complete
//! new one.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use distvliw_core::cachekey::{fnv1a64, CELL_KEY_VERSION};
use distvliw_core::{KernelRun, SchedStats, SchedTotals, SuiteStats};
use distvliw_sim::{ClusterUsage, SimStats};

/// Magic prefix of every store file ("DistVliw Log Store").
pub const MAGIC: [u8; 4] = *b"DVLS";

/// On-disk format version of the header/record framing itself; bump
/// when the framing (not the payload) changes.
pub const FORMAT_VERSION: u32 = 1;

/// Version of the [`SuiteStats`] value codec below; folded into
/// [`era_bytes`] so a codec change invalidates persisted cell values.
pub const VALUE_CODEC_VERSION: u8 = 1;

/// Store kind tag for the result-cache log.
pub const KIND_CELLS: [u8; 4] = *b"CELL";
/// Store kind tag for the II-seed log.
pub const KIND_SEEDS: [u8; 4] = *b"SEED";

/// The era fingerprint of the running binary: every format version the
/// persisted bytes transitively depend on. A mismatch in **any**
/// component — the machine encoding behind every key
/// ([`distvliw_arch::CANONICAL_BYTES_VERSION`]), the scheduler
/// projection inside the seed-store fingerprints
/// ([`distvliw_arch::SCHED_CANONICAL_BYTES_VERSION`]), the cell-key
/// layout ([`CELL_KEY_VERSION`]) or the value codec — marks a persisted
/// store stale, and stale stores are discarded wholesale rather than
/// trusted.
#[must_use]
pub fn era_bytes() -> [u8; 4] {
    [
        distvliw_arch::CANONICAL_BYTES_VERSION,
        distvliw_arch::SCHED_CANONICAL_BYTES_VERSION,
        CELL_KEY_VERSION,
        VALUE_CODEC_VERSION,
    ]
}

/// One recovered `(key bytes, value bytes)` pair.
pub type Record = (Vec<u8>, Vec<u8>);

/// What a load pass recovered and what it refused to trust.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Checksum-valid records recovered, in file order (before
    /// last-wins dedup by the consumer).
    pub recovered: u64,
    /// Well-formed records discarded because the store's era is stale.
    pub discarded_records: u64,
    /// Bytes dropped: everything from the first torn or corrupt frame
    /// on (0 for a clean log), or the whole file for a stale store.
    pub discarded_bytes: u64,
    /// Whether the whole store was rejected (bad magic/version or a
    /// stale era fingerprint).
    pub stale: bool,
}

/// Encodes the store header for `kind` under era `era`.
#[must_use]
pub fn encode_header(kind: [u8; 4], era: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + era.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&kind);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(era.len() as u32).to_le_bytes());
    out.extend_from_slice(era);
    out
}

/// Encodes one length-prefixed, checksummed record.
///
/// # Panics
///
/// Panics if `key` or `value` exceeds `u32::MAX` bytes (no real key or
/// encoded cell comes near this).
#[must_use]
pub fn encode_record(key: &[u8], value: &[u8]) -> Vec<u8> {
    let key_len = u32::try_from(key.len()).expect("key fits u32");
    let val_len = u32::try_from(value.len()).expect("value fits u32");
    let mut out = Vec::with_capacity(16 + key.len() + value.len());
    out.extend_from_slice(&key_len.to_le_bytes());
    out.extend_from_slice(&val_len.to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Parses one frame at `bytes[offset..]`. Returns the record and the
/// offset past it, or `None` if the frame is torn, overlong or fails
/// its checksum.
fn parse_record(bytes: &[u8], offset: usize) -> Option<(Record, usize)> {
    let rest = bytes.get(offset..)?;
    if rest.len() < 8 {
        return None;
    }
    let key_len = u32::from_le_bytes(rest[0..4].try_into().ok()?) as usize;
    let val_len = u32::from_le_bytes(rest[4..8].try_into().ok()?) as usize;
    // Bound before allocating: a corrupt length must not balloon memory.
    let body_len = 8usize
        .checked_add(key_len)?
        .checked_add(val_len)?
        .checked_add(8)?;
    if rest.len() < body_len {
        return None;
    }
    let frame = &rest[..body_len - 8];
    let want = u64::from_le_bytes(rest[body_len - 8..body_len].try_into().ok()?);
    if fnv1a64(frame) != want {
        return None;
    }
    let key = frame[8..8 + key_len].to_vec();
    let value = frame[8 + key_len..].to_vec();
    Some(((key, value), offset + body_len))
}

/// Decodes a whole store image: header validation, then record frames
/// until the first torn/corrupt one. Never panics and never returns a
/// record whose checksum did not validate; see [`LoadReport`] for what
/// was kept.
#[must_use]
pub fn decode_store(bytes: &[u8], kind: [u8; 4], era: &[u8]) -> (Vec<Record>, LoadReport) {
    let mut report = LoadReport::default();
    let header = encode_header(kind, era);
    let fresh = |report: &mut LoadReport| {
        report.stale = true;
        report.discarded_bytes = bytes.len() as u64;
    };
    // Era (or kind/version/magic) mismatch: parse the frames under the
    // *old* header's framing so the report can count what was thrown
    // away, but recover nothing.
    if bytes.len() < 16 || bytes[0..4] != MAGIC || bytes[4..8] != kind {
        if !bytes.is_empty() {
            fresh(&mut report);
        }
        return (Vec::new(), report);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("sliced 4 bytes"));
    let era_len = u32::from_le_bytes(bytes[12..16].try_into().expect("sliced 4 bytes")) as usize;
    let Some(stored_era) = bytes.get(16..16 + era_len) else {
        fresh(&mut report);
        return (Vec::new(), report);
    };
    let body_start = 16 + era_len;
    if version != FORMAT_VERSION || stored_era != era {
        // Stale store: count its (still well-formed) records for the
        // report, but the *whole* file is discarded — none of it can be
        // trusted under the running binary's encodings.
        report.stale = true;
        let mut offset = body_start;
        while let Some((_, next)) = parse_record(bytes, offset) {
            report.discarded_records += 1;
            offset = next;
        }
        report.discarded_bytes = bytes.len() as u64;
        return (Vec::new(), report);
    }
    debug_assert_eq!(&bytes[..body_start], &header[..]);

    let mut records = Vec::new();
    let mut offset = body_start;
    while let Some((record, next)) = parse_record(bytes, offset) {
        records.push(record);
        offset = next;
    }
    report.recovered = records.len() as u64;
    report.discarded_bytes = (bytes.len() - offset) as u64;
    (records, report)
}

/// An open store log: loads on open, appends records as they are
/// produced, and atomically compacts to the live entry set on demand.
#[derive(Debug)]
pub struct LogWriter {
    path: PathBuf,
    file: File,
    kind: [u8; 4],
    era: Vec<u8>,
}

impl LogWriter {
    /// Opens (or creates) the log at `path`, returning the recovered
    /// records in file order and the load report. A stale or corrupt
    /// tail is healed immediately: the file is atomically rewritten to
    /// exactly the recovered prefix, so the damage is not re-reported
    /// on every boot.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (not corruption, which is recovered).
    pub fn open(
        path: PathBuf,
        kind: [u8; 4],
        era: &[u8],
    ) -> io::Result<(LogWriter, Vec<Record>, LoadReport)> {
        let existing = match File::open(&path) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                Some(bytes)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let (records, report) = match &existing {
            Some(bytes) => decode_store(bytes, kind, era),
            None => (Vec::new(), LoadReport::default()),
        };
        // Heal: a fresh file gets a header; a damaged or stale one is
        // truncated to its recovered prefix via an atomic rewrite.
        let dirty = report.stale || report.discarded_bytes > 0 || existing.is_none();
        if dirty {
            write_atomic(
                &path,
                kind,
                era,
                records.iter().map(|(k, v)| (k.as_slice(), v.clone())),
            )?;
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        let writer = LogWriter {
            path,
            file,
            kind,
            era: era.to_vec(),
        };
        Ok((writer, records, report))
    }

    /// Appends one record and pushes it to the OS, so the entry
    /// survives a SIGKILL of this process (durability against power
    /// loss comes from the fsync at the next compaction or shutdown
    /// flush).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn append(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        // One write_all per record: a crash can tear the last frame
        // (healed at load) but never interleave two.
        self.file.write_all(&encode_record(key, value))
    }

    /// Atomically replaces the log with exactly `entries`, in iterator
    /// order: write a temp file, fsync it, rename over the log. The
    /// iterator order is what a reload replays, so callers pass live
    /// entries in least-recently-used-first order to preserve recency
    /// across restarts.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the previous log survives any failure
    /// before the rename.
    pub fn rewrite<'a, I>(&mut self, entries: I) -> io::Result<()>
    where
        I: Iterator<Item = (&'a [u8], Vec<u8>)>,
    {
        write_atomic(&self.path, self.kind, &self.era, entries)?;
        // The old handle points at the unlinked file; reopen on the new.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }

    /// Fsyncs the log (shutdown/periodic flush).
    ///
    /// # Errors
    ///
    /// Propagates the sync failure.
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// The log's path (for operator-facing reporting).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Writes `header + entries` to a temp file, fsyncs it, and renames it
/// over `path` — the atomic-replace primitive behind healing and
/// compaction.
fn write_atomic<'a, I>(path: &Path, kind: [u8; 4], era: &[u8], entries: I) -> io::Result<()>
where
    I: Iterator<Item = (&'a [u8], Vec<u8>)>,
{
    let tmp = path.with_extension("tmp");
    {
        let mut out = io::BufWriter::new(File::create(&tmp)?);
        out.write_all(&encode_header(kind, era))?;
        for (key, value) in entries {
            out.write_all(&encode_record(key, &value))?;
        }
        let file = out.into_inner().map_err(io::IntoInnerError::into_error)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

// ---------------------------------------------------------------------
// SuiteStats value codec
// ---------------------------------------------------------------------

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn push_sim_stats(out: &mut Vec<u8>, s: &SimStats) {
    push_u64(out, s.compute_cycles);
    push_u64(out, s.stall_cycles);
    for c in s.accesses.as_array() {
        push_u64(out, c);
    }
    push_u64(out, s.coherence_violations);
    push_u64(out, s.comm_ops);
    push_u64(out, s.iterations);
    push_u64(out, s.bus_busy_cycles);
    push_u64(out, s.bus_drain_cycles);
}

fn push_cluster(out: &mut Vec<u8>, c: &ClusterUsage) {
    push_u64(out, c.accesses.len() as u64);
    for a in &c.accesses {
        for v in a.as_array() {
            push_u64(out, v);
        }
    }
    let violations = c.violations.as_slice();
    push_u64(out, violations.len() as u64);
    for &v in violations {
        push_u64(out, v);
    }
    push_u64(out, c.mem_bus_grants);
    push_u64(out, c.next_level_grants);
}

fn push_sched_stats(out: &mut Vec<u8>, s: &SchedStats) {
    push_u64(out, u64::from(s.ii));
    push_u64(out, u64::from(s.mii));
    push_u64(out, u64::from(s.iis_tried));
    push_u64(out, s.placement_attempts);
    push_u64(out, s.ejections);
    match s.seeded_at {
        None => out.push(0),
        Some(ii) => {
            out.push(1);
            push_u64(out, u64::from(ii));
        }
    }
    push_u64(out, u64::from(s.max_reg_pressure));
}

/// Encodes a [`SuiteStats`] losslessly (all counters are integers; the
/// served ratios are derived at render time, so a decoded value renders
/// byte-identical JSON).
#[must_use]
pub fn suite_stats_bytes(stats: &SuiteStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 + stats.kernels.len() * 256);
    push_str(&mut out, &stats.name);
    push_u64(&mut out, stats.kernels.len() as u64);
    for k in &stats.kernels {
        push_str(&mut out, &k.name);
        push_u64(&mut out, u64::from(k.ii));
        push_u64(&mut out, u64::from(k.span));
        push_u64(&mut out, k.static_comm_ops as u64);
        push_sched_stats(&mut out, &k.sched);
        push_sim_stats(&mut out, &k.stats);
        push_cluster(&mut out, &k.cluster);
    }
    push_sim_stats(&mut out, &stats.total);
    push_cluster(&mut out, &stats.cluster);
    push_u64(&mut out, stats.sched.placement_attempts);
    push_u64(&mut out, stats.sched.ejections);
    push_u64(&mut out, stats.sched.iis_tried);
    push_u64(&mut out, stats.sched.seeded_kernels);
    push_u64(&mut out, u64::from(stats.sched.max_reg_pressure));
    out
}

/// Bounds-checked cursor over an encoded value; every read is fallible
/// so a corrupt (checksum-colliding) or truncated payload yields `None`
/// instead of a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u64(&mut self) -> Option<u64> {
        let chunk = self.bytes.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(chunk.try_into().ok()?))
    }

    fn u32_checked(&mut self) -> Option<u32> {
        u32::try_from(self.u64()?).ok()
    }

    fn usize_checked(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    /// A length that must be payable in at least `unit` remaining bytes
    /// per element — rejects corrupt lengths before any allocation.
    fn len_checked(&mut self, unit: usize) -> Option<usize> {
        let len = self.usize_checked()?;
        let remaining = self.bytes.len().saturating_sub(self.pos);
        (len.checked_mul(unit)? <= remaining).then_some(len)
    }

    fn str(&mut self) -> Option<String> {
        let len = self.len_checked(1)?;
        let chunk = self.bytes.get(self.pos..self.pos + len)?;
        self.pos += len;
        String::from_utf8(chunk.to_vec()).ok()
    }

    fn byte(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn sim_stats(&mut self) -> Option<SimStats> {
        let compute_cycles = self.u64()?;
        let stall_cycles = self.u64()?;
        let mut counts = [0u64; 5];
        for c in &mut counts {
            *c = self.u64()?;
        }
        Some(SimStats {
            compute_cycles,
            stall_cycles,
            accesses: distvliw_sim::AccessCounts::from_array(counts),
            coherence_violations: self.u64()?,
            comm_ops: self.u64()?,
            iterations: self.u64()?,
            bus_busy_cycles: self.u64()?,
            bus_drain_cycles: self.u64()?,
        })
    }

    fn cluster(&mut self) -> Option<ClusterUsage> {
        let n = self.len_checked(40)?;
        let mut accesses = Vec::with_capacity(n);
        for _ in 0..n {
            let mut counts = [0u64; 5];
            for c in &mut counts {
                *c = self.u64()?;
            }
            accesses.push(distvliw_sim::AccessCounts::from_array(counts));
        }
        let nv = self.len_checked(8)?;
        let mut violations = distvliw_sim::ClusterCounts::new(nv);
        for cluster in 0..nv {
            violations.add(cluster, self.u64()?);
        }
        Some(ClusterUsage {
            accesses,
            violations,
            mem_bus_grants: self.u64()?,
            next_level_grants: self.u64()?,
        })
    }

    fn sched_stats(&mut self) -> Option<SchedStats> {
        let ii = self.u32_checked()?;
        let mii = self.u32_checked()?;
        let iis_tried = self.u32_checked()?;
        let placement_attempts = self.u64()?;
        let ejections = self.u64()?;
        let seeded_at = match self.byte()? {
            0 => None,
            1 => Some(self.u32_checked()?),
            _ => return None,
        };
        Some(SchedStats {
            ii,
            mii,
            iis_tried,
            placement_attempts,
            ejections,
            seeded_at,
            max_reg_pressure: self.u32_checked()?,
        })
    }
}

/// Decodes [`suite_stats_bytes`] output. Returns `None` (never panics)
/// on any malformed payload; the caller counts that as a discarded
/// record.
#[must_use]
pub fn suite_stats_from_bytes(bytes: &[u8]) -> Option<SuiteStats> {
    let mut cur = Cursor { bytes, pos: 0 };
    let name = cur.str()?;
    let n_kernels = cur.len_checked(64)?;
    let mut kernels = Vec::with_capacity(n_kernels);
    for _ in 0..n_kernels {
        let name = cur.str()?;
        let ii = cur.u32_checked()?;
        let span = cur.u32_checked()?;
        let static_comm_ops = cur.usize_checked()?;
        let sched = cur.sched_stats()?;
        let stats = cur.sim_stats()?;
        let cluster = cur.cluster()?;
        kernels.push(KernelRun {
            name,
            ii,
            span,
            static_comm_ops,
            sched,
            stats,
            cluster,
        });
    }
    let total = cur.sim_stats()?;
    let cluster = cur.cluster()?;
    let sched = SchedTotals {
        placement_attempts: cur.u64()?,
        ejections: cur.u64()?,
        iis_tried: cur.u64()?,
        seeded_kernels: cur.u64()?,
        max_reg_pressure: cur.u32_checked()?,
    };
    // Trailing garbage means this is not a value we wrote.
    (cur.pos == bytes.len()).then_some(SuiteStats {
        name,
        kernels,
        total,
        cluster,
        sched,
    })
}
