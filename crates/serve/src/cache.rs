//! The content-addressed result cache and the in-flight request
//! deduplicator.
//!
//! [`ResultCache`] memoizes experiment-cell results under
//! [`CacheKey`]s (full canonical encodings, so hash collisions can
//! never alias entries) with least-recently-used eviction and
//! hit/miss/eviction counters. [`SingleFlight`] collapses concurrent
//! identical computations: the first caller computes, every concurrent
//! duplicate blocks on a condition variable and receives the leader's
//! result, so an identical request storm runs the pipeline exactly
//! once.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

use distvliw_core::cachekey::CacheKey;

/// Cache observability counters, as served by `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
}

struct Entry<V> {
    value: V,
    /// Last-touch tick; the minimum across entries is the LRU victim.
    lru: u64,
}

/// A bounded memo table keyed by canonical cell encodings, with LRU
/// eviction. Both `get` (on hit) and `insert` refresh an entry's
/// recency.
pub struct ResultCache<V> {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry<V>>,
    stats: CacheStats,
}

impl<V: Clone> ResultCache<V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ResultCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency on
    /// hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.lru = self.tick;
                self.stats.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry if the cache is full. Returns the evicted key, if any —
    /// the persistence layer compacts its log when an eviction changes
    /// the live set.
    pub fn insert(&mut self, key: CacheKey, value: V) -> Option<CacheKey> {
        self.tick += 1;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.value = value;
            entry.lru = self.tick;
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            // O(n) victim scan: capacities are small (hundreds of
            // cells), and this runs only on insert-past-capacity.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.lru)
                .map(|(k, _)| k.clone())
                .expect("full cache is nonempty");
            self.map.remove(&victim);
            self.stats.evictions += 1;
            evicted = Some(victim);
        }
        self.stats.insertions += 1;
        self.map.insert(
            key,
            Entry {
                value,
                lru: self.tick,
            },
        );
        evicted
    }

    /// Inserts `key` without touching the hit/miss/insertion counters —
    /// for restoring persisted entries at boot, so `/stats` still
    /// reflects only this process's traffic. Respects capacity (excess
    /// preloads evict silently, without counting) and assigns recency
    /// in call order: preload least-recently-used entries first.
    pub fn preload(&mut self, key: CacheKey, value: V) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.lru)
                .map(|(k, _)| k.clone())
                .expect("full cache is nonempty");
            self.map.remove(&victim);
        }
        self.map.insert(
            key,
            Entry {
                value,
                lru: self.tick,
            },
        );
    }

    /// Every resident entry, least recently used first — the order a
    /// compaction writes them, so a reload replays recency faithfully.
    #[must_use]
    pub fn entries_by_recency(&self) -> Vec<(CacheKey, V)> {
        let mut entries: Vec<(&CacheKey, &Entry<V>)> = self.map.iter().collect();
        entries.sort_by_key(|(_, e)| e.lru);
        entries
            .into_iter()
            .map(|(k, e)| (k.clone(), e.value.clone()))
            .collect()
    }

    /// Looks up `key` refreshing recency but **without** counting a hit
    /// or miss — for internal re-checks that already counted the
    /// lookup (the single-flight double-check), so `/stats` reports one
    /// outcome per request.
    pub fn get_uncounted(&mut self, key: &CacheKey) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|entry| {
            entry.lru = tick;
            entry.value.clone()
        })
    }

    /// Whether `key` is resident, without touching recency or counters.
    #[must_use]
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains_key(key)
    }

    /// Resident entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

enum FlightState<V> {
    /// The leader is still computing.
    Pending,
    /// The leader finished; followers clone the value.
    Done(V),
    /// The leader's `compute` unwound; followers must retry (one of
    /// them becomes the next leader).
    Poisoned,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

/// Deduplicates concurrent identical computations by key.
pub struct SingleFlight<V> {
    inflight: Mutex<HashMap<Vec<u8>, std::sync::Arc<Flight<V>>>>,
}

/// Retires the leader's flight on every exit path: `complete` publishes
/// the value; `Drop` without completion (the leader's `compute`
/// unwound) poisons the flight and wakes every waiter so the key is
/// never wedged.
struct FlightGuard<'a, V: Clone> {
    owner: &'a SingleFlight<V>,
    key: &'a [u8],
    flight: &'a std::sync::Arc<Flight<V>>,
    completed: bool,
}

impl<V: Clone> FlightGuard<'_, V> {
    fn complete(mut self, value: V) {
        *self.flight.state.lock().expect("flight lock") = FlightState::Done(value);
        self.flight.done.notify_all();
        self.owner
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(self.key);
        self.completed = true;
    }
}

impl<V: Clone> Drop for FlightGuard<'_, V> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // Unwinding: never panic again from here. The locks cannot be
        // held by this thread (compute ran without them), but degrade
        // gracefully if they were poisoned by another thread.
        if let Ok(mut state) = self.flight.state.lock() {
            *state = FlightState::Poisoned;
        }
        self.flight.done.notify_all();
        if let Ok(mut inflight) = self.owner.inflight.lock() {
            inflight.remove(self.key);
        }
    }
}

impl<V: Clone> SingleFlight<V> {
    /// An empty deduplicator.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Runs `compute` for `key` unless an identical computation is
    /// already in flight, in which case this call blocks and returns the
    /// leader's result. The boolean is `true` for the leader (the caller
    /// that actually computed).
    ///
    /// A `compute` that panics does not wedge the key: the panic
    /// propagates to the leader's caller, and blocked followers wake
    /// and retry — one of them leads a fresh computation.
    ///
    /// # Panics
    ///
    /// Panics if an internal lock is poisoned, or propagates `compute`'s
    /// own panic to the leader.
    pub fn work<F: FnOnce() -> V>(&self, key: &[u8], compute: F) -> (V, bool) {
        let mut compute = Some(compute);
        loop {
            let flight = {
                let mut inflight = self.inflight.lock().expect("inflight lock");
                if let Some(existing) = inflight.get(key) {
                    existing.clone()
                } else {
                    let flight = std::sync::Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending),
                        done: Condvar::new(),
                    });
                    inflight.insert(key.to_vec(), flight.clone());
                    drop(inflight);

                    let guard = FlightGuard {
                        owner: self,
                        key,
                        flight: &flight,
                        completed: false,
                    };
                    let compute = compute.take().expect("a caller leads at most once");
                    let value = compute();
                    guard.complete(value.clone());
                    return (value, true);
                }
            };
            let mut state = flight.state.lock().expect("flight lock");
            loop {
                match &*state {
                    FlightState::Pending => {
                        state = flight.done.wait(state).expect("flight wait");
                    }
                    FlightState::Done(value) => return (value.clone(), false),
                    // Leader died; retry from the top (the poisoned
                    // flight was already retired from the map).
                    FlightState::Poisoned => break,
                }
            }
        }
    }
}

impl<V: Clone> Default for SingleFlight<V> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_core::cachekey::CacheKey;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn key(n: u8) -> CacheKey {
        CacheKey::from_bytes(vec![n])
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c: ResultCache<u32> = ResultCache::new(4);
        assert_eq!(c.get(&key(1)), None);
        c.insert(key(1), 10);
        assert_eq!(c.get(&key(1)), Some(10));
        assert_eq!(c.get(&key(2)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 2, 1, 0));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn lru_evicts_in_insertion_use_order() {
        let mut c: ResultCache<u32> = ResultCache::new(2);
        c.insert(key(1), 1);
        c.insert(key(2), 2);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(&key(1)), Some(1));
        c.insert(key(3), 3);
        assert!(c.contains(&key(1)));
        assert!(!c.contains(&key(2)), "LRU entry must go first");
        assert!(c.contains(&key(3)));
        assert_eq!(c.stats().evictions, 1);

        // Without the touch, pure insertion order drives eviction.
        let mut c: ResultCache<u32> = ResultCache::new(2);
        c.insert(key(1), 1);
        c.insert(key(2), 2);
        c.insert(key(3), 3);
        assert!(!c.contains(&key(1)));
        assert!(c.contains(&key(2)) && c.contains(&key(3)));
    }

    #[test]
    fn reinserting_refreshes_instead_of_evicting() {
        let mut c: ResultCache<u32> = ResultCache::new(2);
        c.insert(key(1), 1);
        c.insert(key(2), 2);
        c.insert(key(1), 11); // refresh, no eviction
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&key(1)), Some(11));
        // 2 is now LRU.
        c.insert(key(3), 3);
        assert!(!c.contains(&key(2)));
    }

    #[test]
    fn single_flight_runs_distinct_keys_independently() {
        let sf: SingleFlight<u32> = SingleFlight::new();
        let calls = AtomicUsize::new(0);
        let (a, lead_a) = sf.work(b"a", || {
            calls.fetch_add(1, Ordering::SeqCst);
            1
        });
        let (b, lead_b) = sf.work(b"b", || {
            calls.fetch_add(1, Ordering::SeqCst);
            2
        });
        assert_eq!((a, b), (1, 2));
        assert!(lead_a && lead_b);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panicking_leader_does_not_wedge_the_key() {
        let sf: SingleFlight<u32> = SingleFlight::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sf.work(b"k", || panic!("compute exploded"))
        }));
        assert!(result.is_err(), "leader's panic propagates");
        // The key is immediately usable again: a fresh leader computes.
        let (v, leader) = sf.work(b"k", || 7);
        assert_eq!(v, 7);
        assert!(leader);
    }

    #[test]
    fn followers_recover_from_a_dead_leader() {
        use std::sync::Barrier;
        let sf: SingleFlight<u32> = SingleFlight::new();
        let entered = Barrier::new(2);
        std::thread::scope(|scope| {
            let leader = scope.spawn(|| {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    sf.work(b"k", || {
                        entered.wait(); // follower may now pile up behind us
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        panic!("leader dies mid-flight")
                    })
                }));
                assert!(result.is_err());
            });
            let follower = scope.spawn(|| {
                entered.wait();
                // The original leader is asleep inside its compute, so
                // this call joins that flight, observes the poisoning,
                // retries and leads its own computation.
                let (v, _) = sf.work(b"k", || 9);
                assert_eq!(v, 9);
            });
            leader.join().expect("leader thread");
            follower.join().expect("follower thread");
        });
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        use std::sync::Barrier;
        let sf: SingleFlight<u64> = SingleFlight::new();
        let calls = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    let (v, leader) = sf.work(b"same", || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Stay in flight long enough for every follower
                        // to pile up behind the leader.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        42
                    });
                    assert_eq!(v, 42);
                    if leader {
                        leaders.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one computation");
        assert_eq!(leaders.load(Ordering::SeqCst), 1, "exactly one leader");
    }
}
