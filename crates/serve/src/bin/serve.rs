//! The `distvliw-serve` daemon: binds an address and serves the
//! experiment endpoints until `POST /shutdown`.
//!
//! ```text
//! cargo run --release -p distvliw-serve --bin serve -- \
//!     [--addr 127.0.0.1:7411] [--cache-capacity 256] [--state-dir DIR] \
//!     [--access-log PATH|-] [--slow-ms N] \
//!     [--workers N] [--max-conns N] [--queue-depth N] [--check]
//! ```
//!
//! With `--state-dir` the result cache and II-seed store persist across
//! restarts (crash-safe log-structured files; see `docs/persistence.md`).
//! `--access-log` writes one structured JSON line per request (`-` for
//! stdout); `--slow-ms` warns on requests over the threshold (see
//! `docs/observability.md`). `--workers`, `--max-conns` and
//! `--queue-depth` size the event-driven connection layer (see
//! `docs/serving.md`); overload beyond the caps is answered `503` with
//! `retry-after`. `--check` runs the independent static schedule
//! verifier on every compiled cell, failing the cell rather than
//! serving an illegal schedule (`docs/checking.md`). The per-request
//! compute fan-out honours `DISTVLIW_THREADS` like every other bin.

use std::process::ExitCode;

use distvliw_arch::MachineConfig;
use distvliw_serve::engine::ServeEngine;
use distvliw_serve::event::EventConfig;
use distvliw_serve::Server;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut capacity: usize = 256;
    let mut state_dir: Option<std::path::PathBuf> = None;
    let mut access_log: Option<String> = None;
    let mut slow_ms: u64 = 30_000;
    let mut check = false;
    let mut config = EventConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => return usage("--addr needs a value"),
            },
            "--cache-capacity" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => capacity = v,
                _ => return usage("--cache-capacity needs a positive integer"),
            },
            "--state-dir" => match args.next() {
                Some(v) => state_dir = Some(v.into()),
                None => return usage("--state-dir needs a path"),
            },
            "--access-log" => match args.next() {
                Some(v) => access_log = Some(v),
                None => return usage("--access-log needs a path (or `-` for stdout)"),
            },
            "--slow-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => slow_ms = v,
                None => return usage("--slow-ms needs a non-negative integer"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => config.workers = v,
                _ => return usage("--workers needs a positive integer"),
            },
            "--max-conns" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => config.max_conns = v,
                _ => return usage("--max-conns needs a positive integer"),
            },
            "--queue-depth" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => config.queue_depth = v,
                _ => return usage("--queue-depth needs a positive integer"),
            },
            "--check" => check = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Anchor span timestamps at process start, install the structured
    // logger and the slow-request threshold before any request runs.
    distvliw_obs::trace::init();
    if let Err(e) = distvliw_obs::logger::init(access_log.as_deref()) {
        eprintln!(
            "cannot open access log {}: {e}",
            access_log.as_deref().unwrap_or("-")
        );
        return ExitCode::FAILURE;
    }
    distvliw_serve::endpoints::set_slow_request_ms(slow_ms);

    let mut engine = ServeEngine::new(MachineConfig::paper_baseline(), capacity).with_check(check);
    if let Some(dir) = &state_dir {
        engine = match engine.with_state_dir(dir) {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("cannot open state dir {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        };
        if let Some(p) = engine.stats().persist {
            println!(
                "state: {} cells, {} seeds restored from {} ({} records / {} bytes discarded, {} stale stores)",
                p.loaded_cells,
                p.loaded_seeds,
                dir.display(),
                p.discarded_records,
                p.discarded_bytes,
                p.stale_stores,
            );
        }
    }
    let server = match Server::bind_with(&addr, engine, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "distvliw-serve listening on http://{} ({} workers, {} max conns, queue depth {})",
        server.local_addr(),
        config.workers,
        config.max_conns,
        config.queue_depth,
    );
    match server.run() {
        Ok(()) => {
            println!("distvliw-serve shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: serve [--addr HOST:PORT] [--cache-capacity N] [--state-dir DIR] [--access-log PATH|-] [--slow-ms N] [--workers N] [--max-conns N] [--queue-depth N] [--check]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}\n{USAGE}");
    ExitCode::FAILURE
}
