//! The `distvliw-serve` daemon: binds an address and serves the
//! experiment endpoints until `POST /shutdown`.
//!
//! ```text
//! cargo run --release -p distvliw-serve --bin serve -- \
//!     [--addr 127.0.0.1:7411] [--cache-capacity 256] [--state-dir DIR]
//! ```
//!
//! With `--state-dir` the result cache and II-seed store persist across
//! restarts (crash-safe log-structured files; see `docs/persistence.md`).
//! The worker fan-out honours `DISTVLIW_THREADS` like every other bin.

use std::process::ExitCode;

use distvliw_arch::MachineConfig;
use distvliw_serve::engine::ServeEngine;
use distvliw_serve::Server;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut capacity: usize = 256;
    let mut state_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => return usage("--addr needs a value"),
            },
            "--cache-capacity" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => capacity = v,
                _ => return usage("--cache-capacity needs a positive integer"),
            },
            "--state-dir" => match args.next() {
                Some(v) => state_dir = Some(v.into()),
                None => return usage("--state-dir needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: serve [--addr HOST:PORT] [--cache-capacity N] [--state-dir DIR]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let mut engine = ServeEngine::new(MachineConfig::paper_baseline(), capacity);
    if let Some(dir) = &state_dir {
        engine = match engine.with_state_dir(dir) {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("cannot open state dir {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        };
        if let Some(p) = engine.stats().persist {
            println!(
                "state: {} cells, {} seeds restored from {} ({} records / {} bytes discarded, {} stale stores)",
                p.loaded_cells,
                p.loaded_seeds,
                dir.display(),
                p.discarded_records,
                p.discarded_bytes,
                p.stale_stores,
            );
        }
    }
    let server = match Server::bind(&addr, engine) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("distvliw-serve listening on http://{}", server.local_addr());
    match server.run() {
        Ok(()) => {
            println!("distvliw-serve shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}\nusage: serve [--addr HOST:PORT] [--cache-capacity N] [--state-dir DIR]");
    ExitCode::FAILURE
}
