//! The `distvliw-serve` daemon: binds an address and serves the
//! experiment endpoints until `POST /shutdown`.
//!
//! ```text
//! cargo run --release -p distvliw-serve --bin serve -- \
//!     [--addr 127.0.0.1:7411] [--cache-capacity 256]
//! ```
//!
//! The worker fan-out honours `DISTVLIW_THREADS` like every other bin.

use std::process::ExitCode;

use distvliw_arch::MachineConfig;
use distvliw_serve::engine::ServeEngine;
use distvliw_serve::Server;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut capacity: usize = 256;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => return usage("--addr needs a value"),
            },
            "--cache-capacity" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => capacity = v,
                _ => return usage("--cache-capacity needs a positive integer"),
            },
            "--help" | "-h" => {
                println!("usage: serve [--addr HOST:PORT] [--cache-capacity N]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let engine = ServeEngine::new(MachineConfig::paper_baseline(), capacity);
    let server = match Server::bind(&addr, engine) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("distvliw-serve listening on http://{}", server.local_addr());
    match server.run() {
        Ok(()) => {
            println!("distvliw-serve shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}\nusage: serve [--addr HOST:PORT] [--cache-capacity N]");
    ExitCode::FAILURE
}
