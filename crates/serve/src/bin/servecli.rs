//! `servecli`: client and load generator for the `serve` daemon.
//!
//! ```text
//! servecli BASE get PATH              # print one response body
//! servecli BASE smoke [--shutdown] [--expect-warm]  # CI smoke
//! servecli BASE state                 # persistence counters
//! servecli BASE load PATH [-n N] [-c C] [--json]  # latency under load
//! servecli BASE metrics [--require NAME,NAME,...]  # scrape /metrics
//! servecli BASE trace [-n N]          # recent spans from /debug/trace
//! servecli BASE shutdown              # stop the daemon
//! ```
//!
//! `smoke` drives `/healthz`, a figure endpoint and a repeated request,
//! asserting via `/stats` that the repeat was served from the result
//! cache and that warm bytes equal cold bytes; any failure exits
//! nonzero. With `--expect-warm` it additionally asserts the *first*
//! figure fetch computed zero cells — the restart check for a daemon
//! booted from a persisted `--state-dir`. `state` reports the
//! persistence counters (cells/seeds restored at boot, records and
//! bytes discarded at recovery, appends/compactions/flushes since).
//! `load` replays N concurrent requests (C persistent keep-alive
//! connections — thousands are fine against the event-loop server)
//! against a warm cache and reports latency percentiles from a merged
//! `distvliw_obs` histogram (`--json` for machine-readable output),
//! demonstrating that cache hits cost microseconds while the cold run
//! costs the full pipeline. Deliberate overload 503s are backed off,
//! retried and counted (`rejected_503`); any other non-200 fails the
//! run. `metrics` scrapes and validates the
//! Prometheus exposition, failing if any `--require`d family is absent;
//! `trace` prints the most recent spans from the global rings.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use distvliw_obs::Histogram;
use distvliw_serve::client::{self, Client};
use distvliw_serve::json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (base, rest) = match args.split_first() {
        Some((base, rest)) => (base.clone(), rest.to_vec()),
        None => return usage(),
    };
    match rest.first().map(String::as_str) {
        Some("get") => match rest.get(1) {
            Some(path) => cmd_get(&base, path),
            None => usage(),
        },
        Some("smoke") => cmd_smoke(
            &base,
            rest.iter().any(|a| a == "--shutdown"),
            rest.iter().any(|a| a == "--expect-warm"),
        ),
        Some("state") => cmd_state(&base),
        Some("load") => {
            let path = match rest.get(1) {
                Some(p) if !p.starts_with('-') => p.clone(),
                _ => return usage(),
            };
            let mut n = 100usize;
            let mut c = 8usize;
            let mut json_out = false;
            let mut it = rest.iter().skip(2);
            while let Some(flag) = it.next() {
                if flag == "--json" {
                    json_out = true;
                    continue;
                }
                let value = it.next().and_then(|v| v.parse::<usize>().ok());
                match (flag.as_str(), value) {
                    ("-n", Some(v)) if v > 0 => n = v,
                    ("-c", Some(v)) if v > 0 => c = v,
                    _ => return usage(),
                }
            }
            cmd_load(&base, &path, n, c, json_out)
        }
        Some("metrics") => {
            let mut required: Vec<String> = Vec::new();
            let mut it = rest.iter().skip(1);
            while let Some(flag) = it.next() {
                match (flag.as_str(), it.next()) {
                    ("--require", Some(list)) => {
                        required.extend(list.split(',').map(str::to_string));
                    }
                    _ => return usage(),
                }
            }
            cmd_metrics(&base, &required)
        }
        Some("trace") => {
            let mut n = 64usize;
            let mut it = rest.iter().skip(1);
            while let Some(flag) = it.next() {
                match (
                    flag.as_str(),
                    it.next().and_then(|v| v.parse::<usize>().ok()),
                ) {
                    ("-n", Some(v)) if v > 0 => n = v,
                    _ => return usage(),
                }
            }
            cmd_trace(&base, n)
        }
        Some("shutdown") => match client::post(&base, "/shutdown", "") {
            Ok(resp) if resp.status == 200 => ExitCode::SUCCESS,
            Ok(resp) => fail(&format!("shutdown returned {}", resp.status)),
            Err(e) => fail(&format!("shutdown failed: {e}")),
        },
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: servecli BASE get PATH\n       \
         servecli BASE smoke [--shutdown] [--expect-warm]\n       \
         servecli BASE state\n       \
         servecli BASE load PATH [-n N] [-c C] [--json]\n       \
         servecli BASE metrics [--require NAME,NAME,...]\n       \
         servecli BASE trace [-n N]\n       servecli BASE shutdown"
    );
    ExitCode::FAILURE
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("servecli: {msg}");
    ExitCode::FAILURE
}

fn cmd_get(base: &str, path: &str) -> ExitCode {
    match client::get(base, path) {
        Ok(resp) => {
            println!("{}", String::from_utf8_lossy(&resp.body));
            if resp.status == 200 {
                ExitCode::SUCCESS
            } else {
                fail(&format!("{path} returned {}", resp.status))
            }
        }
        Err(e) => fail(&format!("GET {path} failed: {e}")),
    }
}

/// `/stats` counters the smoke test tracks.
struct Stats {
    hits: u64,
    computed: u64,
    threads: u64,
}

fn read_stats(base: &str) -> Result<Stats, String> {
    let resp = client::get(base, "/stats").map_err(|e| format!("GET /stats failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("/stats returned {}", resp.status));
    }
    let text = String::from_utf8_lossy(&resp.body).to_string();
    let v = json::parse(&text).map_err(|e| format!("bad /stats json: {e}"))?;
    let field = |path: &[&str]| -> Result<u64, String> {
        let mut cur = &v;
        for key in path {
            cur = cur
                .get(key)
                .ok_or_else(|| format!("/stats missing {}", path.join(".")))?;
        }
        cur.as_u64()
            .ok_or_else(|| format!("/stats {} is not an integer", path.join(".")))
    };
    Ok(Stats {
        hits: field(&["cache", "hits"])?,
        computed: field(&["computed_cells"])?,
        threads: field(&["threads"]).unwrap_or(0),
    })
}

fn wait_healthy(base: &str) -> Result<(), String> {
    for _ in 0..100 {
        if let Ok(resp) = client::get(base, "/healthz") {
            if resp.status == 200 {
                return Ok(());
            }
            return Err(format!("/healthz returned {}", resp.status));
        }
        std::thread::sleep(Duration::from_millis(150));
    }
    Err("server did not become healthy within 15s".to_string())
}

/// `servecli BASE state`: print the persistence counters from `/stats`.
fn cmd_state(base: &str) -> ExitCode {
    if let Err(e) = wait_healthy(base) {
        return fail(&e);
    }
    let resp = match client::get(base, "/stats") {
        Ok(resp) if resp.status == 200 => resp,
        Ok(resp) => return fail(&format!("/stats returned {}", resp.status)),
        Err(e) => return fail(&format!("GET /stats failed: {e}")),
    };
    let text = String::from_utf8_lossy(&resp.body).to_string();
    let v = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => return fail(&format!("bad /stats json: {e}")),
    };
    let Some(p) = v.get("persist").filter(|p| !matches!(p, json::Json::Null)) else {
        println!("state: no state dir (persistence disabled)");
        return ExitCode::SUCCESS;
    };
    let field = |name: &str| p.get(name).and_then(json::Json::as_u64).unwrap_or(0);
    println!(
        "state: loaded {} cells, {} seeds; discarded {} records / {} bytes ({} stale stores)",
        field("loaded_cells"),
        field("loaded_seeds"),
        field("discarded_records"),
        field("discarded_bytes"),
        field("stale_stores"),
    );
    println!(
        "state: since boot {} appends, {} compactions, {} flushes, {} write errors",
        field("appended_records"),
        field("compactions"),
        field("flushes"),
        field("write_errors"),
    );
    ExitCode::SUCCESS
}

/// The CI smoke sequence; see the module docs.
fn cmd_smoke(base: &str, shutdown: bool, expect_warm: bool) -> ExitCode {
    let outcome = smoke(base, expect_warm);
    let code = match outcome {
        Ok(()) => {
            println!("smoke: ok");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    };
    if shutdown {
        match client::post(base, "/shutdown", "") {
            Ok(resp) if resp.status == 200 => {}
            Ok(resp) => return fail(&format!("shutdown returned {}", resp.status)),
            Err(e) => return fail(&format!("shutdown failed: {e}")),
        }
    }
    code
}

fn smoke(base: &str, expect_warm: bool) -> Result<(), String> {
    wait_healthy(base)?;
    println!("smoke: /healthz ok");

    // Build/uptime metadata: every deployment question starts with
    // "which build is this and how long has it been up?".
    {
        let resp = client::get(base, "/stats").map_err(|e| format!("GET /stats failed: {e}"))?;
        let text = String::from_utf8_lossy(&resp.body).to_string();
        let v = json::parse(&text).map_err(|e| format!("bad /stats json: {e}"))?;
        if v.get("uptime_secs").and_then(json::Json::as_u64).is_none() {
            return Err("/stats missing uptime_secs".to_string());
        }
        let version = v
            .get("build")
            .and_then(|b| b.get("version"))
            .and_then(json::Json::as_str)
            .ok_or("/stats missing build.version")?;
        println!("smoke: /stats build version {version} ok");
    }

    let before = read_stats(base)?;
    let cold = client::get(base, "/fig6").map_err(|e| format!("GET /fig6 failed: {e}"))?;
    if cold.status != 200 {
        return Err(format!("/fig6 returned {}", cold.status));
    }
    let mid = read_stats(base)?;
    if mid.computed < before.computed {
        return Err("computed_cells went backwards".to_string());
    }
    if expect_warm && mid.computed != before.computed {
        return Err(format!(
            "first /fig6 after restart recomputed {} cells; expected the persisted \
             state to serve it entirely from the cache",
            mid.computed - before.computed
        ));
    }
    println!(
        "smoke: /fig6 {} ok ({} bytes, {} cells computed)",
        if expect_warm { "warm-boot" } else { "cold" },
        cold.body.len(),
        mid.computed - before.computed
    );

    let warm = client::get(base, "/fig6").map_err(|e| format!("GET /fig6 repeat failed: {e}"))?;
    if warm.status != 200 {
        return Err(format!("repeated /fig6 returned {}", warm.status));
    }
    if warm.body != cold.body {
        return Err("warm /fig6 response differs from cold response".to_string());
    }
    let after = read_stats(base)?;
    if after.hits <= mid.hits {
        return Err(format!(
            "repeated /fig6 did not hit the cache (hits {} -> {})",
            mid.hits, after.hits
        ));
    }
    if after.computed != mid.computed {
        return Err(format!(
            "repeated /fig6 recomputed cells ({} -> {})",
            mid.computed, after.computed
        ));
    }
    println!(
        "smoke: /fig6 warm ok (byte-identical, +{} cache hits, 0 recomputes)",
        after.hits - mid.hits
    );

    // An arbitrary grid through POST /matrix, twice.
    let body = r#"{"suites":["gsmdec"],"solutions":["mdc"],"heuristics":["prefclus"]}"#;
    let cold = client::post(base, "/matrix", body).map_err(|e| format!("POST /matrix: {e}"))?;
    if cold.status != 200 {
        return Err(format!("/matrix returned {}", cold.status));
    }
    let warm = client::post(base, "/matrix", body).map_err(|e| format!("POST /matrix: {e}"))?;
    if warm.body != cold.body {
        return Err("warm /matrix response differs from cold response".to_string());
    }
    println!("smoke: /matrix ok (byte-identical on repeat)");
    Ok(())
}

/// Per-worker tally from one load connection.
struct WorkerResult {
    hist: Histogram,
    rejected_503: u64,
    reconnects: u64,
    error: Option<String>,
}

/// Replays `n` requests over `c` persistent keep-alive connections and
/// reports latency percentiles from a merged `distvliw_obs` histogram.
///
/// Scales to thousands of connections against the event-loop server:
/// deliberate overload answers (`503` with `retry-after`, from the
/// bounded queue or the connection cap) are counted, backed off and
/// retried rather than failing the run — any *other* non-200 still
/// fails — and a connection the server closes (`max-conns` rejection,
/// idle reap) is transparently re-dialed. Every successful response
/// must stay byte-identical to the warm reference.
fn cmd_load(base: &str, path: &str, n: usize, c: usize, json_out: bool) -> ExitCode {
    /// Attempts per request before declaring the server unreachable
    /// (covers sustained 503 storms at ~20ms backoff each).
    const MAX_ATTEMPTS: u32 = 500;
    const RETRY_BACKOFF: Duration = Duration::from_millis(20);
    if let Err(e) = wait_healthy(base) {
        return fail(&e);
    }
    // Warm the cache and capture the reference bytes.
    let t0 = Instant::now();
    let reference = match client::get(base, path) {
        Ok(resp) if resp.status == 200 => resp.body,
        Ok(resp) => return fail(&format!("{path} returned {}", resp.status)),
        Err(e) => return fail(&format!("warmup GET {path} failed: {e}")),
    };
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    let before = match read_stats(base) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let workers = c.min(n);
    // Per-worker histograms, merged after the joins; merging fixed
    // log-scale buckets is exact (identical to one shared histogram).
    let latencies = Histogram::new();
    let mut rejected_503 = 0u64;
    let mut reconnects = 0u64;
    let mut failures: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let reference = &reference;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                // Split n as evenly as possible across workers.
                let quota = n / workers + usize::from(w < n % workers);
                scope.spawn(move || {
                    let mut out = WorkerResult {
                        hist: Histogram::new(),
                        rejected_503: 0,
                        reconnects: 0,
                        error: None,
                    };
                    let mut conn: Option<Client> = None;
                    'requests: for _ in 0..quota {
                        for attempt in 0.. {
                            if attempt >= MAX_ATTEMPTS {
                                out.error = Some(format!("gave up after {MAX_ATTEMPTS} attempts"));
                                break 'requests;
                            }
                            let client = match &mut conn {
                                Some(client) => client,
                                None => match Client::connect(base) {
                                    Ok(client) => conn.insert(client),
                                    Err(_) => {
                                        // Accept backlog overflow under
                                        // the connection storm: back off
                                        // and re-dial.
                                        std::thread::sleep(RETRY_BACKOFF);
                                        continue;
                                    }
                                },
                            };
                            let t = Instant::now();
                            match client.get(path) {
                                Ok(resp) if resp.status == 503 => {
                                    out.rejected_503 += 1;
                                    if resp.closes() {
                                        conn = None;
                                        out.reconnects += 1;
                                    }
                                    std::thread::sleep(RETRY_BACKOFF);
                                }
                                Ok(resp) if resp.status == 200 && &resp.body == reference => {
                                    out.hist.record_micros(t.elapsed());
                                    if resp.closes() {
                                        conn = None;
                                        out.reconnects += 1;
                                    }
                                    continue 'requests;
                                }
                                Ok(resp) if resp.status == 200 => {
                                    out.error = Some("body mismatch".to_string());
                                    break 'requests;
                                }
                                Ok(resp) => {
                                    out.error = Some(format!("status {}", resp.status));
                                    break 'requests;
                                }
                                Err(_) => {
                                    // Closed mid-exchange (max-conns
                                    // rejection racing our request, or
                                    // an idle reap): re-dial and retry.
                                    conn = None;
                                    out.reconnects += 1;
                                    std::thread::sleep(RETRY_BACKOFF);
                                }
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            let out = handle.join().expect("load worker");
            latencies.merge_from(&out.hist);
            rejected_503 += out.rejected_503;
            reconnects += out.reconnects;
            if let Some(e) = out.error {
                failures.push(e);
            }
        }
    });
    if !failures.is_empty() {
        return fail(&format!("load errors: {}", failures.join("; ")));
    }
    let after = match read_stats(base) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };

    let pct_us = |q: f64| -> u64 { latencies.quantile(q) };
    let ms = |us: u64| us as f64 / 1e3;
    let hits_delta = after.hits.saturating_sub(before.hits);
    let computed_delta = after.computed.saturating_sub(before.computed);
    if json_out {
        let obj = json::Json::obj(vec![
            ("path", json::Json::str(path)),
            ("n", json::Json::U64(latencies.count())),
            ("c", json::Json::U64(workers as u64)),
            ("cold_ms", json::Json::F64(cold_ms)),
            ("p50_us", json::Json::U64(pct_us(0.50))),
            ("p90_us", json::Json::U64(pct_us(0.90))),
            ("p99_us", json::Json::U64(pct_us(0.99))),
            ("max_us", json::Json::U64(pct_us(1.0))),
            (
                "mean_us",
                json::Json::U64(latencies.sum() / latencies.count().max(1)),
            ),
            ("rejected_503", json::Json::U64(rejected_503)),
            ("reconnects", json::Json::U64(reconnects)),
            ("server_threads", json::Json::U64(after.threads)),
            ("cache_hits_delta", json::Json::U64(hits_delta)),
            ("computed_cells_delta", json::Json::U64(computed_delta)),
        ]);
        println!("{}", obj.render());
    } else {
        println!(
            "load {path}: n={} c={workers}  cold={cold_ms:.1}ms  p50={:.2}ms p90={:.2}ms p99={:.2}ms max={:.2}ms",
            latencies.count(),
            ms(pct_us(0.50)),
            ms(pct_us(0.90)),
            ms(pct_us(0.99)),
            ms(pct_us(1.0)),
        );
        println!(
            "overload: {rejected_503} deliberate 503s (retried), {reconnects} reconnects; \
             server threads {}",
            after.threads
        );
        println!("stats delta: +{hits_delta} cache hits, +{computed_delta} computed cells");
    }
    if after.computed != before.computed {
        return fail("warm-cache load recomputed cells; expected pure cache hits");
    }
    if !json_out {
        println!("all responses 200 and byte-identical to the warm reference");
    }
    ExitCode::SUCCESS
}

/// `servecli BASE metrics`: scrape `/metrics`, validate the Prometheus
/// text exposition line-by-line, and fail if a required family is
/// missing.
fn cmd_metrics(base: &str, required: &[String]) -> ExitCode {
    if let Err(e) = wait_healthy(base) {
        return fail(&e);
    }
    let resp = match client::get(base, "/metrics") {
        Ok(resp) if resp.status == 200 => resp,
        Ok(resp) => return fail(&format!("/metrics returned {}", resp.status)),
        Err(e) => return fail(&format!("GET /metrics failed: {e}")),
    };
    let text = String::from_utf8_lossy(&resp.body).to_string();
    let mut families: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(name), Some("counter" | "gauge" | "histogram")) => {
                    families.push(name.to_string());
                }
                _ => return fail(&format!("bad TYPE line {}: {line}", i + 1)),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: `name{labels} value` — the value must parse.
        let value = line.rsplit(' ').next().unwrap_or("");
        if value.parse::<f64>().is_err() {
            return fail(&format!("unparseable sample on line {}: {line}", i + 1));
        }
        samples += 1;
    }
    let missing: Vec<&str> = required
        .iter()
        .map(String::as_str)
        .filter(|r| !families.iter().any(|f| f == r))
        .collect();
    if !missing.is_empty() {
        return fail(&format!(
            "missing required metric families: {}",
            missing.join(", ")
        ));
    }
    println!(
        "metrics: {} families, {samples} samples{}",
        families.len(),
        if required.is_empty() {
            String::new()
        } else {
            format!(", all {} required present", required.len())
        }
    );
    ExitCode::SUCCESS
}

/// `servecli BASE trace`: print the most recent spans from the
/// daemon's global rings.
fn cmd_trace(base: &str, n: usize) -> ExitCode {
    if let Err(e) = wait_healthy(base) {
        return fail(&e);
    }
    let resp = match client::get(base, &format!("/debug/trace?n={n}")) {
        Ok(resp) if resp.status == 200 => resp,
        Ok(resp) => return fail(&format!("/debug/trace returned {}", resp.status)),
        Err(e) => return fail(&format!("GET /debug/trace failed: {e}")),
    };
    let text = String::from_utf8_lossy(&resp.body).to_string();
    let v = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => return fail(&format!("bad /debug/trace json: {e}")),
    };
    let Some(spans) = v.get("spans").and_then(json::Json::as_array) else {
        return fail("/debug/trace missing spans array");
    };
    for span in spans {
        let s = |k: &str| {
            span.get(k)
                .and_then(json::Json::as_str)
                .unwrap_or("?")
                .to_string()
        };
        let u = |k: &str| span.get(k).and_then(json::Json::as_u64).unwrap_or(0);
        println!(
            "{:>12}us +{:>9}us  {} (id={} parent={} trace={})",
            u("start_us"),
            u("dur_us"),
            s("name"),
            u("id"),
            u("parent"),
            u("trace"),
        );
    }
    println!("trace: {} spans", spans.len());
    ExitCode::SUCCESS
}
